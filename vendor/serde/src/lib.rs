//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (as blanket-implemented
//! marker traits plus no-op derive macros) so that the heavily annotated
//! codebase compiles without network access. No actual serialization is
//! performed through these traits; the few places that emit JSON build it
//! by hand.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};
