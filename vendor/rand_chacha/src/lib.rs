//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the workspace's `rand` trait surface.
//!
//! The keystream is a faithful ChaCha with 8 rounds, keyed from a
//! SplitMix64 expansion of the 64-bit seed. Streams are deterministic and
//! platform-independent, which is all this workspace relies on (values do
//! not match upstream `rand_chacha`, whose seeding path differs).

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A ChaCha stream cipher with 8 rounds used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// The word stream position consumed so far (for diagnostics).
    pub fn word_pos(&self) -> u128 {
        let block = u64::from(self.state[13]) << 32 | u64::from(self.state[12]);
        u128::from(block) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fixed_seed_reproduces_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should not collide");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.word_pos(), b.word_pos());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_covers_the_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
