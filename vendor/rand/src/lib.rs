//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the trait surface this workspace uses — `RngCore`,
//! `Rng` (with `gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`
//! and `seq::SliceRandom::shuffle`/`choose` — with deterministic,
//! self-consistent semantics. The stream layouts do not match upstream
//! `rand`; every consumer in this workspace only relies on reproducibility
//! under a fixed seed, never on upstream-exact values.

use std::ops::Range;

/// Core random-number source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (taken from the high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from; the output type is a
/// trait parameter (as in upstream rand) so that type inference can flow
/// from the call site back into integer literals.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u64, usize, u32, u16, u8, i64, i32);

/// The user-facing random-number trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable random sources (only `seed_from_u64` is used in this
/// workspace).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice utilities ported from `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer good enough for unit tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_an_element() {
        let mut rng = Counter(5);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
