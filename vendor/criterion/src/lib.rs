//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple median-of-samples wall-clock timer instead of
//! criterion's full statistical machinery. Set `CRITERION_SAMPLES` to
//! override the per-benchmark sample count.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            samples: default_samples(),
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), default_samples(), f);
        self
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// A named group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1).min(default_samples().max(1) * 10);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.samples.min(default_samples()), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        median_s: 0.0,
    };
    f(&mut bencher);
    eprintln!(
        "{id}: median {:.6} s over {} samples",
        bencher.median_s, bencher.samples
    );
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    median_s: f64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording the median wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            times.push(start.elapsed().as_secs_f64());
            black_box(out);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_s = times[times.len() / 2];
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark-group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(5), 5);
    }
}
