//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest! { #![proptest_config(...)] #[test] fn name(x in range, ...) { ... } }`
//! macro form, range strategies over integers and floats, and the
//! `prop_assert!` / `prop_assert_eq!` assertions. Inputs are drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible; there is no shrinking.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic xorshift64* generator driving the strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h | 1)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A source of random values for one macro-bound variable.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u64, usize, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Everything the `proptest::prelude::*` import is expected to provide.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (
        $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name ( $($arg in $strategy),* ) $body)*
        }
    };
}

/// `assert!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in 0usize..5, f in -1.0..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u32..10) {
            prop_assert_eq!(x < 10, true);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = super::TestRng::deterministic("t");
        let mut b = super::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
