//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real serde cannot be
//! fetched. This crate provides `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` as no-op derives (registering the `#[serde(...)]`
//! helper attribute) so that the annotation-heavy codebase compiles
//! unchanged. The sibling `serde` stub provides blanket trait
//! implementations, and JSON output is produced by hand where needed
//! (see `mlir-rl-core::report`).

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
