//! Cross-crate property tests of the schedule-search subsystem.

use proptest::prelude::*;

use mlir_rl_agent::{PolicyHyperparams, PolicyNetwork};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{EnvConfig, OptimizationEnv};
use mlir_rl_ir::{Module, ModuleBuilder};
use mlir_rl_search::{
    BeamSearch, GreedyPolicy, Mcts, RandomSearch, SearchDriver, SearchOutcome, Searcher,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn env() -> OptimizationEnv {
    OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()))
}

fn policy(seed: u64) -> PolicyNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    PolicyNetwork::new(
        EnvConfig::small(),
        PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        },
        &mut rng,
    )
}

fn chain(m: u64, n: u64, k: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("chain_{m}x{n}x{k}"));
    let a = b.argument("A", vec![m, k]);
    let w = b.argument("B", vec![k, n]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    b.finish()
}

/// The seed-determined payload of an outcome: everything except the cache
/// hit/miss split, which legitimately depends on table warmth and thread
/// interleaving.
fn deterministic_fields(o: &SearchOutcome) -> (String, f64, f64, Vec<mlir_rl_env::Action>, usize) {
    (
        o.module.clone(),
        o.best_s,
        o.speedup,
        o.best_actions.clone(),
        o.nodes_expanded,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A width-1 beam expands exactly the greedy action at every step, so
    /// its chosen action sequence, final schedule and final time are
    /// step-for-step identical to greedy policy decoding — for any module
    /// shape and any (untrained) policy initialization.
    #[test]
    fn beam_width_one_is_step_for_step_greedy(
        m in 8u64..256, n in 8u64..256, k in 8u64..256,
        policy_seed in 0u64..1000, search_seed in 0u64..1000,
    ) {
        let module = chain(m, n, k);
        let mut p = policy(policy_seed);
        let mut e1 = env();
        let greedy = GreedyPolicy.search(&mut e1, &mut p, &module, search_seed);
        let mut e2 = env();
        let beam = BeamSearch::new(1).search(&mut e2, &mut p, &module, search_seed);
        prop_assert_eq!(&greedy.best_actions, &beam.best_actions);
        prop_assert_eq!(greedy.best_s, beam.best_s);
        prop_assert_eq!(&greedy.best_schedule, &beam.best_schedule);
        prop_assert_eq!(greedy.speedup, beam.speedup);
    }

    /// MCTS and random search are bit-for-bit deterministic under a fixed
    /// seed for any driver thread count: the shared cache changes only who
    /// computes an estimate, never its value.
    #[test]
    fn mcts_and_random_are_thread_count_invariant(
        policy_seed in 0u64..1000, base_seed in 0u64..1000,
    ) {
        let batch = vec![
            chain(64, 64, 64),
            chain(96, 48, 32),
            chain(32, 128, 64),
            chain(64, 64, 64),
        ];
        let template = env();
        let p = policy(policy_seed);
        for searcher in [
            Box::new(Mcts::new(6).with_branch(2)) as Box<dyn Searcher<PolicyNetwork>>,
            Box::new(RandomSearch::new(3)),
        ] {
            let mut reference: Option<Vec<_>> = None;
            for workers in [1usize, 2, 4] {
                let report = SearchDriver::new(workers)
                    .with_seed(base_seed)
                    .run(&template, &p, searcher.as_ref(), &batch);
                let fields: Vec<_> = report.outcomes.iter().map(deterministic_fields).collect();
                match &reference {
                    None => reference = Some(fields),
                    Some(expected) => prop_assert_eq!(
                        expected,
                        &fields,
                        "{} with {} workers diverged",
                        searcher.name(),
                        workers
                    ),
                }
            }
        }
    }
}

#[test]
fn search_and_rollout_lookup_accounting_use_the_same_invariant() {
    // hits + evaluations == total lookups, for the search outcomes and the
    // environment's episode stats alike (the satellite accounting fix).
    let module = chain(64, 64, 64);
    let mut e = env();
    let mut p = policy(0);
    let outcome = BeamSearch::new(3).search(&mut e, &mut p, &module, 1);
    assert_eq!(
        outcome.total_lookups(),
        outcome.evaluations + outcome.cache_hits
    );
    assert_eq!(
        outcome.total_lookups(),
        (e.cache().hits() + e.cache().misses()) as usize,
        "outcome accounting must agree with the cache's own counters"
    );
    let stats = e.stats();
    assert_eq!(stats.total_lookups(), stats.evaluations + stats.cache_hits);
}
