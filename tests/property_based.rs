//! Property-based integration tests over the IR, the transformation engine
//! and the cost model.

use proptest::prelude::*;

use mlir_rl_costmodel::{CostModel, EvalCache, MachineModel};
use mlir_rl_ir::{parser::parse_module, printer::print_module, ModuleBuilder, OpId};
use mlir_rl_transforms::{ScheduledModule, Transformation};

fn matmul(m: u64, n: u64, k: u64) -> mlir_rl_ir::Module {
    let mut b = ModuleBuilder::new("pm");
    let a = b.argument("A", vec![m, k]);
    let w = b.argument("B", vec![k, n]);
    b.matmul(a, w);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Printing and re-parsing a module preserves its structure.
    #[test]
    fn printer_parser_roundtrip(m in 1u64..256, n in 1u64..256, k in 1u64..256) {
        let module = matmul(m, n, k);
        let reparsed = parse_module(&print_module(&module)).unwrap();
        prop_assert_eq!(module.ops().len(), reparsed.ops().len());
        prop_assert_eq!(&module.ops()[0].loop_bounds, &reparsed.ops()[0].loop_bounds);
        prop_assert_eq!(module.ops()[0].kind, reparsed.ops()[0].kind);
    }

    /// Any legal tiling keeps the total iteration count and never produces a
    /// non-finite or non-positive time estimate.
    #[test]
    fn tiling_preserves_iteration_domain(
        m in 2u64..512, n in 2u64..512, k in 2u64..512,
        t0 in 0u64..64, t1 in 0u64..64, t2 in 0u64..64,
    ) {
        let module = matmul(m, n, k);
        let mut sm = ScheduledModule::new(module);
        let tiles = vec![t0.min(m), t1.min(n), t2.min(k)];
        sm.apply(OpId(0), Transformation::Tiling { tile_sizes: tiles }).unwrap();
        let nest = sm.lower(OpId(0));
        prop_assert_eq!(nest.total_iterations(), m * n * k);
        let cm = CostModel::new(MachineModel::xeon_e5_2680_v4());
        let est = cm.estimate_scheduled(&sm).total_s;
        prop_assert!(est.is_finite() && est > 0.0);
    }

    /// Interchange never changes the iteration domain, and two applications
    /// of the same swap cancel out.
    #[test]
    fn interchange_is_an_involution_for_swaps(m in 2u64..128, n in 2u64..128, k in 2u64..128) {
        let module = matmul(m, n, k);
        let mut sm = ScheduledModule::new(module);
        let swap = Transformation::Interchange { permutation: vec![1, 0, 2] };
        sm.apply(OpId(0), swap.clone()).unwrap();
        let once = sm.lower(OpId(0));
        prop_assert_eq!(once.total_iterations(), m * n * k);
        sm.apply(OpId(0), swap).unwrap();
        let twice = sm.lower(OpId(0));
        prop_assert_eq!(twice.order, vec![0, 1, 2]);
    }

    /// The schedule-keyed evaluation cache is transparent: for any random
    /// schedule, the cached estimate is identical to a direct run of the
    /// estimator — on the miss that populates the entry *and* on the hit
    /// that serves it back.
    #[test]
    fn cached_estimates_match_uncached(
        m in 2u64..256, n in 2u64..256, k in 2u64..256,
        t0 in 0u64..64, t1 in 0u64..64, t2 in 0u64..64,
        vectorize in 0u32..2, parallelize in 0u32..2,
    ) {
        let module = matmul(m, n, k);
        let cm = CostModel::new(MachineModel::xeon_e5_2680_v4());
        let mut cache = EvalCache::default();
        let mut sm = ScheduledModule::new(module);
        let tiles = vec![t0.min(m), t1.min(n), t2.min(k)];
        if parallelize == 1 {
            sm.apply(OpId(0), Transformation::TiledParallelization {
                tile_sizes: tiles.iter().map(|t| (*t).max(1)).collect(),
            }).unwrap();
        } else {
            sm.apply(OpId(0), Transformation::Tiling { tile_sizes: tiles }).unwrap();
        }
        if vectorize == 1 {
            // Vectorization is only legal for small innermost extents; skip
            // when the mask would forbid it.
            let _ = sm.apply(OpId(0), Transformation::Vectorization);
        }
        let direct = cm.estimate_scheduled(&sm);
        let miss = cache.estimate(&cm, &sm).clone();
        let hit = cache.estimate(&cm, &sm).clone();
        prop_assert_eq!(&direct, &miss);
        prop_assert_eq!(&direct, &hit);
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(cache.misses(), 1);
    }

    /// The storage tier is transparent: any interleaving of keyed lookups
    /// (which insert and, at tiny capacities, evict), snapshot/restore
    /// cycles, and cross-replica `absorb` merges leaves every lookup
    /// bit-identical to the uncached oracle — extending the
    /// cached==uncached contract to the eviction era.
    #[test]
    fn storage_tier_interleavings_match_uncached_oracle(
        capacity in 1usize..24,
        seed in 1u64..1_000_000,
        steps in 8usize..48,
    ) {
        use mlir_rl_costmodel::{schedule_key, SharedEvalCache};

        let cm = CostModel::new(MachineModel::xeon_e5_2680_v4());
        // A pool of distinct schedules and their uncached oracle estimates.
        let mut pool = Vec::new();
        for (m, n, k) in [(64u64, 96u64, 32u64), (128, 64, 48), (96, 128, 80), (48, 32, 160)] {
            for tile in [0u64, 8, 16] {
                let mut sm = ScheduledModule::new(matmul(m, n, k));
                if tile > 0 {
                    sm.apply(OpId(0), Transformation::Tiling {
                        tile_sizes: vec![tile, tile, 0],
                    }).unwrap();
                }
                let oracle = cm.estimate_scheduled(&sm);
                pool.push((schedule_key(&sm), sm, oracle));
            }
        }

        // Two replicas exchanging warmth; `a` additionally restarts through
        // snapshot/restore roundtrips mid-stream.
        let mut a = SharedEvalCache::new(capacity);
        let b = SharedEvalCache::new(capacity);
        let mut state = seed;
        let mut next = move || {
            // xorshift64; any nonzero seed cycles through distinct draws.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..steps {
            let draw = next();
            let (key, sm, oracle) = &pool[(draw >> 8) as usize % pool.len()];
            match draw % 5 {
                0 | 1 => {
                    let (estimate, _) = a.estimate_keyed(*key, &cm, sm);
                    prop_assert_eq!(&estimate, oracle);
                }
                2 => {
                    let (estimate, _) = b.estimate_keyed(*key, &cm, sm);
                    prop_assert_eq!(&estimate, oracle);
                }
                3 => {
                    // Restart `a`: snapshot, then restore into a fresh table.
                    let bytes = a.to_snapshot_bytes();
                    let fresh = SharedEvalCache::new(capacity);
                    fresh.restore_from_bytes(&bytes).unwrap();
                    a = fresh;
                }
                _ => {
                    if draw & 0x80 == 0 {
                        a.absorb(&b);
                    } else {
                        b.absorb(&a);
                    }
                }
            }
            prop_assert!(a.len() <= capacity);
            prop_assert!(b.len() <= capacity);
        }
        // Whatever the interleaving did to the tables, every key still
        // resolves to the oracle estimate, bit for bit.
        for (key, sm, oracle) in &pool {
            let (from_a, _) = a.estimate_keyed(*key, &cm, sm);
            let (from_b, _) = b.estimate_keyed(*key, &cm, sm);
            prop_assert_eq!(&from_a, oracle);
            prop_assert_eq!(&from_b, oracle);
        }
    }

    /// The speedup of any schedule is the ratio the cost model reports; it
    /// is always strictly positive and finite.
    #[test]
    fn speedups_are_positive_and_finite(m in 2u64..256, n in 2u64..256, k in 2u64..256, tile in 1u64..64) {
        let module = matmul(m, n, k);
        let cm = CostModel::new(MachineModel::xeon_e5_2680_v4());
        let baseline = cm.estimate_baseline(&module).total_s;
        let mut sm = ScheduledModule::new(module);
        sm.apply(OpId(0), Transformation::TiledParallelization {
            tile_sizes: vec![tile.min(m), tile.min(n), 0],
        }).unwrap();
        let optimized = cm.estimate_scheduled(&sm).total_s;
        let speedup = mlir_rl_costmodel::speedup(baseline, optimized);
        prop_assert!(speedup.is_finite() && speedup > 0.0);
    }
}
