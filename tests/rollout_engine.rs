//! Integration tests of the parallel rollout engine: fixed-seed determinism
//! across worker counts and cost-model cache accounting, exercised through
//! the public crate APIs end to end.

use mlir_rl_agent::{collect_rollouts, PolicyHyperparams, PpoConfig, PpoTrainer, Trajectory};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{EnvConfig, OptimizationEnv, RewardMode};
use mlir_rl_ir::{Module, ModuleBuilder};

fn dataset() -> Vec<Module> {
    let mut out = Vec::new();
    for (m, n, k) in [(64, 64, 64), (96, 48, 128), (32, 256, 64)] {
        let mut b = ModuleBuilder::new(format!("mm_{m}x{n}x{k}"));
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        out.push(b.finish());
    }
    out
}

fn fixture(config: &EnvConfig) -> (OptimizationEnv, PpoTrainer<mlir_rl_agent::PolicyNetwork>) {
    let env = OptimizationEnv::new(config.clone(), CostModel::new(MachineModel::default()));
    let hyper = PolicyHyperparams {
        hidden_size: 16,
        backbone_layers: 1,
    };
    let trainer = PpoTrainer::new(config, hyper, PpoConfig::small(), 13);
    (env, trainer)
}

fn collect(config: &EnvConfig, modules: &[&Module], workers: usize) -> Vec<Trajectory> {
    let (mut env, mut trainer) = fixture(config);
    collect_rollouts(
        &mut env,
        modules,
        &mut trainer.policy,
        &mut trainer.value,
        false,
        777,
        workers,
    )
    .trajectories
}

#[test]
fn fixed_seed_parallel_rollouts_are_identical_to_serial() {
    let config = EnvConfig::small();
    let dataset = dataset();
    let modules: Vec<&Module> = dataset.iter().chain(dataset.iter()).collect();
    let serial = collect(&config, &modules, 1);
    for workers in [2, 3, 6] {
        let parallel = collect(&config, &modules, workers);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.transitions.len(), b.transitions.len());
            for (x, y) in a.transitions.iter().zip(&b.transitions) {
                assert_eq!(x.record, y.record, "{workers} workers: actions diverged");
                assert_eq!(x.reward, y.reward, "{workers} workers: rewards diverged");
                assert_eq!(x.value, y.value, "{workers} workers: values diverged");
            }
            assert_eq!(a.stats.speedup, b.stats.speedup);
            assert_eq!(a.stats.steps, b.stats.steps);
        }
    }
}

#[test]
fn immediate_reward_mode_benefits_from_the_cache() {
    // Immediate reward evaluates at every step (Fig. 7's expensive mode);
    // collecting the same module repeatedly must serve a meaningful share
    // of those evaluations from the schedule-keyed cache.
    let mut config = EnvConfig::small();
    config.reward_mode = RewardMode::Immediate;
    let dataset = dataset();
    let modules: Vec<&Module> = std::iter::repeat_n(&dataset[0], 8).collect();
    let (mut env, mut trainer) = fixture(&config);
    let batch = collect_rollouts(
        &mut env,
        &modules,
        &mut trainer.policy,
        &mut trainer.value,
        false,
        99,
        1,
    );
    assert!(
        batch.cache_hits > 0,
        "immediate mode must reuse evaluations"
    );
    let total = batch.cache_hits + batch.evaluations;
    assert!(
        batch.cache_hit_rate() > 0.1,
        "expected a nonzero hit-rate, got {}/{total}",
        batch.cache_hits
    );
}

#[test]
fn training_through_the_engine_is_reproducible() {
    // Two trainers with identical seeds and worker counts produce identical
    // iteration statistics; a third with more workers matches too because
    // collection is worker-count invariant.
    let config = EnvConfig::small();
    let dataset = dataset();
    let run = |workers: usize| {
        let env_cfg = config.clone();
        let mut env =
            OptimizationEnv::new(env_cfg.clone(), CostModel::new(MachineModel::default()));
        let ppo = PpoConfig {
            rollout_workers: workers,
            ..PpoConfig::small()
        };
        let hyper = PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        };
        let mut trainer = PpoTrainer::new(&env_cfg, hyper, ppo, 13);
        let stats = trainer.train_iteration(&mut env, &dataset);
        (stats.mean_speedup, stats.mean_reward, stats.policy_loss)
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(
        a, b,
        "same seed and workers must reproduce training exactly"
    );
    let c = run(4);
    assert_eq!(a, c, "worker count must not change training trajectories");
}
