//! Property tests for the batched tensor inference engine: every batched
//! path (`forward_batch` / `infer_batch` / `backward_batch` on all three
//! layer types, the batched policy/value heads, the batched PPO update and
//! the batched candidate ranking) must be **bit-for-bit identical** to the
//! per-vector loops it replaced — batching is a throughput knob, never a
//! numerics change.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mlir_rl_agent::{
    ActionRecord, FlatPolicyNetwork, PolicyHyperparams, PolicyModel, PolicyNetwork, PpoConfig,
    PpoTrainer, ValueNetwork,
};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{EnvConfig, Observation, ObservationBatch, OptimizationEnv};
use mlir_rl_ir::{Module, ModuleBuilder};
use mlir_rl_nn::{Linear, Lstm, Mlp, Tensor2};

fn random_rows(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Linear`: batched forward/inference rows and batched backward
    /// (input gradients and accumulated parameter gradients) are bitwise
    /// equal to a serial per-sample loop in stack-replay order.
    #[test]
    fn linear_batch_paths_match_serial(
        input in 1usize..24, output in 1usize..24, batch in 1usize..10, seed in 0u64..512,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut batched = Linear::new(input, output, &mut rng);
        let mut serial = batched.clone();
        let rows = random_rows(batch, input, &mut rng);
        let grads = random_rows(batch, output, &mut rng);
        let x = Tensor2::from_rows(input, rows.iter().map(Vec::as_slice));
        let g = Tensor2::from_rows(output, grads.iter().map(Vec::as_slice));

        let fwd = batched.forward_batch(&x);
        let mut infer_out = Tensor2::zeros(0, 0);
        batched.infer_batch_into(&x, &mut infer_out);
        prop_assert_eq!(&fwd, &infer_out);
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(fwd.row(i), serial.forward(row).as_slice());
        }

        let gx = batched.backward_batch(&g);
        let mut gx_serial: Vec<Vec<f64>> = grads.iter().rev().map(|gr| serial.backward(gr)).collect();
        gx_serial.reverse();
        for (i, gs) in gx_serial.iter().enumerate() {
            prop_assert_eq!(gx.row(i), gs.as_slice());
        }
        let pb = batched.parameters_mut();
        let ps = serial.parameters_mut();
        for (a, b) in pb.iter().zip(&ps) {
            prop_assert_eq!(&a.grad, &b.grad);
        }
    }

    /// `Mlp`: batched forward/inference/backward bitwise equal to the
    /// serial loop, for both relu-output and linear-output stacks.
    #[test]
    fn mlp_batch_paths_match_serial(
        input in 1usize..16, hidden in 1usize..16, batch in 1usize..9,
        relu_output in 0u32..2, seed in 0u64..512,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut batched = Mlp::new(&[input, hidden, hidden], relu_output == 1, &mut rng);
        let mut serial = batched.clone();
        let rows = random_rows(batch, input, &mut rng);
        let grads = random_rows(batch, batched.output_size(), &mut rng);
        let x = Tensor2::from_rows(input, rows.iter().map(Vec::as_slice));
        let g = Tensor2::from_rows(batched.output_size(), grads.iter().map(Vec::as_slice));

        let fwd = batched.forward_batch(&x);
        let inferred = batched.infer_batch(&x).clone();
        prop_assert_eq!(&fwd, &inferred);
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(fwd.row(i), serial.forward(row).as_slice());
            prop_assert_eq!(fwd.row(i), serial.forward_inference(row).as_slice());
        }

        let gx = batched.backward_batch(&g);
        let mut gx_serial: Vec<Vec<f64>> = grads.iter().rev().map(|gr| serial.backward(gr)).collect();
        gx_serial.reverse();
        for (i, gs) in gx_serial.iter().enumerate() {
            prop_assert_eq!(gx.row(i), gs.as_slice());
        }
        let pb = batched.parameters_mut();
        let ps = serial.parameters_mut();
        for (a, b) in pb.iter().zip(&ps) {
            prop_assert_eq!(&a.grad, &b.grad);
        }
    }

    /// `Lstm`: batched sequence forward/inference/backward bitwise equal to
    /// the serial loop (two time steps, the producer-consumer shape, plus
    /// longer sequences).
    #[test]
    fn lstm_batch_paths_match_serial(
        input in 1usize..10, hidden in 1usize..10, batch in 1usize..7,
        steps in 1usize..4, seed in 0u64..512,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut batched = Lstm::new(input, hidden, &mut rng);
        let mut serial = batched.clone();
        let sequences: Vec<Vec<Vec<f64>>> =
            (0..batch).map(|_| random_rows(steps, input, &mut rng)).collect();
        let grads = random_rows(batch, hidden, &mut rng);
        let step_tensors: Vec<Tensor2> = (0..steps)
            .map(|t| Tensor2::from_rows(input, sequences.iter().map(|s| s[t].as_slice())))
            .collect();

        let fwd = batched.forward_batch(&step_tensors);
        let refs: Vec<&Tensor2> = step_tensors.iter().collect();
        let inferred = batched.infer_batch(&refs).clone();
        prop_assert_eq!(&fwd, &inferred);
        for (b, seq) in sequences.iter().enumerate() {
            prop_assert_eq!(fwd.row(b), serial.forward_inference(seq).as_slice());
            let borrowed: Vec<&[f64]> = seq.iter().map(Vec::as_slice).collect();
            prop_assert_eq!(fwd.row(b), serial.infer(&borrowed));
        }

        let g = Tensor2::from_rows(hidden, grads.iter().map(Vec::as_slice));
        let gx = batched.backward_batch(&g);
        for seq in &sequences {
            serial.forward(seq);
        }
        let mut gx_serial: Vec<Vec<Vec<f64>>> =
            grads.iter().rev().map(|gr| serial.backward(gr)).collect();
        gx_serial.reverse();
        for (b, gs) in gx_serial.iter().enumerate() {
            for (t, gt) in gs.iter().enumerate() {
                prop_assert_eq!(gx[t].row(b), gt.as_slice());
            }
        }
        let pb = batched.parameters_mut();
        let ps = serial.parameters_mut();
        for (a, b) in pb.iter().zip(&ps) {
            prop_assert_eq!(&a.grad, &b.grad);
        }
    }
}

fn env() -> OptimizationEnv {
    OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()))
}

fn small_dataset() -> Vec<Module> {
    let mut out = Vec::new();
    for (m, n, k) in [(64, 64, 64), (128, 64, 32), (32, 128, 64)] {
        let mut b = ModuleBuilder::new(format!("mm_{m}x{n}x{k}"));
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        out.push(b.finish());
    }
    out
}

fn observations() -> Vec<Observation> {
    let mut e = env();
    small_dataset()
        .into_iter()
        .map(|m| e.reset(m).expect("module has ops"))
        .collect()
}

fn hyper() -> PolicyHyperparams {
    PolicyHyperparams {
        hidden_size: 16,
        backbone_layers: 1,
    }
}

/// A policy wrapper that exposes only the per-sample `PolicyModel` methods,
/// so every batched trait method falls back to the default per-sample
/// loops — i.e. the exact pre-refactor stacked-replay code path.
#[derive(Clone)]
struct SerialPolicy(PolicyNetwork);

impl PolicyModel for SerialPolicy {
    fn select_action(
        &mut self,
        obs: &Observation,
        greedy: bool,
        rng: &mut ChaCha8Rng,
    ) -> ActionRecord {
        self.0.select_action(obs, greedy, rng)
    }
    fn evaluate(&mut self, obs: &Observation, record: &ActionRecord) -> (f64, f64) {
        self.0.evaluate(obs, record)
    }
    fn backward(
        &mut self,
        obs: &Observation,
        record: &ActionRecord,
        coeff_logprob: f64,
        coeff_entropy: f64,
    ) {
        self.0.backward(obs, record, coeff_logprob, coeff_entropy);
    }
    fn zero_grad(&mut self) {
        self.0.zero_grad();
    }
    fn parameters_mut(&mut self) -> Vec<&mut mlir_rl_nn::Param> {
        self.0.parameters_mut()
    }
}

/// The batched PPO update (one blocked matmul per layer per minibatch) is
/// bit-identical to the pre-refactor per-sample replay path: two trainers
/// that differ only in whether the policy overrides the batched trait
/// methods end up with bitwise-equal parameters and iteration statistics.
#[test]
fn ppo_batched_update_is_bit_identical_to_per_sample_replay() {
    let config = EnvConfig::small();
    let ppo = PpoConfig {
        trajectories_per_iteration: 3,
        minibatch_size: 4,
        update_epochs: 2,
        ..PpoConfig::paper()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let policy = PolicyNetwork::new(config.clone(), hyper(), &mut rng);
    let value = ValueNetwork::new(&config, hyper(), &mut rng);
    let mut batched = PpoTrainer::with_policy(policy.clone(), value.clone(), ppo, rng.clone());
    let mut serial = PpoTrainer::with_policy(SerialPolicy(policy), value, ppo, rng);

    let dataset = small_dataset();
    let (mut env_b, mut env_s) = (env(), env());
    for _ in 0..2 {
        let sb = batched.train_iteration(&mut env_b, &dataset);
        let ss = serial.train_iteration(&mut env_s, &dataset);
        assert_eq!(sb, ss, "iteration statistics must be bitwise equal");
    }
    let pb = batched.policy.parameters_mut();
    let ps = serial.policy.0.parameters_mut();
    assert_eq!(pb.len(), ps.len());
    for (a, b) in pb.iter().zip(&ps) {
        assert_eq!(a.value, b.value, "policy parameters must be bitwise equal");
    }
    let vb = batched.value.parameters_mut();
    let vs = serial.value.parameters_mut();
    for (a, b) in vb.iter().zip(&vs) {
        assert_eq!(a.value, b.value, "value parameters must be bitwise equal");
    }
}

/// The value network's batched paths are bitwise equal to the per-sample
/// ones, and batched backward accumulates the same gradients as the
/// reverse-order replay.
#[test]
fn value_network_batch_paths_match_serial() {
    let config = EnvConfig::small();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut batched = ValueNetwork::new(&config, hyper(), &mut rng);
    let mut serial = batched.clone();
    let observations = observations();
    let obs_refs: Vec<&Observation> = observations.iter().collect();
    let batch = ObservationBatch::from_observations(obs_refs.iter().copied());

    let values = batched.forward_batch(&batch);
    let predicted = batched.predict_batch(&batch);
    assert_eq!(values, predicted);
    for (obs, v) in observations.iter().zip(&values) {
        assert_eq!(*v, serial.forward(obs), "per-observation value");
        assert_eq!(*v, serial.predict(obs));
        assert_eq!(*v, serial.predict_fast(obs));
    }

    let grads: Vec<f64> = values
        .iter()
        .enumerate()
        .map(|(i, v)| v - i as f64)
        .collect();
    batched.backward_batch(&grads);
    for g in grads.iter().rev() {
        serial.backward(*g);
    }
    let pb = batched.parameters_mut();
    let ps = serial.parameters_mut();
    for (a, b) in pb.iter().zip(&ps) {
        assert_eq!(a.grad, b.grad, "value gradients must be bitwise equal");
    }
}

/// Batched frontier ranking consumes the RNG per observation in order and
/// is bitwise equal to looped `rank_actions`, for both policy types.
#[test]
fn rank_actions_batch_matches_looped_rank_actions() {
    let config = EnvConfig::small();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut multi = PolicyNetwork::new(config.clone(), hyper(), &mut rng);
    let mut flat = FlatPolicyNetwork::new(config, hyper(), &mut rng);
    let observations = observations();
    let obs_refs: Vec<&Observation> = observations.iter().collect();

    for k in [1usize, 4, 6] {
        let mut rng_loop = ChaCha8Rng::seed_from_u64(100 + k as u64);
        let mut rng_batch = rng_loop.clone();
        let looped: Vec<Vec<ActionRecord>> = obs_refs
            .iter()
            .map(|obs| multi.rank_actions(obs, k, &mut rng_loop))
            .collect();
        let batched = multi.rank_actions_batch(&obs_refs, k, &mut rng_batch);
        assert_eq!(looped, batched, "multi-discrete policy, k = {k}");
        // The RNG streams stay in lockstep: the next draw agrees too.
        assert_eq!(rng_loop.gen::<u64>(), rng_batch.gen::<u64>());

        let mut rng_loop = ChaCha8Rng::seed_from_u64(200 + k as u64);
        let mut rng_batch = rng_loop.clone();
        let looped: Vec<Vec<ActionRecord>> = obs_refs
            .iter()
            .map(|obs| flat.rank_actions(obs, k, &mut rng_loop))
            .collect();
        let batched = flat.rank_actions_batch(&obs_refs, k, &mut rng_batch);
        assert_eq!(looped, batched, "flat policy, k = {k}");
    }
}

/// The multi-discrete policy's batched evaluate/backward agree bitwise with
/// the per-sample path on the same sampled actions.
#[test]
fn policy_evaluate_batch_matches_serial_evaluate() {
    let config = EnvConfig::small();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let mut batched = PolicyNetwork::new(config, hyper(), &mut rng);
    let mut serial = batched.clone();
    let observations = observations();
    let mut sample_rng = ChaCha8Rng::seed_from_u64(14);
    let records: Vec<ActionRecord> = observations
        .iter()
        .map(|obs| batched.select_action(obs, false, &mut sample_rng))
        .collect();
    let items: Vec<(&Observation, &ActionRecord)> = observations.iter().zip(&records).collect();
    let obs_batch = ObservationBatch::from_observations(items.iter().map(|(obs, _)| *obs));

    let evals_batched = PolicyModel::evaluate_batch(&mut batched, &obs_batch, &items);
    let evals_serial: Vec<(f64, f64)> = items
        .iter()
        .map(|(obs, record)| serial.evaluate(obs, record))
        .collect();
    assert_eq!(evals_batched, evals_serial);

    let coeffs: Vec<(f64, f64)> = (0..items.len())
        .map(|i| (0.5 - i as f64 * 0.25, 0.01))
        .collect();
    PolicyModel::backward_batch(&mut batched, &items, &coeffs);
    for ((obs, record), (cl, ce)) in items.iter().zip(&coeffs).rev() {
        serial.backward(obs, record, *cl, *ce);
    }
    let pb = batched.parameters_mut();
    let ps = serial.parameters_mut();
    for (a, b) in pb.iter().zip(&ps) {
        assert_eq!(a.grad, b.grad, "policy gradients must be bitwise equal");
    }
}
