//! Integration test for the learning loop: a short PPO run must not collapse
//! and the trained policy must produce profitable schedules on average.

use mlir_rl_agent::{PolicyHyperparams, PpoConfig};
use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_workloads::dl_ops;

#[test]
fn short_training_run_reaches_profitable_schedules() {
    let config = OptimizerConfig {
        hyper: PolicyHyperparams {
            hidden_size: 24,
            backbone_layers: 1,
        },
        ppo: PpoConfig {
            trajectories_per_iteration: 6,
            minibatch_size: 8,
            update_epochs: 2,
            ..PpoConfig::paper()
        },
        ..OptimizerConfig::quick()
    };
    let mut optimizer = MlirRlOptimizer::new(config);
    let dataset = dl_ops::training_dataset(0.01, 13);
    let history = optimizer.train(&dataset, 6);
    assert_eq!(history.len(), 6);

    // The best later iteration should reach a clearly profitable geomean
    // speedup (parallelization alone is worth much more than 1.5x on the
    // modelled 28-core machine).
    let best = history
        .iter()
        .skip(2)
        .map(|s| s.geomean_speedup)
        .fold(f64::MIN, f64::max);
    assert!(
        best > 1.5,
        "trained agent should find profitable schedules, best geomean {best}"
    );

    // Evaluation on unseen shapes produces finite, positive speedups.
    let eval: Vec<_> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .take(5)
        .collect();
    for (name, outcome) in optimizer.optimize_all(&eval) {
        assert!(
            outcome.speedup.is_finite() && outcome.speedup > 0.0,
            "{name}: {outcome:?}"
        );
    }
}
