//! Cross-crate integration tests: IR -> transformations -> cost model ->
//! environment -> agent, exercised together the way the examples and the
//! experiment harness use them.

use mlir_rl_baselines::{
    speedup_over_mlir, Baseline, MullapudiAutoscheduler, VendorLibrary, VendorMode,
};
use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{Action, EnvConfig, OptimizationEnv};
use mlir_rl_ir::{parser::parse_module, printer::print_module, ModuleBuilder, OpId};
use mlir_rl_transforms::{ScheduledModule, Transformation};
use mlir_rl_workloads::{dl_ops, LqcdApplication, NeuralNetwork};

fn matmul_relu() -> mlir_rl_ir::Module {
    let mut b = ModuleBuilder::new("chain");
    let a = b.argument("A", vec![256, 512]);
    let w = b.argument("B", vec![512, 128]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    b.finish()
}

#[test]
fn ir_roundtrips_and_schedules_end_to_end() {
    let module = matmul_relu();
    // Print -> parse -> validate.
    let reparsed = parse_module(&print_module(&module)).unwrap();
    reparsed.validate().unwrap();

    // Schedule the reparsed module and check the cost model sees the same
    // improvement as for the original.
    let cm = CostModel::new(MachineModel::xeon_e5_2680_v4());
    for m in [&module, &reparsed] {
        let baseline = cm.estimate_baseline(m).total_s;
        let mut sm = ScheduledModule::new(m.clone());
        sm.apply(
            OpId(0),
            Transformation::TiledParallelization {
                tile_sizes: vec![32, 32, 0],
            },
        )
        .unwrap();
        let optimized = cm.estimate_scheduled(&sm).total_s;
        assert!(optimized < baseline);
    }
}

#[test]
fn a_hand_written_schedule_beats_the_baseline_through_the_env() {
    let mut env = OptimizationEnv::new(
        EnvConfig::small(),
        CostModel::new(MachineModel::xeon_e5_2680_v4()),
    );
    env.reset(matmul_relu()).unwrap();
    // Optimize the relu by fusing its producer, then stop.
    let out = env.step(&Action::TiledFusion {
        tile_indices: vec![2, 2],
    });
    assert!(out.applied);
    let out = env.step(&Action::NoTransformation);
    assert!(out.done);
    assert!(env.final_speedup() > 1.0);
}

#[test]
fn rl_optimizer_handles_every_workload_family() {
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    // One representative module from each family.
    let modules = vec![
        dl_ops::matmul_module(128, 128, 256),
        dl_ops::conv2d_module(1, 16, 28, 28, 32, 3, 1),
        NeuralNetwork::Vgg.module(),
        LqcdApplication::HexaquarkHexaquark.module(),
    ];
    for module in &modules {
        let outcome = optimizer.optimize(module);
        assert!(
            outcome.speedup.is_finite() && outcome.speedup > 0.0,
            "{} produced speedup {}",
            module.name(),
            outcome.speedup
        );
    }
}

#[test]
fn baselines_and_rl_agree_on_the_measurement_protocol() {
    let machine = MachineModel::xeon_e5_2680_v4();
    let module = dl_ops::matmul_module(512, 512, 512);
    let vendor = VendorLibrary::new(VendorMode::Compiled).optimize(&module);
    let mullapudi = MullapudiAutoscheduler::new().optimize(&module);
    let v = speedup_over_mlir(&vendor, &module, &machine);
    let m = speedup_over_mlir(&mullapudi, &module, &machine);
    // Fig. 5 shape: the expert-kernel library dominates generic codegen on
    // compute-bound matmul.
    assert!(v > m, "vendor {v} should beat mullapudi {m} on matmul");
    assert!(m > 1.0);
}
