//! The service-API determinism battery: the same request set, submitted in
//! shuffled orders to services with 1/2/4 workers, must produce
//! bitwise-identical responses (the deterministic response fields — status,
//! outcome estimates, action sequences, schedules — not the warmth- and
//! load-dependent accounting counts) with every hardening knob (bounded
//! queue, client quotas and weights, budget reservations) enabled;
//! budget-exhausted and cancelled requests report `Skipped`/`Stopped`
//! consistently with the portfolio `MemberStatus` semantics; and the
//! overload battery proves a saturated service sheds/rejects
//! deterministically and never hangs a client.

use mlir_rl::agent::{PolicyHyperparams, PolicyNetwork};
use mlir_rl::env::EnvConfig;
use mlir_rl::ir::{Module, ModuleBuilder};
use mlir_rl::obs::EventKind;
use mlir_rl::search::SearchSpec;
use mlir_rl::{
    wait_all, MlirRlOptimizer, OptimizationRequest, OptimizationService, OptimizerConfig,
    ResponseStatus, ServiceConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn policy(seed: u64) -> PolicyNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    PolicyNetwork::new(
        EnvConfig::small(),
        PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        },
        &mut rng,
    )
}

fn chain(m: u64, n: u64, k: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("chain_{m}x{n}x{k}"));
    let a = b.argument("A", vec![m, k]);
    let w = b.argument("B", vec![k, n]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    b.finish()
}

/// A mixed request set exercising every spec variant, with fixed seeds.
fn request_set() -> Vec<OptimizationRequest> {
    let modules = [chain(64, 64, 64), chain(128, 64, 32), chain(96, 48, 64)];
    let specs = [
        SearchSpec::Greedy,
        SearchSpec::beam(3),
        SearchSpec::Mcts {
            iterations: 6,
            branch: 2,
            widening: Some((1.0, 0.6)),
        },
        SearchSpec::random(3),
        SearchSpec::round_robin(vec![SearchSpec::Greedy, SearchSpec::beam(2)]),
        SearchSpec::racing(vec![SearchSpec::Greedy, SearchSpec::beam(2)], 0.0),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            OptimizationRequest::new(modules[i % modules.len()].clone(), spec.clone())
                .with_seed(1000 + i as u64)
                .with_priority((i % 3) as i32)
        })
        .collect()
}

/// The deterministic outcome fields: baseline/best/speedup bits, the action
/// sequence and the node count.
type OutcomeBits = (u64, u64, u64, String, usize);

/// Everything the determinism guarantee covers, extracted from a response.
fn deterministic_fields(
    response: &mlir_rl::OptimizationResponse,
) -> (String, String, ResponseStatus, Option<OutcomeBits>, u64) {
    (
        response.module.clone(),
        response.searcher.clone(),
        response.status,
        response.outcome.as_ref().map(|o| {
            (
                o.baseline_s.to_bits(),
                o.best_s.to_bits(),
                o.speedup.to_bits(),
                format!("{:?}", o.best_actions),
                o.nodes_expanded,
            )
        }),
        response.fingerprint(),
    )
}

#[test]
fn responses_are_identical_across_worker_counts_and_submission_orders() {
    let requests = request_set();
    let n = requests.len();
    // Three submission orders: as-built, reversed, and an interleave.
    let orders: Vec<Vec<usize>> = vec![
        (0..n).collect(),
        (0..n).rev().collect(),
        (0..n).map(|i| (i * 5 + 2) % n).collect(),
    ];
    assert!(orders.iter().all(|o| {
        let mut sorted = o.clone();
        sorted.sort_unstable();
        sorted == (0..n).collect::<Vec<_>>()
    }));

    let mut reference: Option<Vec<_>> = None;
    for workers in [1usize, 2, 4] {
        for order in &orders {
            // Every hardening knob enabled at once: a bounded queue (large
            // enough that nothing overflows), per-client quotas and
            // weights, and a budget cap high enough that reservation
            // admission passes — none of them may move a single bit of an
            // admitted response.
            let service = OptimizationService::new(
                ServiceConfig::quick()
                    .with_workers(workers)
                    .with_queue_capacity(64)
                    .with_client_quota(2)
                    .with_client_weight("alice", 3)
                    .with_eval_budget(1_000_000),
                policy(7),
            );
            let pending: Vec<_> = order
                .iter()
                .map(|&i| {
                    let client = ["alice", "bob"][i % 2];
                    service.submit(requests[i].clone().with_client(client))
                })
                .collect();
            let mut fields = vec![None; n];
            for (&i, p) in order.iter().zip(&pending) {
                fields[i] = Some(deterministic_fields(&p.wait()));
            }
            let fields: Vec<_> = fields.into_iter().map(Option::unwrap).collect();
            match &reference {
                None => reference = Some(fields),
                Some(reference) => assert_eq!(
                    reference, &fields,
                    "responses diverged at {workers} workers, order {order:?}"
                ),
            }
        }
    }
    // Every request completed (valid specs, no budget, no cancellation).
    for fields in reference.expect("at least one run") {
        assert_eq!(fields.2, ResponseStatus::Completed);
        assert!(fields.3.is_some());
    }
}

#[test]
fn aggregated_inference_moves_no_bit_of_any_response() {
    // The cross-request inference aggregator battery: the same request
    // set, in shuffled orders, against 1/2/4-worker services with
    // batching off, batching on (coalescing config), a degenerate
    // max_batch=1 config, and a timeout-dominated config — every
    // deterministic response field, bit for bit.
    let requests = request_set();
    let n = requests.len();
    let orders: Vec<Vec<usize>> = vec![
        (0..n).collect(),
        (0..n).rev().collect(),
        (0..n).map(|i| (i * 5 + 2) % n).collect(),
    ];
    let batching: [Option<(usize, u64)>; 4] = [
        None,             // direct path
        Some((16, 500)),  // coalescing: room for the whole frontier
        Some((1, 1_000)), // degenerate: one group per batch
        Some((64, 1)),    // timeout-dominated: flush almost immediately
    ];

    let mut reference: Option<Vec<_>> = None;
    let mut coalesced = false;
    for workers in [1usize, 2, 4] {
        for config in batching {
            for order in &orders {
                let mut service_config = ServiceConfig::quick().with_workers(workers);
                if let Some((max_batch, max_wait_us)) = config {
                    service_config = service_config.with_inference_batching(max_batch, max_wait_us);
                }
                let service = OptimizationService::new(service_config, policy(7));
                let pending: Vec<_> = order
                    .iter()
                    .map(|&i| service.submit(requests[i].clone()))
                    .collect();
                let mut fields = vec![None; n];
                for (&i, p) in order.iter().zip(&pending) {
                    fields[i] = Some(deterministic_fields(&p.wait()));
                }
                let fields: Vec<_> = fields.into_iter().map(Option::unwrap).collect();
                match &reference {
                    None => reference = Some(fields),
                    Some(reference) => assert_eq!(
                        reference, &fields,
                        "responses diverged at {workers} workers, batching {config:?}, \
                         order {order:?}"
                    ),
                }
                if let Some(stats) = service.aggregator_stats() {
                    assert!(stats.batches > 0, "batching on must form batches");
                    assert_eq!(
                        stats.rows_per_batch.iter().sum::<u64>(),
                        stats.batches,
                        "every batch lands in one histogram bucket"
                    );
                    if config == Some((1, 1_000)) {
                        assert_eq!(
                            stats.batches, stats.groups,
                            "max_batch=1 must degenerate to one group per batch"
                        );
                    }
                    coalesced |= stats.mean_rows_per_batch() > 1.0;
                } else {
                    assert!(config.is_none());
                }
            }
        }
    }
    for fields in reference.expect("at least one run") {
        assert_eq!(fields.2, ResponseStatus::Completed);
        assert!(fields.3.is_some());
    }
    assert!(
        coalesced,
        "at least one batching run must pack more than one row per batch"
    );
}

#[test]
fn tracing_is_observational_and_traces_every_request() {
    let requests = request_set();
    let n = requests.len();

    // Reference: the same stream on an untraced service.
    let untraced_service =
        OptimizationService::new(ServiceConfig::quick().with_workers(2), policy(7));
    assert!(!untraced_service.tracing_enabled());
    assert!(untraced_service.trace_snapshot().is_none());
    let untraced = wait_all(&untraced_service.submit_batch(requests.clone()));
    assert!(untraced.iter().all(|r| r.trace_id.is_none()));

    // Tracing on: same responses, bit for bit, plus a full trace.
    let traced_service = OptimizationService::new(
        ServiceConfig::quick().with_workers(2).with_tracing(4096),
        policy(7),
    );
    assert!(traced_service.tracing_enabled());
    let traced = wait_all(&traced_service.submit_batch(requests.clone()));
    for (u, t) in untraced.iter().zip(&traced) {
        assert_eq!(
            deterministic_fields(u),
            deterministic_fields(t),
            "tracing must not move a single bit of a response"
        );
        assert_eq!(u.fingerprint(), t.fingerprint());
    }

    // Every response carries a distinct trace id (never 0 — that means
    // "untraced" on the wire)...
    let mut ids: Vec<u64> = traced
        .iter()
        .map(|r| r.trace_id.expect("traced service stamps every response"))
        .collect();
    assert!(ids.iter().all(|&id| id != 0));
    let unsorted = ids.clone();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "trace ids must be unique per request");

    // ...and the snapshot holds the full lifecycle for each of them.
    let snapshot = traced_service.trace_snapshot().expect("tracing is on");
    assert_eq!(snapshot.dropped, 0, "4096-deep rings must not overflow");
    for &id in &unsorted {
        let events = snapshot.for_trace(id);
        for kind in [
            EventKind::Submitted,
            EventKind::Queued,
            EventKind::Dispatched,
            EventKind::RunBegin,
            EventKind::RunEnd,
        ] {
            assert!(
                events.iter().any(|e| e.kind == kind),
                "trace {id} is missing its {kind:?} lifecycle event"
            );
        }
    }
    // The request set exercises every searcher family, so every phase
    // event kind must appear, scoped to some request's trace.
    for kind in [
        EventKind::GreedyStep,
        EventKind::BeamDepth,
        EventKind::MctsIteration,
        EventKind::RandomEpisode,
        EventKind::MemberBegin,
        EventKind::MemberEnd,
        EventKind::MemberWin,
    ] {
        assert!(
            snapshot.count(kind) > 0,
            "expected at least one {kind:?} searcher phase event"
        );
    }

    // The exporters accept the snapshot: Chrome JSON with one complete
    // span per admitted request, and one JSONL line per event.
    let chrome = snapshot.to_chrome_json();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.matches("\"ph\":\"X\"").count() >= n);
    assert_eq!(snapshot.to_jsonl().lines().count(), snapshot.events.len());

    // The unified Prometheus exposition covers serving, cache and budget
    // series plus the raw latency histograms.
    let exposition = traced_service.prometheus();
    for series in [
        "mlir_rl_requests_submitted_total",
        "mlir_rl_requests_completed_total",
        "mlir_rl_cache_hits_total",
        "mlir_rl_budget_spent",
        "mlir_rl_queue_wait_seconds_bucket",
        "mlir_rl_service_time_seconds_count",
    ] {
        assert!(
            exposition.contains(series),
            "{series} missing from the Prometheus exposition"
        );
    }
}

#[test]
fn budget_exhaustion_skips_in_submission_order_at_any_worker_count() {
    // The ledger is charged a reservation from the spec's cost estimate at
    // *submit*, in submission order, so which requests an exhausted budget
    // refuses is a pure function of the submission sequence — not of the
    // worker count or of when earlier searches happen to finish. Capping
    // the budget at exactly the first request's reservation admits request
    // 1 and refuses 2 and 3, every time, at every worker count — the
    // request-level analogue of the round-robin portfolio's
    // budget-skipped members.
    let requests: Vec<OptimizationRequest> = [64u64, 96, 128]
        .iter()
        .map(|&s| OptimizationRequest::new(chain(s, s, s), SearchSpec::Greedy).with_seed(5))
        .collect();
    let est = SearchSpec::Greedy.cost_estimate(&EnvConfig::small(), &requests[0].module);

    for workers in [1usize, 4] {
        for _ in 0..2 {
            // Twice per worker count: the skip pattern is reproducible.
            let service = OptimizationService::new(
                ServiceConfig::quick()
                    .with_workers(workers)
                    .with_eval_budget(est)
                    .paused(),
                policy(9),
            );
            let pending = service.submit_batch(requests.clone());
            // Refusals are decided at submit: the skipped responses are
            // already available while the service is still paused.
            for skipped in &pending[1..] {
                let response = skipped.try_response().expect("refused at submit");
                // Skipped == never ran: no outcome, zero accounting, a
                // reason.
                assert_eq!(response.status, ResponseStatus::Skipped);
                assert!(response.outcome.is_none());
                assert_eq!(response.total_lookups(), 0);
                assert!(response.error.as_ref().unwrap().contains("budget"));
            }
            service.resume();
            let responses = wait_all(&pending);
            assert_eq!(responses[0].status, ResponseStatus::Completed);
            assert_eq!(service.stats().skipped, 2);
        }
    }
}

#[test]
fn saturated_service_sheds_and_rejects_deterministically_and_never_hangs() {
    // Overflow: a paused capacity-2 service answers the overflowing tail
    // Rejected synchronously at submit, in submission order — the same
    // refusal set at 1 worker and at 4, run after run.
    for workers in [1usize, 4] {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let service = OptimizationService::new(
                ServiceConfig::quick()
                    .with_workers(workers)
                    .with_queue_capacity(2)
                    .paused(),
                policy(17),
            );
            let pending: Vec<_> = (0..5u64)
                .map(|i| {
                    service.submit(
                        OptimizationRequest::new(chain(64, 64, 64), SearchSpec::Greedy)
                            .with_seed(i),
                    )
                })
                .collect();
            // The overflowed requests never block the submitter.
            for p in &pending[2..] {
                let r = p.try_response().expect("rejected at submit");
                assert_eq!(r.status, ResponseStatus::Rejected);
                assert!(r.error.as_deref().unwrap().starts_with("backpressure: "));
                assert!(r.outcome.is_none());
            }
            service.resume();
            let statuses: Vec<ResponseStatus> =
                wait_all(&pending).iter().map(|r| r.status).collect();
            runs.push(statuses);
        }
        assert_eq!(runs[0], runs[1], "refusal set must be reproducible");
        assert_eq!(
            runs[0],
            vec![
                ResponseStatus::Completed,
                ResponseStatus::Completed,
                ResponseStatus::Rejected,
                ResponseStatus::Rejected,
                ResponseStatus::Rejected,
            ]
        );
    }

    // Shedding + quotas: expired deadlines are load-shed at dequeue with
    // Skipped, and a quota-1 4-worker service interleaving a hot and a
    // cold client still answers every request — no deadlock, no hang.
    let service = OptimizationService::new(
        ServiceConfig::quick()
            .with_workers(4)
            .with_client_quota(1)
            .paused(),
        policy(17),
    );
    let mut pending = Vec::new();
    for i in 0..4u64 {
        pending.push(
            service.submit(
                OptimizationRequest::new(chain(64, 64, 64), SearchSpec::Greedy)
                    .with_seed(i)
                    .with_client("hot")
                    .with_deadline(std::time::Duration::ZERO),
            ),
        );
        pending.push(
            service.submit(
                OptimizationRequest::new(chain(96, 48, 64), SearchSpec::Greedy)
                    .with_seed(i)
                    .with_client("cold"),
            ),
        );
    }
    service.resume();
    let responses = wait_all(&pending);
    for (i, response) in responses.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(response.status, ResponseStatus::Skipped);
            assert!(response.error.as_ref().unwrap().contains("shed"));
            assert_eq!(response.total_lookups(), 0);
        } else {
            assert_eq!(response.status, ResponseStatus::Completed);
        }
    }
    let metrics = service.metrics();
    assert_eq!(metrics.deadline_sheds, 4);
    assert_eq!(metrics.completed, 4);
}

#[test]
fn cancellation_reports_skipped_or_stopped_never_a_lie() {
    // Cancelled while queued (deterministic via the paused service):
    // Skipped, zero accounting.
    let service = OptimizationService::new(ServiceConfig::quick().paused(), policy(3));
    let cancelled = service
        .submit(OptimizationRequest::new(chain(64, 64, 64), SearchSpec::random(50)).with_seed(2));
    cancelled.cancel();
    service.resume();
    let response = cancelled.wait();
    assert_eq!(response.status, ResponseStatus::Skipped);
    assert!(response.error.as_ref().unwrap().contains("cancelled"));
    assert_eq!(response.total_lookups(), 0);
    assert!(response.outcome.is_none());

    // Cancelled mid-run (inherently racy, so accept each legal landing
    // spot and assert its *semantics*): Stopped must carry a valid
    // best-so-far with no more work than the uncancelled run; Completed
    // must be bitwise the uncancelled outcome; Skipped must be empty.
    let uncancelled = OptimizationService::new(ServiceConfig::quick(), policy(3))
        .submit(OptimizationRequest::new(chain(64, 64, 64), SearchSpec::random(50)).with_seed(2))
        .wait();
    let full = uncancelled.outcome.as_ref().expect("uncancelled completes");
    let service = OptimizationService::new(ServiceConfig::quick(), policy(3));
    let pending = service
        .submit(OptimizationRequest::new(chain(64, 64, 64), SearchSpec::random(50)).with_seed(2));
    pending.cancel();
    let raced = pending.wait();
    match raced.status {
        ResponseStatus::Skipped => {
            assert!(raced.outcome.is_none());
            assert_eq!(raced.total_lookups(), 0);
        }
        ResponseStatus::Stopped => {
            let partial = raced.outcome.as_ref().expect("stopped keeps best-so-far");
            assert!(partial.nodes_expanded <= full.nodes_expanded);
            assert!(
                partial.speedup >= 1.0 - 1e-12,
                "baseline bounds best-so-far"
            );
        }
        ResponseStatus::Completed => {
            assert_eq!(raced.fingerprint(), uncancelled.fingerprint());
        }
        ResponseStatus::Rejected => panic!("a valid request is never rejected"),
    }
}

#[test]
fn rejected_requests_answer_with_errors_and_service_survives() {
    let service = OptimizationService::new(ServiceConfig::quick(), policy(11));
    let mut bad_env = EnvConfig::small();
    bad_env.max_schedule_len = 0;
    let responses = wait_all(&service.submit_batch(vec![
        OptimizationRequest::new(chain(64, 64, 64), SearchSpec::round_robin(Vec::new())),
        OptimizationRequest::new(chain(64, 64, 64), SearchSpec::Greedy).with_env(bad_env),
        OptimizationRequest::new(chain(64, 64, 64), SearchSpec::Greedy).with_seed(1),
    ]));
    assert_eq!(responses[0].status, ResponseStatus::Rejected);
    assert!(responses[0].error.as_ref().unwrap().contains("roster"));
    assert_eq!(responses[1].status, ResponseStatus::Rejected);
    assert!(responses[1]
        .error
        .as_ref()
        .unwrap()
        .contains("schedule length"));
    assert_eq!(responses[2].status, ResponseStatus::Completed);
    let stats = service.stats();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.completed, 1);
}

#[test]
fn portfolio_spec_requests_carry_member_attribution() {
    let service = OptimizationService::new(ServiceConfig::quick(), policy(13));
    let response = service
        .submit(
            OptimizationRequest::new(
                chain(96, 48, 64),
                SearchSpec::round_robin(vec![
                    SearchSpec::Greedy,
                    SearchSpec::beam(2),
                    SearchSpec::random(2),
                ]),
            )
            .with_seed(21),
        )
        .wait();
    assert_eq!(response.status, ResponseStatus::Completed);
    assert_eq!(response.searcher, "portfolio-rr-3");
    let outcome = response.outcome.expect("completed");
    assert_eq!(outcome.members.len(), 3);
    assert_eq!(outcome.members.iter().filter(|m| m.winner).count(), 1);
    // The greedy-seeded roster is never worse than its greedy member.
    assert!(outcome.speedup >= outcome.members[0].speedup);
}

#[test]
fn facade_wrappers_share_the_service_cache() {
    let mut opt = MlirRlOptimizer::new(OptimizerConfig::quick());
    let module = chain(64, 64, 64);
    // Warm through a deprecated wrapper...
    let wrapped = opt.optimize(&module);
    assert!(wrapped.speedup > 0.0);
    // ...then a direct request for the same module mostly hits the same
    // persistent table.
    let response = opt
        .submit(OptimizationRequest::new(module.clone(), SearchSpec::Greedy).with_seed(77))
        .wait();
    assert_eq!(response.status, ResponseStatus::Completed);
    assert!(
        response.cache_hits > 0,
        "facade warmth must serve direct requests"
    );
    // And a spawned standalone service joins the same table too.
    let service = opt.spawn_service(2);
    let standalone = service
        .submit(OptimizationRequest::new(module, SearchSpec::Greedy).with_seed(77))
        .wait();
    assert!(standalone.cache_hits > 0, "spawned service joins the table");
    assert_eq!(standalone.fingerprint(), response.fingerprint());
}

// ---------------------------------------------------------------------------
// Online learning: versioned policy swaps
// ---------------------------------------------------------------------------

/// Per-version determinism with swaps landing mid-stream: the full request
/// set is admitted under version 0, a hot swap publishes version 1 while
/// those requests are still queued (the service is paused), and the set is
/// admitted again under version 1. At 1/2/4 workers and shuffled orders
/// within each half, every response must be bit-identical *per version* —
/// and the pre-swap half must be served on version 0 even though the swap
/// landed before any of it ran.
#[test]
fn responses_are_identical_per_policy_version_while_swaps_land_mid_stream() {
    let requests = request_set();
    let n = requests.len();
    let orders: Vec<Vec<usize>> = vec![
        (0..n).collect(),
        (0..n).rev().collect(),
        (0..n).map(|i| (i * 5 + 2) % n).collect(),
    ];

    let mut reference: Option<(Vec<_>, Vec<_>)> = None;
    for workers in [1usize, 2, 4] {
        for order in &orders {
            let service = OptimizationService::new(
                ServiceConfig::quick().with_workers(workers).paused(),
                policy(7),
            );
            assert_eq!(service.policy_version(), 0);
            // First half of the stream: admitted (and pinned) at version 0.
            let before: Vec<_> = order
                .iter()
                .map(|&i| service.submit(requests[i].clone()))
                .collect();
            // The swap lands while every one of those requests is queued.
            assert_eq!(service.swap_policy(policy(23)), 1);
            assert_eq!(service.policy_version(), 1);
            assert_eq!(service.policy_swaps(), 1);
            // Second half: the same logical requests, now admitted at v1.
            let after: Vec<_> = order
                .iter()
                .map(|&i| service.submit(requests[i].clone()))
                .collect();
            service.resume();

            let mut v0 = vec![None; n];
            let mut v1 = vec![None; n];
            for (&i, p) in order.iter().zip(&before) {
                let response = p.wait();
                assert_eq!(
                    response.policy_version, 0,
                    "a request admitted before the swap must be served on its \
                     admission version"
                );
                v0[i] = Some(deterministic_fields(&response));
            }
            for (&i, p) in order.iter().zip(&after) {
                let response = p.wait();
                assert_eq!(response.policy_version, 1);
                v1[i] = Some(deterministic_fields(&response));
            }
            let v0: Vec<_> = v0.into_iter().map(Option::unwrap).collect();
            let v1: Vec<_> = v1.into_iter().map(Option::unwrap).collect();
            match &reference {
                None => reference = Some((v0, v1)),
                Some((r0, r1)) => {
                    assert_eq!(
                        r0, &v0,
                        "version-0 responses diverged at {workers} workers, order {order:?}"
                    );
                    assert_eq!(
                        r1, &v1,
                        "version-1 responses diverged at {workers} workers, order {order:?}"
                    );
                }
            }
        }
    }
    let (v0, v1) = reference.expect("at least one run");
    for fields in v0.iter().chain(&v1) {
        assert_eq!(fields.2, ResponseStatus::Completed);
        assert!(fields.3.is_some());
    }
}

/// The fingerprint covers the policy version: swapping in a bitwise copy of
/// the current weights changes *nothing* about the outcome, yet the
/// response fingerprints must diverge — `(module, spec, seed, policy
/// version, env config)` is the determinism key, and version 0 vs 1 are
/// different keys even when the weights collide.
#[test]
fn fingerprint_distinguishes_policy_versions_even_with_identical_weights() {
    let request = OptimizationRequest::new(chain(64, 64, 64), SearchSpec::Greedy).with_seed(42);

    let service = OptimizationService::new(ServiceConfig::quick(), policy(7));
    let v0 = service.submit(request.clone()).wait();
    assert_eq!(v0.policy_version, 0);
    // Same weights, new version.
    service.swap_policy(policy(7));
    let v1 = service.submit(request.clone()).wait();
    assert_eq!(v1.policy_version, 1);

    let o0 = v0.outcome.as_ref().expect("completed");
    let o1 = v1.outcome.as_ref().expect("completed");
    assert_eq!(o0.best_s.to_bits(), o1.best_s.to_bits());
    assert_eq!(
        format!("{:?}", o0.best_actions),
        format!("{:?}", o1.best_actions)
    );
    assert_ne!(
        v0.fingerprint(),
        v1.fingerprint(),
        "the version is part of the fingerprint"
    );

    // And a genuinely different policy at version 1 reproduces bit-for-bit
    // against a fresh service that starts from those weights (modulo the
    // version field, which admission stamps differently).
    service.swap_policy(policy(23));
    let swapped = service.submit(request.clone()).wait();
    assert_eq!(swapped.policy_version, 2);
    let fresh = OptimizationService::new(ServiceConfig::quick(), policy(23))
        .submit(request)
        .wait();
    assert_eq!(fresh.policy_version, 0);
    let a = swapped.outcome.as_ref().expect("completed");
    let b = fresh.outcome.as_ref().expect("completed");
    assert_eq!(a.best_s.to_bits(), b.best_s.to_bits());
    assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
    assert_eq!(
        format!("{:?}", a.best_actions),
        format!("{:?}", b.best_actions)
    );
}

/// Tracing stays purely observational while swaps land mid-stream.
#[test]
fn tracing_moves_no_bit_while_swaps_land() {
    let requests = request_set();
    let run = |config: ServiceConfig| {
        let service = OptimizationService::new(config.paused(), policy(7));
        let before: Vec<_> = requests.iter().map(|r| service.submit(r.clone())).collect();
        service.swap_policy(policy(23));
        let after: Vec<_> = requests.iter().map(|r| service.submit(r.clone())).collect();
        service.resume();
        let mut responses = wait_all(&before);
        responses.extend(wait_all(&after));
        responses
    };
    let untraced = run(ServiceConfig::quick().with_workers(2));
    let traced = run(ServiceConfig::quick().with_workers(2).with_tracing(4096));
    for (u, t) in untraced.iter().zip(&traced) {
        assert_eq!(deterministic_fields(u), deterministic_fields(t));
        assert_eq!(u.policy_version, t.policy_version);
        assert_eq!(u.fingerprint(), t.fingerprint());
    }
}

// ---------------------------------------------------------------------------
// Online learning: the background trainer
// ---------------------------------------------------------------------------

fn online_config() -> mlir_rl::agent::OnlineTrainingConfig {
    mlir_rl::agent::OnlineTrainingConfig {
        sample_every: 1,
        capacity: 64,
        min_batch: 1,
        train_seed: 7,
        ppo: mlir_rl::agent::PpoConfig {
            trajectories_per_iteration: 2,
            minibatch_size: 4,
            update_epochs: 1,
            ..mlir_rl::agent::PpoConfig::paper()
        },
        // Gate off: every train step publishes, so the smoke test needs no
        // luck to observe a swap. The gate's metric itself is covered by
        // the agent crate's greedy_geomean tests and the exp_online CI run.
        promotion_gate: false,
        max_probe_modules: 8,
        max_steps: None,
    }
}

/// The closed loop end to end: served `Completed` responses feed the
/// experience stream, the background trainer runs PPO steps and publishes
/// new versions, later submits are admitted on those versions, and the
/// whole subsystem shows up on the metrics/trace surfaces.
#[test]
fn online_training_feeds_experiences_and_hot_swaps_the_policy() {
    let service = OptimizationService::new(
        ServiceConfig::quick()
            .with_workers(2)
            .with_online_training(online_config())
            .with_tracing(8192),
        policy(7),
    );
    assert!(service.online_training_enabled());

    let request =
        |seed: u64| OptimizationRequest::new(chain(16, 16, 16), SearchSpec::Greedy).with_seed(seed);
    // Keep serving until the trainer has published at least one version
    // (bounded: the loop is cheap and the trainer needs one experience).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let mut seed = 0u64;
    while service.policy_swaps() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "trainer published no version within the bound; stats: {:?}",
            service.online_stats()
        );
        let responses = wait_all(&service.submit_batch(vec![request(seed), request(seed + 1)]));
        assert!(responses
            .iter()
            .all(|r| r.status == ResponseStatus::Completed));
        seed += 2;
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Quiesce the trainer so the version stops moving, then check the
    // loop actually closed: a new submit is admitted on a version > 0.
    service.pause_online_training();
    let version = service.policy_version();
    assert!(version >= 1);
    let response = service.submit(request(1_000)).wait();
    assert_eq!(response.status, ResponseStatus::Completed);
    assert_eq!(response.policy_version, version);

    let stats = service.online_stats().expect("online training is on");
    assert!(stats.train_steps >= 1);
    assert!(stats.experiences_consumed >= 1);

    let metrics = service.metrics();
    assert!(metrics.online_experiences_accepted >= 1);
    assert!(metrics.online_train_steps >= 1);
    assert!(metrics.policy_swaps >= 1);
    assert_eq!(metrics.policy_version, version);
    for field in [
        "\"policy_version\"",
        "\"policy_swaps\"",
        "\"online_experiences_accepted\"",
        "\"online_experiences_dropped\"",
        "\"online_train_steps\"",
        "\"online_gate_rejects\"",
    ] {
        assert!(
            metrics.to_json().contains(field),
            "{field} missing from ServiceMetrics::to_json"
        );
    }
    let exposition = service.prometheus();
    for series in [
        "mlir_rl_online_policy_version",
        "mlir_rl_online_policy_swaps_total",
        "mlir_rl_online_experiences_accepted_total",
        "mlir_rl_online_experiences_dropped_total",
        "mlir_rl_online_train_steps_total",
        "mlir_rl_online_gate_rejects_total",
    ] {
        assert!(
            exposition.contains(series),
            "{series} missing from the Prometheus exposition"
        );
    }

    // The trace holds the subsystem's lifecycle events.
    let snapshot = service.trace_snapshot().expect("tracing is on");
    assert!(snapshot.count(EventKind::ExperienceEnqueued) > 0);
    assert!(snapshot.count(EventKind::TrainStep) > 0);
    assert!(snapshot.count(EventKind::PolicySwap) > 0);
}

/// Config validation: the online knobs are checked, and online training is
/// refused alongside inference batching (the aggregator's shared inference
/// thread cannot honor per-request version pinning).
#[test]
fn online_training_config_is_validated_against_the_service_config() {
    let mut zero = online_config();
    zero.sample_every = 0;
    assert!(OptimizationService::try_new(
        ServiceConfig::quick().with_online_training(zero),
        policy(7),
    )
    .is_err());

    let err = OptimizationService::try_new(
        ServiceConfig::quick()
            .with_online_training(online_config())
            .with_inference_batching(4, 100),
        policy(7),
    )
    .expect_err("online training + inference batching must be refused");
    assert!(err.contains("incompatible"));
}

/// Regression: `MlirRlOptimizer::train` must invalidate the lazily-built
/// internal service, and the service rebuilt afterwards must serve the
/// *new* weights (checked bitwise through the weight-snapshot
/// fingerprint), not a stale pre-training snapshot.
#[test]
fn facade_training_invalidates_the_internal_service_policy_snapshot() {
    use mlir_rl::agent::WeightSnapshot;
    let mut opt = MlirRlOptimizer::new(OptimizerConfig::quick());
    let module = chain(64, 64, 64);

    // Force the internal service into existence and pin its weights.
    let request = OptimizationRequest::new(module.clone(), SearchSpec::Greedy).with_seed(3);
    let before = opt.submit(request.clone()).wait();
    assert_eq!(before.status, ResponseStatus::Completed);
    let before_fp = opt.service().policy().clone().weights_fingerprint();
    assert_eq!(before_fp, opt.policy().clone().weights_fingerprint());

    // Training moves the trainer's weights...
    opt.train(&[module], 1);
    let trained_fp = opt.policy().clone().weights_fingerprint();
    assert_ne!(
        before_fp, trained_fp,
        "a PPO iteration must move the policy weights"
    );

    // ...and the next deployment call rebuilds the service on them.
    let after = opt.submit(request).wait();
    assert_eq!(after.status, ResponseStatus::Completed);
    assert_eq!(
        opt.service().policy().clone().weights_fingerprint(),
        trained_fp,
        "the rebuilt service must serve the post-training weights"
    );
}
