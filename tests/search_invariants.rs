//! The searcher invariant harness: one table-driven battery that EVERY
//! `Searcher` implementation — present and future — is run through.
//!
//! The contract the battery enforces (add new searchers to `roster()` and
//! they inherit it):
//!
//! 1. **Same-seed reproducibility**: two searches from identical fresh
//!    state are bit-for-bit identical (racing portfolios: identical in
//!    everything but the per-member hit/miss split, whose sum is still
//!    deterministic).
//! 2. **Lookup accounting**: `evaluations + cache_hits == total_lookups`,
//!    and for serial searchers the outcome's delta agrees with the
//!    environment cache's own counters.
//! 3. **Greedy floor**: searchers seeded with the greedy trajectory
//!    (beam, portfolios containing greedy) never report a worse speedup
//!    than greedy decoding under the same seed.
//! 4. **Snapshot hygiene**: running any searcher on an environment does
//!    not poison it — a snapshot taken before the search restores to a
//!    bitwise-identical mid-episode state afterwards.

use proptest::prelude::*;

use mlir_rl_agent::{PolicyHyperparams, PolicyNetwork};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{EnvConfig, OptimizationEnv};
use mlir_rl_ir::{Module, ModuleBuilder};
use mlir_rl_obs::TraceRecorder;
use mlir_rl_search::{
    random_action, BeamSearch, GreedyPolicy, Mcts, Portfolio, RandomSearch, SearchDriver,
    SearchOutcome, Searcher,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn env() -> OptimizationEnv {
    OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()))
}

fn policy(seed: u64) -> PolicyNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    PolicyNetwork::new(
        EnvConfig::small(),
        PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        },
        &mut rng,
    )
}

fn chain(m: u64, n: u64, k: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("chain_{m}x{n}x{k}"));
    let a = b.argument("A", vec![m, k]);
    let w = b.argument("B", vec![k, n]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    b.finish()
}

/// One roster entry: the searcher plus which battery clauses apply to it.
struct Entry {
    searcher: Box<dyn Searcher<PolicyNetwork>>,
    /// Seeded with the greedy trajectory: must be `>=` greedy decoding.
    greedy_seeded: bool,
    /// Runs members on racing threads: the per-member hit/miss split (but
    /// not its sum) may vary, and the caller's env handle does not observe
    /// the member threads' lookups.
    racing: bool,
}

fn entry(searcher: impl Searcher<PolicyNetwork> + 'static, greedy_seeded: bool) -> Entry {
    Entry {
        searcher: Box::new(searcher),
        greedy_seeded,
        racing: false,
    }
}

/// Every `Searcher` implementation, in one table. New searchers go here.
fn roster() -> Vec<Entry> {
    vec![
        entry(GreedyPolicy, true),
        entry(BeamSearch::new(1), true),
        entry(BeamSearch::new(4), true),
        entry(Mcts::new(8).with_branch(3), false),
        entry(
            Mcts::new(8)
                .with_branch(3)
                .with_root_noise(0.25, 0.3)
                .with_value_normalization(),
            false,
        ),
        entry(
            Mcts::new(8)
                .with_branch(4)
                .with_progressive_widening(1.0, 0.6),
            false,
        ),
        entry(RandomSearch::new(3), false),
        entry(
            Portfolio::round_robin()
                .with_member(GreedyPolicy)
                .with_member(BeamSearch::new(2))
                .with_member(Mcts::new(6).with_branch(2)),
            true,
        ),
        entry(
            Portfolio::round_robin()
                .with_member(GreedyPolicy)
                .with_member(BeamSearch::new(2))
                .with_budget(40),
            true,
        ),
        Entry {
            searcher: Box::new(
                Portfolio::racing(2.0)
                    .with_member(GreedyPolicy)
                    .with_member(BeamSearch::new(2))
                    .with_member(RandomSearch::new(2)),
            ),
            greedy_seeded: true,
            racing: true,
        },
    ]
}

/// The seed-determined payload of an outcome: everything except the cache
/// hit/miss split (warmth/interleaving-dependent) and the member rows
/// (racing losers' rows cover timing-dependent partial work).
fn deterministic_fields(
    o: &SearchOutcome,
) -> (String, u64, u64, Vec<mlir_rl_env::Action>, usize, usize) {
    (
        o.module.clone(),
        o.best_s.to_bits(),
        o.speedup.to_bits(),
        o.best_actions.clone(),
        o.nodes_expanded,
        o.total_lookups(),
    )
}

#[test]
fn battery_same_seed_searches_are_reproducible() {
    let module = chain(96, 48, 64);
    for e in roster() {
        let mut p = policy(3);
        let (mut e1, mut e2) = (env(), env());
        let a = e.searcher.search(&mut e1, &mut p, &module, 17);
        let b = e.searcher.search(&mut e2, &mut p, &module, 17);
        assert_eq!(
            deterministic_fields(&a),
            deterministic_fields(&b),
            "{} must reproduce bit-for-bit under the same seed",
            e.searcher.name()
        );
        assert_eq!(a.best_schedule, b.best_schedule, "{}", e.searcher.name());
        if !e.racing {
            // Serial searchers on identical fresh state reproduce even the
            // hit/miss split.
            assert_eq!(a.evaluations, b.evaluations, "{}", e.searcher.name());
            assert_eq!(a.cache_hits, b.cache_hits, "{}", e.searcher.name());
        }
    }
}

#[test]
fn battery_probe_enabled_runs_are_bitwise_identical_to_disabled() {
    // Attaching a trace probe must be purely observational: for every
    // roster searcher, a probed run is bit-for-bit the unprobed run —
    // emission never touches RNG state, lookup order or control flow —
    // and the probe actually captures phase events with the right trace
    // id.
    let module = chain(96, 48, 64);
    for e in roster() {
        let mut p = policy(3);
        let (mut plain_env, mut probed_env) = (env(), env());
        let recorder = TraceRecorder::new(4096, 1);
        probed_env.set_probe(recorder.probe(0).with_trace(7));
        let plain = e.searcher.search(&mut plain_env, &mut p, &module, 17);
        let probed = e.searcher.search(&mut probed_env, &mut p, &module, 17);
        assert_eq!(
            deterministic_fields(&plain),
            deterministic_fields(&probed),
            "{} with a probe attached must match the probe-free run bit-for-bit",
            e.searcher.name()
        );
        assert_eq!(
            plain.best_schedule,
            probed.best_schedule,
            "{}",
            e.searcher.name()
        );
        if !e.racing {
            assert_eq!(
                plain.evaluations,
                probed.evaluations,
                "{}",
                e.searcher.name()
            );
            assert_eq!(plain.cache_hits, probed.cache_hits, "{}", e.searcher.name());
        }
        let snapshot = recorder.snapshot();
        assert!(
            !snapshot.events.is_empty(),
            "{} must emit phase events through the probe",
            e.searcher.name()
        );
        assert!(
            snapshot.events.iter().all(|event| event.trace_id == 7),
            "{} events must carry the scoped trace id",
            e.searcher.name()
        );
    }
}

#[test]
fn battery_lookup_accounting_is_consistent() {
    let module = chain(64, 64, 64);
    for e in roster() {
        let mut environment = env();
        let mut p = policy(5);
        let outcome = e.searcher.search(&mut environment, &mut p, &module, 23);
        assert_eq!(
            outcome.total_lookups(),
            outcome.evaluations + outcome.cache_hits,
            "{}",
            e.searcher.name()
        );
        assert!(outcome.speedup.is_finite() && outcome.speedup > 0.0);
        assert!(outcome.baseline_s > 0.0 && outcome.best_s > 0.0);
        assert!(!outcome.best_schedule.is_empty(), "{}", e.searcher.name());
        if !e.racing {
            // The outcome's delta accounting agrees with the cache's own
            // counters (racing members search on cloned handles, which the
            // caller's per-handle counters do not observe).
            assert_eq!(
                outcome.total_lookups(),
                (environment.cache().hits() + environment.cache().misses()) as usize,
                "{} outcome accounting must agree with the env cache",
                e.searcher.name()
            );
        }
    }
}

#[test]
fn battery_greedy_seeded_searchers_respect_the_greedy_floor() {
    for (seed, module) in [chain(64, 64, 64), chain(128, 64, 32), chain(96, 48, 64)]
        .into_iter()
        .enumerate()
    {
        let mut p = policy(7);
        let greedy = GreedyPolicy.search(&mut env(), &mut p, &module, seed as u64);
        for e in roster() {
            if !e.greedy_seeded {
                continue;
            }
            let outcome = e.searcher.search(&mut env(), &mut p, &module, seed as u64);
            assert!(
                outcome.speedup >= greedy.speedup,
                "{} ({}) must be >= greedy ({}) on {}",
                e.searcher.name(),
                outcome.speedup,
                greedy.speedup,
                module.name()
            );
        }
    }
}

#[test]
fn battery_searches_leave_snapshots_restorable() {
    let probe = chain(64, 64, 64);
    let other = chain(96, 48, 32);
    for e in roster() {
        let mut environment = env();
        let mut p = policy(9);
        // Drive a fresh episode a few steps in and snapshot it.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut obs = environment.reset(probe.clone());
        for _ in 0..2 {
            if let Some(current) = obs.clone() {
                let action = random_action(&current, &environment.config().clone(), &mut rng);
                obs = environment.step(&action).observation;
            }
        }
        let snapshot = environment.snapshot();
        let expect_obs = environment.current_observation();
        let expect_scheduled = environment.scheduled().cloned();
        let expect_peek = environment.peek_time_s();
        // A full search on a different module tramples the episode state…
        let _ = e.searcher.search(&mut environment, &mut p, &other, 31);
        // …but restoring the snapshot brings back the exact branch point.
        environment.restore(&snapshot);
        assert_eq!(
            environment.current_observation(),
            expect_obs,
            "{} must not corrupt restored observations",
            e.searcher.name()
        );
        assert_eq!(
            environment.scheduled().cloned(),
            expect_scheduled,
            "{} must not corrupt restored schedule state",
            e.searcher.name()
        );
        assert_eq!(
            environment.peek_time_s().to_bits(),
            expect_peek.to_bits(),
            "{} must not corrupt restored cost estimates",
            e.searcher.name()
        );
    }
}

#[test]
fn battery_tiny_cache_eviction_is_invisible_to_every_searcher() {
    // Storage-tier invariant: a deliberately starved shared cache forces
    // entry-wise eviction under every roster searcher, yet the
    // seed-determined outcome fields stay bit-identical to the roomy
    // default environment — eviction only re-runs the deterministic
    // estimator. (The hit/miss *split* legitimately shifts: an evicted
    // entry's comeback is a miss.)
    use mlir_rl_costmodel::{EvalCache, SharedEvalCache};
    let module = chain(96, 48, 64);
    let tiny_backend = SharedEvalCache::new(32);
    let mut evictions_seen = 0;
    for e in roster() {
        let mut p = policy(3);
        let (mut roomy_env, mut tiny_env) = (env(), env());
        tiny_env.replace_cache(EvalCache::with_shared_backend(tiny_backend.clone()));
        let roomy = e.searcher.search(&mut roomy_env, &mut p, &module, 17);
        let tiny = e.searcher.search(&mut tiny_env, &mut p, &module, 17);
        assert_eq!(
            deterministic_fields(&roomy),
            deterministic_fields(&tiny),
            "{} must be bit-identical under a tiny evicting cache",
            e.searcher.name()
        );
        assert_eq!(
            roomy.best_schedule,
            tiny.best_schedule,
            "{}",
            e.searcher.name()
        );
        assert!(
            tiny_backend.len() <= 32,
            "{} overflowed the global capacity bound",
            e.searcher.name()
        );
        evictions_seen = tiny_backend.evictions();
    }
    assert!(
        evictions_seen > 0,
        "the 32-entry cache never evicted across the whole roster"
    );
}

#[test]
fn single_member_round_robin_portfolio_is_bitwise_the_member() {
    // Satellite invariant: wrapping one searcher in a portfolio changes
    // nothing but the outcome's searcher label and attribution rows.
    let module = chain(96, 64, 48);
    let members: Vec<(&str, Box<dyn Searcher<PolicyNetwork>>)> = vec![
        ("greedy", Box::new(GreedyPolicy)),
        ("beam", Box::new(BeamSearch::new(3))),
        ("mcts", Box::new(Mcts::new(6).with_branch(2))),
        ("random", Box::new(RandomSearch::new(2))),
    ];
    for (label, member) in members {
        let mut p = policy(11);
        let alone = member.search(&mut env(), &mut p, &module, 13);
        let wrapped = Portfolio::round_robin().with_boxed_member(member).search(
            &mut env(),
            &mut p,
            &module,
            13,
        );
        assert_eq!(alone.module, wrapped.module, "{label}");
        assert_eq!(alone.baseline_s.to_bits(), wrapped.baseline_s.to_bits());
        assert_eq!(alone.best_s.to_bits(), wrapped.best_s.to_bits(), "{label}");
        assert_eq!(alone.speedup.to_bits(), wrapped.speedup.to_bits());
        assert_eq!(alone.best_actions, wrapped.best_actions, "{label}");
        assert_eq!(alone.best_schedule, wrapped.best_schedule, "{label}");
        assert_eq!(alone.nodes_expanded, wrapped.nodes_expanded, "{label}");
        assert_eq!(alone.evaluations, wrapped.evaluations, "{label}");
        assert_eq!(alone.cache_hits, wrapped.cache_hits, "{label}");
        assert_eq!(wrapped.members.len(), 1);
        assert!(wrapped.members[0].winner);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Battery clause 1 as a property: reproducibility holds for every
    /// roster searcher over arbitrary module shapes, seeds and budgets
    /// (the budget scales the searchers' iteration/width/episode knobs and
    /// the portfolio's lookup ledger).
    #[test]
    fn prop_reproducibility_over_module_seed_and_budget(
        m in 8u64..192, n in 8u64..192, k in 8u64..192,
        seed in 0u64..1000, budget in 1usize..6,
    ) {
        let module = chain(m, n, k);
        let searchers: Vec<Box<dyn Searcher<PolicyNetwork>>> = vec![
            Box::new(BeamSearch::new(budget)),
            Box::new(Mcts::new(budget * 3).with_branch(2).with_progressive_widening(1.0, 0.5)),
            Box::new(RandomSearch::new(budget)),
            Box::new(
                Portfolio::round_robin()
                    .with_member(GreedyPolicy)
                    .with_member(BeamSearch::new(2))
                    .with_budget(40 * budget as u64),
            ),
        ];
        for searcher in searchers {
            let mut p = policy(seed ^ 0xabcd);
            let (mut e1, mut e2) = (env(), env());
            let a = searcher.search(&mut e1, &mut p, &module, seed);
            let b = searcher.search(&mut e2, &mut p, &module, seed);
            prop_assert_eq!(
                deterministic_fields(&a),
                deterministic_fields(&b),
                "{} diverged",
                searcher.name()
            );
        }
    }

    /// Battery clause 4 as a property: snapshot/restore round-trips are
    /// bitwise lossless at every depth of a random episode.
    #[test]
    fn prop_snapshot_restore_is_bitwise_lossless(
        m in 8u64..192, n in 8u64..192, k in 8u64..192,
        seed in 0u64..1000, steps in 0usize..5,
    ) {
        let module = chain(m, n, k);
        let mut environment = env();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = environment.config().clone();
        let mut obs = environment.reset(module);
        for _ in 0..steps {
            if let Some(current) = obs.clone() {
                let action = random_action(&current, &config, &mut rng);
                obs = environment.step(&action).observation;
            }
        }
        let snapshot = environment.snapshot();
        let expect_obs = environment.current_observation();
        let expect_scheduled = environment.scheduled().cloned();
        let expect_peek = environment.peek_time_s();
        // Wander off the branch point, then come back.
        if let Some(current) = environment.current_observation() {
            let action = random_action(&current, &config, &mut rng);
            environment.step(&action);
        }
        environment.restore(&snapshot);
        prop_assert_eq!(environment.current_observation(), expect_obs);
        prop_assert_eq!(environment.scheduled().cloned(), expect_scheduled);
        prop_assert_eq!(environment.peek_time_s().to_bits(), expect_peek.to_bits());
    }

    /// Satellite invariant: a single-member round-robin portfolio is
    /// outcome-bitwise-identical to the member alone, for any seed.
    #[test]
    fn prop_single_member_portfolio_identity(
        policy_seed in 0u64..1000, seed in 0u64..1000, width in 1usize..4,
    ) {
        let module = chain(64, 96, 32);
        let mut p = policy(policy_seed);
        let alone = BeamSearch::new(width).search(&mut env(), &mut p, &module, seed);
        let wrapped = Portfolio::round_robin()
            .with_member(BeamSearch::new(width))
            .search(&mut env(), &mut p, &module, seed);
        prop_assert_eq!(alone.best_s.to_bits(), wrapped.best_s.to_bits());
        prop_assert_eq!(alone.speedup.to_bits(), wrapped.speedup.to_bits());
        prop_assert_eq!(&alone.best_actions, &wrapped.best_actions);
        prop_assert_eq!(&alone.best_schedule, &wrapped.best_schedule);
        prop_assert_eq!(alone.nodes_expanded, wrapped.nodes_expanded);
        prop_assert_eq!(alone.evaluations, wrapped.evaluations);
        prop_assert_eq!(alone.cache_hits, wrapped.cache_hits);
    }

    /// Satellite invariant: racing-mode results are worker-count invariant
    /// under a fixed seed — through the batch driver, for 1/2/4 workers.
    #[test]
    fn prop_racing_portfolio_is_worker_count_invariant(
        policy_seed in 0u64..1000, base_seed in 0u64..1000, target in 1.0f64..8.0,
    ) {
        let batch = vec![
            chain(64, 64, 64),
            chain(96, 48, 32),
            chain(32, 128, 64),
            chain(64, 64, 64),
        ];
        let template = env();
        let p = policy(policy_seed);
        let race = Portfolio::racing(target)
            .with_member(GreedyPolicy)
            .with_member(BeamSearch::new(2))
            .with_member(Mcts::new(6).with_branch(2));
        let mut reference: Option<Vec<_>> = None;
        for workers in [1usize, 2, 4] {
            let report = SearchDriver::new(workers)
                .with_seed(base_seed)
                .run_portfolio(&template, &p, &race, &batch);
            let fields: Vec<_> = report.outcomes.iter().map(deterministic_fields).collect();
            match &reference {
                None => reference = Some(fields),
                Some(expected) => prop_assert_eq!(
                    expected,
                    &fields,
                    "racing portfolio with {} workers diverged",
                    workers
                ),
            }
        }
    }
}
