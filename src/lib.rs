//! # mlir-rl
//!
//! Umbrella crate of the MLIR RL reproduction: re-exports the facade crate
//! and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). See `README.md` for the project overview
//! and `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

#![warn(missing_docs)]

pub use mlir_rl_core::*;
