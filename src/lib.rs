//! # mlir-rl
//!
//! Umbrella crate of the MLIR RL reproduction: re-exports the facade crate
//! and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). See `README.md` for the project overview
//! and `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

#![warn(missing_docs)]

pub use mlir_rl_core::*;

/// Structured tracing and telemetry (re-export of `mlir-rl-obs`): the
/// [`obs::TraceRecorder`] behind [`ServiceConfig::with_tracing`], the
/// [`obs::Probe`] hook searchers emit phase events through, and the
/// Chrome-trace / JSONL / Prometheus exporters.
pub use mlir_rl_obs as obs;
