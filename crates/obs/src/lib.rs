//! # mlir-rl-obs
//!
//! Structured tracing and unified telemetry for the optimization service
//! and the schedule searchers.
//!
//! The centerpiece is [`TraceRecorder`]: a bounded, lock-free collection of
//! per-writer ring buffers of fixed-size structured events (six `u64` words
//! each — a monotonic microsecond timestamp, a per-request trace id, an
//! event kind plus interned label, and three payload words). Writers never
//! block and never allocate on the hot path; when a ring wraps, the oldest
//! events are overwritten and counted as dropped. [`TraceRecorder::snapshot`]
//! merges every ring into one time-ordered [`TraceSnapshot`] which exports
//! to Chrome trace-event JSON (loadable in `chrome://tracing` / Perfetto),
//! a JSONL event log, or plain rows.
//!
//! Instrumented code never sees the recorder directly: it emits through the
//! [`Probe`] trait via a [`ProbeRef`] handle. A disabled `ProbeRef`
//! ([`ProbeRef::none`]) is two words of state and its `emit` is a branch on
//! `None` — zero allocation, no atomics, no clock read — so instrumentation
//! can stay unconditionally in place.
//!
//! [`MetricsRegistry`] complements the event stream with a point-in-time
//! metric set (counters and gauges, optionally labeled) rendered as a
//! Prometheus-style text exposition.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of `u64` words per recorded event.
const EVENT_WORDS: usize = 6;

/// Label id stored in an event that carries no label.
const NO_LABEL: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Event kinds
// ---------------------------------------------------------------------------

/// What a trace event describes. Service lifecycle kinds come first, then
/// searcher phase kinds, then cache/budget kinds.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A request arrived at the service (args: `[client_tag, 0, 0]`).
    Submitted = 0,
    /// The request was admitted to the queue (args: `[queue_depth, reserved_budget, 0]`).
    Queued = 1,
    /// The request was refused before queueing; the label carries the
    /// reason class (`shutdown`, `queue full`, ...).
    Rejected = 2,
    /// The request was skipped because the evaluation budget could not
    /// cover its reservation (args: `[reserved, budget_spent, budget_cap]`).
    BudgetSkip = 3,
    /// The request was shed at dispatch because its deadline had expired
    /// while it sat in the queue (args: `[queue_us, 0, 0]`).
    Shed = 4,
    /// The request was cancelled while still queued (args: `[queue_us, 0, 0]`).
    CancelledInQueue = 5,
    /// A worker picked the request off the queue (args: `[queue_us, 0, 0]`).
    Dispatched = 6,
    /// The search itself started; the label is the searcher name.
    RunBegin = 7,
    /// The search finished (args: `[status, evaluations, cache_hits]`;
    /// status: 0 completed, 1 stopped, 2 skipped, 3 rejected).
    RunEnd = 8,
    /// One greedy rollout step (args: `[step, op, applied]`).
    GreedyStep = 9,
    /// One beam-search depth expanded (args: `[depth, frontier, 0]`).
    BeamDepth = 10,
    /// One MCTS iteration (args: `[iteration, nodes_expanded, 0]`).
    MctsIteration = 11,
    /// One random-search episode (args: `[episode, 0, 0]`).
    RandomEpisode = 12,
    /// A portfolio member started; label is the member name (args: `[rank, 0, 0]`).
    MemberBegin = 13,
    /// A portfolio member finished; label is the member name
    /// (args: `[rank, status, 0]`; status: 0 completed, 1 stopped, 2 skipped).
    MemberEnd = 14,
    /// The portfolio picked this member's schedule as the winner; label is
    /// the member name (args: `[rank, 0, 0]`).
    MemberWin = 15,
    /// An evaluation-cache lookup was served from the cache.
    CacheHit = 16,
    /// An evaluation-cache lookup ran the cost model (args: `[0, 0, 0]`).
    CacheMiss = 17,
    /// Evaluation budget was spent (args: `[delta, spent_after, 0]`).
    BudgetCharge = 18,
    /// Evaluation budget was returned (args: `[delta, spent_after, 0]`).
    BudgetRefund = 19,
    /// The inference aggregator flushed one cross-request batch; the label
    /// is the flush reason (`size`, `timeout`, `idle`, `drain`) and the
    /// args are `[rows, groups, oldest_wait_us]`.
    BatchFormed = 20,
    /// A full cache shard evicted one entry to admit a new key
    /// (args: `[shard, victim_hits, 0]`).
    CacheEvict = 21,
    /// A cache hit promoted its entry from the probation segment to the
    /// protected segment (args: `[shard, 0, 0]`).
    CachePromote = 22,
    /// The online trainer published a new policy version
    /// (args: `[version, probe_modules, train_step]`).
    PolicySwap = 23,
    /// A completed response was fed into the experience stream
    /// (args: `[policy_version, accepted_total, dropped_total]`).
    ExperienceEnqueued = 24,
    /// The online trainer finished one PPO iteration
    /// (args: `[step, dataset_modules, geomean_speedup_milli]`).
    TrainStep = 25,
}

impl EventKind {
    /// All kinds, in discriminant order (for decode and for docs/tests).
    pub const ALL: [EventKind; 26] = [
        EventKind::Submitted,
        EventKind::Queued,
        EventKind::Rejected,
        EventKind::BudgetSkip,
        EventKind::Shed,
        EventKind::CancelledInQueue,
        EventKind::Dispatched,
        EventKind::RunBegin,
        EventKind::RunEnd,
        EventKind::GreedyStep,
        EventKind::BeamDepth,
        EventKind::MctsIteration,
        EventKind::RandomEpisode,
        EventKind::MemberBegin,
        EventKind::MemberEnd,
        EventKind::MemberWin,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::BudgetCharge,
        EventKind::BudgetRefund,
        EventKind::BatchFormed,
        EventKind::CacheEvict,
        EventKind::CachePromote,
        EventKind::PolicySwap,
        EventKind::ExperienceEnqueued,
        EventKind::TrainStep,
    ];

    /// Decodes a discriminant written by [`EventKind::as_u8`].
    pub fn from_u8(raw: u8) -> Option<EventKind> {
        EventKind::ALL.get(raw as usize).copied()
    }

    /// The stable wire discriminant of this kind.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// The stable string name of this kind (used by the exporters).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::Queued => "queued",
            EventKind::Rejected => "rejected",
            EventKind::BudgetSkip => "budget_skip",
            EventKind::Shed => "shed",
            EventKind::CancelledInQueue => "cancelled_in_queue",
            EventKind::Dispatched => "dispatched",
            EventKind::RunBegin => "run_begin",
            EventKind::RunEnd => "run_end",
            EventKind::GreedyStep => "greedy_step",
            EventKind::BeamDepth => "beam_depth",
            EventKind::MctsIteration => "mcts_iteration",
            EventKind::RandomEpisode => "random_episode",
            EventKind::MemberBegin => "member_begin",
            EventKind::MemberEnd => "member_end",
            EventKind::MemberWin => "member_win",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::BudgetCharge => "budget_charge",
            EventKind::BudgetRefund => "budget_refund",
            EventKind::BatchFormed => "batch_formed",
            EventKind::CacheEvict => "cache_evict",
            EventKind::CachePromote => "cache_promote",
            EventKind::PolicySwap => "policy_swap",
            EventKind::ExperienceEnqueued => "experience_enqueued",
            EventKind::TrainStep => "train_step",
        }
    }
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

/// A sink for structured trace events. Implementations must be cheap and
/// non-blocking: probes fire from searcher inner loops and from inside the
/// service's dispatch path.
pub trait Probe: Send + Sync {
    /// Records one event. `trace_id` is `0` for events not attributable to
    /// a request; `label` is interned by recorder-backed probes, so passing
    /// the same few strings repeatedly is cheap.
    fn emit(&self, kind: EventKind, trace_id: u64, label: Option<&str>, args: [u64; 3]);
}

/// A cloneable handle through which instrumented code emits events: either
/// disabled (the default — `emit` is a branch on `None`, no allocation, no
/// clock read) or bound to a shared [`Probe`] sink plus the trace id of the
/// request currently being served.
#[derive(Clone, Default)]
pub struct ProbeRef {
    sink: Option<Arc<dyn Probe>>,
    trace_id: u64,
}

impl ProbeRef {
    /// The disabled probe: every `emit` is a no-op.
    pub fn none() -> Self {
        Self::default()
    }

    /// A probe bound to `sink`, with no trace id yet (events carry id 0
    /// until [`ProbeRef::with_trace`] scopes the handle to a request).
    pub fn new(sink: Arc<dyn Probe>) -> Self {
        Self {
            sink: Some(sink),
            trace_id: 0,
        }
    }

    /// A copy of this handle scoped to `trace_id` (`0` = unattributed).
    pub fn with_trace(&self, trace_id: u64) -> Self {
        Self {
            sink: self.sink.clone(),
            trace_id,
        }
    }

    /// The trace id events from this handle carry.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The trace id as an `Option`: `Some` only when a sink is attached —
    /// the shape response types want for their "traced as" field.
    pub fn trace_id_if_enabled(&self) -> Option<u64> {
        self.sink.as_ref().map(|_| self.trace_id)
    }

    /// True when events actually reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event through the sink, if any. With no sink this is a
    /// single branch — callers can leave instrumentation unconditionally
    /// in place.
    #[inline]
    pub fn emit(&self, kind: EventKind, label: Option<&str>, args: [u64; 3]) {
        if let Some(sink) = &self.sink {
            sink.emit(kind, self.trace_id, label, args);
        }
    }
}

impl fmt::Debug for ProbeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeRef")
            .field("enabled", &self.is_enabled())
            .field("trace_id", &self.trace_id)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------------

/// One slot of a ring: a sequence word (odd while a write is in flight,
/// `2 * (record_index + 1)` once the record is complete) plus the event
/// words. All-atomic, so concurrent write/snapshot is safe Rust; a torn
/// read is detected by the sequence check and skipped.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// One writer's bounded ring. `head` counts records ever written; slot
/// `head % capacity` is overwritten on wrap.
struct Ring {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Lock-free, wait-free-in-practice append. Multiple threads may share
    /// one ring (`head.fetch_add` assigns distinct records); a reader that
    /// races a writer skips the torn slot.
    fn record(&self, words: [u64; EVENT_WORDS]) {
        let index = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        slot.seq.store(2 * index + 1, Ordering::Release);
        for (cell, word) in slot.words.iter().zip(words) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.seq.store(2 * (index + 1), Ordering::Release);
    }

    fn written(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    fn dropped(&self) -> u64 {
        self.written().saturating_sub(self.slots.len() as u64)
    }
}

struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(label.to_string());
        self.ids.insert(label.to_string(), id);
        id
    }
}

struct RecorderInner {
    epoch: Instant,
    rings: Vec<Ring>,
    labels: Mutex<Interner>,
}

/// A bounded, lock-free trace recorder: `writers` independent ring buffers
/// of `capacity` structured events each, merged on [`TraceRecorder::snapshot`].
/// The handle is cheap to clone (all clones share the rings).
///
/// Timestamps are microseconds since the recorder was created, read from a
/// monotonic clock. Labels (searcher names, rejection reasons) are interned
/// once into a side table so the per-event cost of a repeated label is one
/// short mutex-guarded hash lookup; unlabeled events never touch the table.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<RecorderInner>,
}

impl TraceRecorder {
    /// Creates a recorder with `writers` rings of `capacity` events each.
    /// Both are clamped to at least 1.
    pub fn new(capacity: usize, writers: usize) -> Self {
        Self {
            inner: Arc::new(RecorderInner {
                epoch: Instant::now(),
                rings: (0..writers.max(1)).map(|_| Ring::new(capacity)).collect(),
                labels: Mutex::new(Interner {
                    ids: HashMap::new(),
                    names: Vec::new(),
                }),
            }),
        }
    }

    /// Number of per-writer rings.
    pub fn writers(&self) -> usize {
        self.inner.rings.len()
    }

    /// Events each ring retains before overwriting its oldest.
    pub fn capacity(&self) -> usize {
        self.inner.rings[0].slots.len()
    }

    /// A [`Probe`]-implementing handle that records into ring
    /// `writer_index`. Panics if the index is out of range.
    pub fn writer(&self, writer_index: usize) -> TraceWriter {
        assert!(
            writer_index < self.inner.rings.len(),
            "writer index {writer_index} out of range ({} rings)",
            self.inner.rings.len()
        );
        TraceWriter {
            inner: Arc::clone(&self.inner),
            ring: writer_index,
        }
    }

    /// [`TraceRecorder::writer`] pre-wrapped as an enabled [`ProbeRef`].
    pub fn probe(&self, writer_index: usize) -> ProbeRef {
        ProbeRef::new(Arc::new(self.writer(writer_index)))
    }

    /// Total events ever recorded, across all rings (including overwritten
    /// ones).
    pub fn recorded(&self) -> u64 {
        self.inner.rings.iter().map(Ring::written).sum()
    }

    /// Decodes every ring into one time-ordered [`TraceSnapshot`]. Safe to
    /// call while writers are active: slots with an in-flight write are
    /// skipped.
    pub fn snapshot(&self) -> TraceSnapshot {
        let labels = {
            let guard = self.inner.labels.lock().expect("label table poisoned");
            guard.names.clone()
        };
        let mut events = Vec::new();
        for (ring_index, ring) in self.inner.rings.iter().enumerate() {
            for slot in ring.slots.iter() {
                let seq_before = slot.seq.load(Ordering::Acquire);
                if seq_before == 0 || seq_before % 2 == 1 {
                    continue; // empty or torn
                }
                let mut words = [0u64; EVENT_WORDS];
                for (word, cell) in words.iter_mut().zip(slot.words.iter()) {
                    *word = cell.load(Ordering::Relaxed);
                }
                if slot.seq.load(Ordering::Acquire) != seq_before {
                    continue; // overwritten mid-read
                }
                let kind = match EventKind::from_u8((words[2] & 0xff) as u8) {
                    Some(kind) => kind,
                    None => continue,
                };
                let label_id = (words[2] >> 32) as u32;
                events.push(TraceEvent {
                    t_us: words[0],
                    trace_id: words[1],
                    kind,
                    label: if label_id == NO_LABEL {
                        None
                    } else {
                        labels.get(label_id as usize).cloned()
                    },
                    args: [words[3], words[4], words[5]],
                    writer: ring_index,
                    seq: seq_before / 2 - 1,
                });
            }
        }
        events.sort_by_key(|e| (e.t_us, e.writer, e.seq));
        TraceSnapshot {
            events,
            dropped: self.inner.rings.iter().map(Ring::dropped).sum(),
            writers: self.inner.rings.len(),
            capacity: self.capacity(),
        }
    }
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("writers", &self.writers())
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// A [`Probe`] that records into one ring of a [`TraceRecorder`].
#[derive(Clone)]
pub struct TraceWriter {
    inner: Arc<RecorderInner>,
    ring: usize,
}

impl Probe for TraceWriter {
    fn emit(&self, kind: EventKind, trace_id: u64, label: Option<&str>, args: [u64; 3]) {
        let label_id = match label {
            None => NO_LABEL,
            Some(label) => {
                let mut table = self.inner.labels.lock().expect("label table poisoned");
                table.intern(label)
            }
        };
        let t_us = self.inner.epoch.elapsed().as_micros() as u64;
        self.inner.rings[self.ring].record([
            t_us,
            trace_id,
            kind.as_u8() as u64 | (label_id as u64) << 32,
            args[0],
            args[1],
            args[2],
        ]);
    }
}

impl fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceWriter")
            .field("ring", &self.ring)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// One decoded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the recorder's epoch (monotonic clock).
    pub t_us: u64,
    /// The request this event belongs to (`0` = unattributed).
    pub trace_id: u64,
    /// What happened.
    pub kind: EventKind,
    /// Optional interned label (searcher name, rejection reason, ...).
    pub label: Option<String>,
    /// Kind-specific payload words (see [`EventKind`] docs).
    pub args: [u64; 3],
    /// Which ring recorded the event (0 = the service's submit side,
    /// `1 + w` = worker `w`).
    pub writer: usize,
    /// Per-ring record sequence number (total order within one writer).
    pub seq: u64,
}

/// A merged, time-ordered copy of every ring, plus loss accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// All decoded events, sorted by `(t_us, writer, seq)`.
    pub events: Vec<TraceEvent>,
    /// Events overwritten before this snapshot (per-ring overflow, summed).
    pub dropped: u64,
    /// Number of rings merged.
    pub writers: usize,
    /// Per-ring capacity.
    pub capacity: usize,
}

impl TraceSnapshot {
    /// Renders the snapshot as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object format), loadable in
    /// `chrome://tracing` and Perfetto.
    ///
    /// * Search runs become complete (`"X"`) duration events on their
    ///   worker's thread lane, paired from `run_begin`/`run_end`.
    /// * The queued phase of each request becomes an async span
    ///   (`"b"`/`"e"`, id = trace id) from `queued` to
    ///   `dispatched`/`shed`/`cancelled_in_queue`, so overlapping waits
    ///   never break lane nesting.
    /// * Portfolio members become async spans keyed by trace id and rank
    ///   (racing members overlap in time on one worker lane).
    /// * Everything else is an instant (`"i"`) event on its writer lane.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |event: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            out.push_str(&event);
            *first = false;
            // Reborrow dance: closure owns `out` mutably.
        };
        // Thread-name metadata: lane 0 is the submit side, others workers.
        for writer in 0..self.writers {
            let name = if writer == 0 {
                "service".to_string()
            } else {
                format!("worker-{}", writer - 1)
            };
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{writer},\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(&name)
                ),
                &mut first,
            );
        }
        let mut open_runs: HashMap<usize, &TraceEvent> = HashMap::new();
        for event in &self.events {
            match event.kind {
                EventKind::RunBegin => {
                    open_runs.insert(event.writer, event);
                }
                EventKind::RunEnd => {
                    if let Some(begin) = open_runs.remove(&event.writer) {
                        let name = begin.label.as_deref().unwrap_or("run");
                        push(
                            format!(
                                "{{\"ph\":\"X\",\"name\":{},\"cat\":\"run\",\"pid\":1,\
                                 \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\
                                 \"trace_id\":{},\"status\":{},\"evaluations\":{},\
                                 \"cache_hits\":{}}}}}",
                                json_string(name),
                                event.writer,
                                begin.t_us,
                                event.t_us.saturating_sub(begin.t_us),
                                event.trace_id,
                                event.args[0],
                                event.args[1],
                                event.args[2],
                            ),
                            &mut first,
                        );
                    }
                }
                EventKind::Queued => {
                    push(
                        format!(
                            "{{\"ph\":\"b\",\"name\":\"queued\",\"cat\":\"request\",\
                             \"pid\":1,\"tid\":{},\"ts\":{},\"id\":{},\"args\":{{\
                             \"depth\":{},\"reserved\":{}}}}}",
                            event.writer, event.t_us, event.trace_id, event.args[0], event.args[1],
                        ),
                        &mut first,
                    );
                }
                EventKind::Dispatched | EventKind::Shed | EventKind::CancelledInQueue => {
                    push(
                        format!(
                            "{{\"ph\":\"e\",\"name\":\"queued\",\"cat\":\"request\",\
                             \"pid\":1,\"tid\":{},\"ts\":{},\"id\":{},\"args\":{{\
                             \"outcome\":{}}}}}",
                            event.writer,
                            event.t_us,
                            event.trace_id,
                            json_string(event.kind.name()),
                        ),
                        &mut first,
                    );
                    if event.kind != EventKind::Dispatched {
                        push(instant_json(event), &mut first);
                    }
                }
                EventKind::MemberBegin | EventKind::MemberEnd => {
                    let phase = if event.kind == EventKind::MemberBegin {
                        "b"
                    } else {
                        "e"
                    };
                    let name = event.label.as_deref().unwrap_or("member");
                    push(
                        format!(
                            "{{\"ph\":\"{phase}\",\"name\":{},\"cat\":\"member\",\
                             \"pid\":1,\"tid\":{},\"ts\":{},\"id\":{},\"args\":{{\
                             \"rank\":{}}}}}",
                            json_string(name),
                            event.writer,
                            event.t_us,
                            // One async lane per (request, member rank).
                            event
                                .trace_id
                                .wrapping_mul(1009)
                                .wrapping_add(event.args[0]),
                            event.args[0],
                        ),
                        &mut first,
                    );
                }
                _ => push(instant_json(event), &mut first),
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        out.push_str(&format!(
            "\"dropped\":{},\"writers\":{},\"capacity\":{}",
            self.dropped, self.writers, self.capacity
        ));
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as JSONL: one JSON object per event, in
    /// snapshot (time) order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&format!(
                "{{\"t_us\":{},\"writer\":{},\"seq\":{},\"kind\":{},\"trace_id\":{},\
                 \"label\":{},\"args\":[{},{},{}]}}\n",
                event.t_us,
                event.writer,
                event.seq,
                json_string(event.kind.name()),
                event.trace_id,
                match &event.label {
                    Some(label) => json_string(label),
                    None => "null".to_string(),
                },
                event.args[0],
                event.args[1],
                event.args[2],
            ));
        }
        out
    }

    /// Events belonging to one request, in time order.
    pub fn for_trace(&self, trace_id: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .collect()
    }

    /// Distinct non-zero trace ids present in the snapshot, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .events
            .iter()
            .map(|e| e.trace_id)
            .filter(|&id| id != 0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Count of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

fn instant_json(event: &TraceEvent) -> String {
    let name = match &event.label {
        Some(label) => format!("{}:{}", event.kind.name(), label),
        None => event.kind.name().to_string(),
    };
    format!(
        "{{\"ph\":\"i\",\"name\":{},\"cat\":\"phase\",\"pid\":1,\"tid\":{},\
         \"ts\":{},\"s\":\"t\",\"args\":{{\"trace_id\":{},\"a0\":{},\"a1\":{},\"a2\":{}}}}}",
        json_string(&name),
        event.writer,
        event.t_us,
        event.trace_id,
        event.args[0],
        event.args[1],
        event.args[2],
    )
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Whether a metric accumulates (counter) or reflects a point-in-time level
/// (gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulating value.
    Counter,
    /// Point-in-time level.
    Gauge,
}

impl MetricKind {
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

#[derive(Debug, Clone)]
struct MetricSample {
    name: String,
    help: String,
    kind: MetricKind,
    labels: Vec<(String, String)>,
    value: f64,
}

/// A point-in-time metric set unifying counters and gauges from every
/// subsystem (service, cache, budget), rendered as a Prometheus-style text
/// exposition. Samples keep insertion order; `# HELP`/`# TYPE` headers are
/// emitted once per metric name, at its first sample.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    samples: Vec<MetricSample>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an unlabeled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, MetricKind::Counter, &[], value);
    }

    /// Records an unlabeled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, MetricKind::Gauge, &[], value);
    }

    /// Records a labeled counter sample.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, MetricKind::Counter, labels, value);
    }

    /// Records a labeled gauge sample.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, MetricKind::Gauge, labels, value);
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for sample in &self.samples {
            if !seen.contains(&sample.name.as_str()) {
                seen.push(&sample.name);
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {}\n",
                    sample.name,
                    sample.help.replace('\\', "\\\\").replace('\n', "\\n"),
                    sample.name,
                    sample.kind.prom_type()
                ));
            }
            out.push_str(&sample.name);
            if !sample.labels.is_empty() {
                out.push('{');
                for (i, (key, value)) in sample.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{key}=\"{}\"",
                        value.replace('\\', "\\\\").replace('"', "\\\"")
                    ));
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&format_metric_value(sample.value));
            out.push('\n');
        }
        out
    }
}

fn format_metric_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

// ---------------------------------------------------------------------------
// Overhead measurement
// ---------------------------------------------------------------------------

/// Measures the recorder's hot-path cost by timing `samples` emits into a
/// scratch ring, returning nanoseconds per event. Used by the `exp_*`
/// binaries to report tracing overhead next to traced runs.
pub fn recorder_overhead_ns(samples: usize) -> f64 {
    let samples = samples.max(1);
    let recorder = TraceRecorder::new(4096, 1);
    let probe = recorder.probe(0);
    let start = Instant::now();
    for i in 0..samples {
        probe.emit(EventKind::GreedyStep, None, [i as u64, 0, 0]);
    }
    start.elapsed().as_nanos() as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_decode_in_order_with_labels_and_args() {
        let recorder = TraceRecorder::new(16, 2);
        let service = recorder.probe(0).with_trace(7);
        let worker = recorder.probe(1).with_trace(7);
        service.emit(EventKind::Submitted, None, [1, 0, 0]);
        service.emit(EventKind::Queued, None, [3, 2, 0]);
        worker.emit(EventKind::RunBegin, Some("beam"), [0, 0, 0]);
        worker.emit(EventKind::RunEnd, Some("beam"), [0, 5, 4]);
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events[0].kind, EventKind::Submitted);
        assert!(snap.events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        let begin = &snap.events[2];
        assert_eq!(begin.kind, EventKind::RunBegin);
        assert_eq!(begin.label.as_deref(), Some("beam"));
        assert_eq!(begin.writer, 1);
        assert_eq!(snap.trace_ids(), vec![7]);
        assert_eq!(snap.for_trace(7).len(), 4);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let recorder = TraceRecorder::new(4, 1);
        let probe = recorder.probe(0);
        for i in 0..10u64 {
            probe.emit(EventKind::GreedyStep, None, [i, 0, 0]);
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        let steps: Vec<u64> = snap.events.iter().map(|e| e.args[0]).collect();
        assert_eq!(steps, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_probe_is_inert() {
        let probe = ProbeRef::none();
        assert!(!probe.is_enabled());
        assert_eq!(probe.trace_id(), 0);
        probe.emit(EventKind::CacheHit, Some("never-interned"), [0, 0, 0]);
        let scoped = probe.with_trace(9);
        assert!(!scoped.is_enabled());
        assert_eq!(scoped.trace_id(), 9);
    }

    #[test]
    fn one_ring_accepts_concurrent_writers() {
        let recorder = TraceRecorder::new(4096, 1);
        thread::scope(|scope| {
            for t in 0..4u64 {
                let probe = recorder.probe(0).with_trace(t + 1);
                scope.spawn(move || {
                    for i in 0..256u64 {
                        probe.emit(EventKind::MctsIteration, None, [i, 0, 0]);
                    }
                });
            }
        });
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 1024);
        assert_eq!(snap.dropped, 0);
        for t in 1..=4u64 {
            assert_eq!(snap.for_trace(t).len(), 256);
        }
    }

    #[test]
    fn chrome_export_pairs_run_spans_and_queue_asyncs() {
        let recorder = TraceRecorder::new(64, 2);
        let service = recorder.probe(0).with_trace(1);
        let worker = recorder.probe(1).with_trace(1);
        service.emit(EventKind::Submitted, None, [0, 0, 0]);
        service.emit(EventKind::Queued, None, [1, 2, 0]);
        worker.emit(EventKind::Dispatched, None, [10, 0, 0]);
        worker.emit(EventKind::RunBegin, Some("greedy"), [0, 0, 0]);
        worker.emit(EventKind::GreedyStep, None, [0, 3, 1]);
        worker.emit(EventKind::RunEnd, Some("greedy"), [0, 4, 2]);
        let json = recorder.snapshot().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "run span missing: {json}");
        assert!(json.contains("\"name\":\"greedy\""));
        assert!(json.contains("\"ph\":\"b\"") && json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"dropped\":0"));
        // Balanced braces/brackets — cheap structural sanity without a JSON
        // parser dependency.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let recorder = TraceRecorder::new(8, 1);
        let probe = recorder.probe(0).with_trace(3);
        probe.emit(EventKind::CacheMiss, None, [0, 0, 0]);
        probe.emit(EventKind::BudgetCharge, None, [1, 5, 0]);
        let jsonl = recorder.snapshot().to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"kind\":\"budget_charge\""));
        assert!(jsonl.contains("\"label\":null"));
    }

    #[test]
    fn kind_roundtrips_through_wire_discriminant() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn prometheus_emits_help_and_type_once_per_name() {
        let mut registry = MetricsRegistry::new();
        registry.counter("mlir_rl_requests_total", "Requests accepted.", 12.0);
        registry.gauge_with(
            "mlir_rl_queue_depth",
            "Live queue depth.",
            &[("lane", "alice")],
            3.0,
        );
        registry.gauge_with(
            "mlir_rl_queue_depth",
            "Live queue depth.",
            &[("lane", "bob")],
            1.5,
        );
        let text = registry.to_prometheus();
        assert_eq!(text.matches("# HELP mlir_rl_queue_depth").count(), 1);
        assert_eq!(text.matches("# TYPE mlir_rl_queue_depth gauge").count(), 1);
        assert!(text.contains("mlir_rl_requests_total 12\n"));
        assert!(text.contains("mlir_rl_queue_depth{lane=\"alice\"} 3\n"));
        assert!(text.contains("mlir_rl_queue_depth{lane=\"bob\"} 1.5\n"));
    }

    #[test]
    fn overhead_probe_measures_positive_cost() {
        let ns = recorder_overhead_ns(10_000);
        assert!(ns > 0.0 && ns < 100_000.0, "implausible overhead: {ns}");
    }
}
