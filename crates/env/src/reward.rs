//! Reward functions (Sec. IV-C).
//!
//! The reward of an episode is the natural logarithm of the speedup of the
//! optimized code over the baseline, so that per-step rewards accumulate
//! additively into the log of the end-to-end speedup. The paper's default
//! delivers the whole reward at the terminal step (*final reward*); the
//! ablation of Fig. 7 also delivers incremental rewards after every step
//! (*immediate reward*), which requires one cost evaluation per step.

use crate::config::RewardMode;

/// Log-speedup of `new_time` relative to `old_time`.
///
/// Positive when the new code is faster. Returns 0 for non-positive inputs.
pub fn log_speedup(old_time_s: f64, new_time_s: f64) -> f64 {
    if old_time_s <= 0.0 || new_time_s <= 0.0 {
        return 0.0;
    }
    (old_time_s / new_time_s).ln()
}

/// Converts an accumulated log-speedup back into a plain speedup factor.
pub fn speedup_from_log(log_speedup: f64) -> f64 {
    log_speedup.exp()
}

/// Computes the per-step reward.
///
/// * `mode` — final or immediate reward;
/// * `is_terminal` — whether this step ends the episode;
/// * `baseline_s` — execution time of the unoptimized module;
/// * `previous_s` — execution time before this step;
/// * `current_s` — execution time after this step.
///
/// With [`RewardMode::Final`], every non-terminal step gets 0 and the
/// terminal step gets `ln(baseline / current)`. With
/// [`RewardMode::Immediate`], every step gets `ln(previous / current)`, so
/// the per-episode sum telescopes to the same total.
pub fn step_reward(
    mode: RewardMode,
    is_terminal: bool,
    baseline_s: f64,
    previous_s: f64,
    current_s: f64,
) -> f64 {
    match mode {
        RewardMode::Final => {
            if is_terminal {
                log_speedup(baseline_s, current_s)
            } else {
                0.0
            }
        }
        RewardMode::Immediate => log_speedup(previous_s, current_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_speedup_basic_properties() {
        assert!((log_speedup(2.0, 1.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(log_speedup(1.0, 2.0) < 0.0);
        assert_eq!(log_speedup(0.0, 1.0), 0.0);
        assert_eq!(log_speedup(1.0, 0.0), 0.0);
        assert!((speedup_from_log(log_speedup(8.0, 2.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn final_reward_only_at_terminal_step() {
        assert_eq!(step_reward(RewardMode::Final, false, 10.0, 8.0, 4.0), 0.0);
        let terminal = step_reward(RewardMode::Final, true, 10.0, 8.0, 4.0);
        assert!((terminal - (10.0f64 / 4.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn immediate_rewards_telescope_to_final() {
        // Three steps: 10 -> 8 -> 5 -> 2.
        let times = [10.0, 8.0, 5.0, 2.0];
        let mut total = 0.0;
        for i in 1..times.len() {
            total += step_reward(
                RewardMode::Immediate,
                i == times.len() - 1,
                times[0],
                times[i - 1],
                times[i],
            );
        }
        let final_only = step_reward(RewardMode::Final, true, times[0], times[2], times[3]);
        assert!((total - final_only).abs() < 1e-12);
        assert!((speedup_from_log(total) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn immediate_reward_can_be_negative() {
        // A step that slows the code down is penalized immediately.
        assert!(step_reward(RewardMode::Immediate, false, 10.0, 4.0, 8.0) < 0.0);
    }
}
