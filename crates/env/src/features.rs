//! State representation: the feature-extraction pipeline of Fig. 1 and the
//! action-history encoding of Appendix A.
//!
//! Every operation is represented by the concatenation of:
//!
//! 1. a one-hot encoding of the operation type (generic, matmul, conv,
//!    pooling, add, other);
//! 2. the loop upper bounds (log-normalized) and iterator-type flags;
//! 3. the vectorization pre-condition flag;
//! 4. the polyhedral access matrices of up to `L` operands, padded to
//!    `D x N`;
//! 5. the arithmetic-operation counts of the body;
//! 6. the one-hot action history: a `tau x N x M` block for tiled
//!    transformations and a `tau x N x N` block for interchanges.

use serde::{Deserialize, Serialize};

use mlir_rl_ir::{IteratorType, OpId};
use mlir_rl_transforms::ScheduledModule;

use crate::config::EnvConfig;
use crate::env::Observation;

/// A batch of observations packed for batched network inference: the
/// producer and consumer feature vectors are stored contiguously row-major
/// (one observation per row), so a policy or value network can run one
/// blocked matmul per layer over the whole batch instead of one matvec per
/// observation. PPO minibatches, beam-search frontiers and MCTS expansions
/// all pack through this type.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObservationBatch {
    feature_len: usize,
    len: usize,
    producers: Vec<f64>,
    consumers: Vec<f64>,
}

impl ObservationBatch {
    /// Creates an empty batch for observations with the given feature
    /// length.
    pub fn new(feature_len: usize) -> Self {
        Self {
            feature_len,
            len: 0,
            producers: Vec::new(),
            consumers: Vec::new(),
        }
    }

    /// Packs a batch from an iterator of observations.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or the observations disagree on
    /// feature length.
    pub fn from_observations<'a, I>(observations: I) -> Self
    where
        I: IntoIterator<Item = &'a Observation>,
    {
        let mut iter = observations.into_iter();
        let first = iter.next().expect("observation batch must not be empty");
        let mut batch = Self::new(first.producer.len());
        batch.push(first);
        for obs in iter {
            batch.push(obs);
        }
        batch
    }

    /// Appends one observation's feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the observation's feature length does not match the batch.
    pub fn push(&mut self, obs: &Observation) {
        assert_eq!(
            obs.producer.len(),
            self.feature_len,
            "producer feature length mismatch"
        );
        assert_eq!(
            obs.consumer.len(),
            self.feature_len,
            "consumer feature length mismatch"
        );
        self.producers.extend_from_slice(&obs.producer);
        self.consumers.extend_from_slice(&obs.consumer);
        self.len += 1;
    }

    /// Empties the batch while keeping the feature length and the packed
    /// row storage, so a long-lived batch (e.g. an inference aggregator's
    /// tick arena) can be refilled without reallocating.
    pub fn clear(&mut self) {
        self.len = 0;
        self.producers.clear();
        self.consumers.clear();
    }

    /// Number of observations in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no observation was packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feature length of every packed vector.
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// The packed producer features, row-major (`len x feature_len`).
    pub fn producers(&self) -> &[f64] {
        &self.producers
    }

    /// The packed consumer features, row-major (`len x feature_len`).
    pub fn consumers(&self) -> &[f64] {
        &self.consumers
    }
}

/// The per-operation action history, encoded per Appendix A.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActionHistory {
    /// For each time step, the chosen tile-candidate index per loop level
    /// (`None` when no tiled transformation was applied at that step).
    pub tiled: Vec<Option<Vec<usize>>>,
    /// For each time step, the chosen permutation (`permutation[i]` = loop
    /// placed at position `i`), or `None`.
    pub interchange: Vec<Option<Vec<usize>>>,
}

impl ActionHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a step with a tiled transformation.
    pub fn push_tiled(&mut self, tile_indices: Vec<usize>) {
        self.tiled.push(Some(tile_indices));
        self.interchange.push(None);
    }

    /// Records a step with an interchange.
    pub fn push_interchange(&mut self, permutation: Vec<usize>) {
        self.tiled.push(None);
        self.interchange.push(Some(permutation));
    }

    /// Records a step with neither (terminal actions record no history,
    /// Appendix A).
    pub fn push_empty(&mut self) {
        self.tiled.push(None);
        self.interchange.push(None);
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.tiled.len()
    }

    /// True if no step was recorded.
    pub fn is_empty(&self) -> bool {
        self.tiled.is_empty()
    }

    /// Flattens the history into the `tau x N x M` + `tau x N x N` feature
    /// block.
    pub fn to_features(&self, config: &EnvConfig) -> Vec<f64> {
        let tau = config.max_schedule_len;
        let n = config.max_loops;
        let m = config.num_tile_candidates();
        let mut out = vec![0.0; tau * n * m + tau * n * n];
        for (t, entry) in self.tiled.iter().take(tau).enumerate() {
            if let Some(tiles) = entry {
                for (level, idx) in tiles.iter().take(n).enumerate() {
                    if *idx < m {
                        out[t * n * m + level * m + idx] = 1.0;
                    }
                }
            }
        }
        let offset = tau * n * m;
        for (t, entry) in self.interchange.iter().take(tau).enumerate() {
            if let Some(perm) = entry {
                for (pos, loop_idx) in perm.iter().take(n).enumerate() {
                    if *loop_idx < n {
                        out[offset + t * n * n + pos * n + loop_idx] = 1.0;
                    }
                }
            }
        }
        out
    }
}

/// Log-normalizes a loop bound into roughly `[0, 1]` (bounds up to about a
/// million map below 1).
fn normalize_bound(bound: u64) -> f64 {
    ((bound as f64) + 1.0).log2() / 20.0
}

/// Extracts the representation vector of one operation in its current
/// schedule state.
///
/// The vector has length [`EnvConfig::feature_len`]. Operations deeper than
/// `config.max_loops` loops or with more than `config.max_operands` operands
/// are truncated (the paper fixes the same maxima).
///
/// # Panics
///
/// Panics if `op` does not belong to the scheduled module.
pub fn extract_features(
    scheduled: &ScheduledModule,
    op: OpId,
    history: &ActionHistory,
    config: &EnvConfig,
) -> Vec<f64> {
    let linalg_op = scheduled.module().op(op).expect("op belongs to module");
    let state = scheduled.state(op);
    let mut out = Vec::with_capacity(config.feature_len());

    // 1. Operation-type one-hot.
    let category = linalg_op.kind.feature_category();
    for (i, _) in mlir_rl_ir::OpCategory::ALL.iter().enumerate() {
        out.push(if i == category.index() { 1.0 } else { 0.0 });
    }

    // 2. Loop ranges: upper bound (normalized) and iterator type, in the
    //    current (interchanged) loop order.
    let bounds = state.visible_bounds(linalg_op);
    let iter_types = state.visible_iterator_types(linalg_op);
    for level in 0..config.max_loops {
        out.push(bounds.get(level).map_or(0.0, |b| normalize_bound(*b)));
    }
    for level in 0..config.max_loops {
        out.push(match iter_types.get(level) {
            Some(IteratorType::Parallel) => 1.0,
            Some(IteratorType::Reduction) => -1.0,
            None => 0.0,
        });
    }

    // 3. Vectorization pre-condition flag.
    out.push(if linalg_op.vectorization_precondition() {
        1.0
    } else {
        0.0
    });

    // 4. Access matrices, padded to L x D x N.
    let matrices = linalg_op
        .access_matrices()
        .expect("validated op has well-formed maps");
    for operand in 0..config.max_operands {
        match matrices.get(operand) {
            Some(m) => out.extend(m.to_padded_features(config.max_rank, config.max_loops)),
            None => out.extend(std::iter::repeat_n(0.0, config.max_rank * config.max_loops)),
        }
    }

    // 5. Arithmetic-operation counts.
    out.extend(linalg_op.arith.to_features());

    // 6. Action history.
    out.extend(history.to_features(config));

    debug_assert_eq!(out.len(), config.feature_len());
    out
}

/// A zero feature vector, used as the producer slot when the operation being
/// optimized has no producer.
pub fn zero_features(config: &EnvConfig) -> Vec<f64> {
    vec![0.0; config.feature_len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_ir::ModuleBuilder;
    use mlir_rl_transforms::Transformation;

    fn scheduled_chain() -> ScheduledModule {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 32]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        ScheduledModule::new(b.finish())
    }

    #[test]
    fn feature_vector_has_configured_length() {
        let s = scheduled_chain();
        let config = EnvConfig::small();
        let f = extract_features(&s, OpId(0), &ActionHistory::new(), &config);
        assert_eq!(f.len(), config.feature_len());
        assert_eq!(zero_features(&config).len(), config.feature_len());
    }

    #[test]
    fn operation_type_one_hot_is_correct() {
        let s = scheduled_chain();
        let config = EnvConfig::small();
        let matmul = extract_features(&s, OpId(0), &ActionHistory::new(), &config);
        // Category order: generic, matmul, conv, pooling, add, other.
        assert_eq!(&matmul[0..6], &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let relu = extract_features(&s, OpId(1), &ActionHistory::new(), &config);
        assert_eq!(&relu[0..6], &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn loop_bounds_and_iterator_types_encoded() {
        let s = scheduled_chain();
        let config = EnvConfig::small();
        let f = extract_features(&s, OpId(0), &ActionHistory::new(), &config);
        // Bounds (64, 32, 128) normalized, then padding zero.
        let bounds = &f[6..10];
        assert!(bounds[0] > 0.0 && bounds[1] > 0.0 && bounds[2] > 0.0);
        assert_eq!(bounds[3], 0.0);
        assert!(bounds[2] > bounds[1], "larger bound gives larger feature");
        // Iterator types: parallel, parallel, reduction, padding.
        let iters = &f[10..14];
        assert_eq!(iters, &[1.0, 1.0, -1.0, 0.0]);
        // Vectorization precondition true for matmul.
        assert_eq!(f[14], 1.0);
    }

    #[test]
    fn interchange_changes_the_observed_loop_order() {
        let mut s = scheduled_chain();
        let config = EnvConfig::small();
        let before = extract_features(&s, OpId(0), &ActionHistory::new(), &config);
        s.apply(
            OpId(0),
            Transformation::Interchange {
                permutation: vec![2, 0, 1],
            },
        )
        .unwrap();
        let after = extract_features(&s, OpId(0), &ActionHistory::new(), &config);
        assert_ne!(&before[6..14], &after[6..14]);
        // After interchange the first visible loop is the reduction.
        assert_eq!(after[10], -1.0);
    }

    #[test]
    fn arithmetic_counts_present() {
        let s = scheduled_chain();
        let config = EnvConfig::small();
        let f = extract_features(&s, OpId(0), &ActionHistory::new(), &config);
        let arith_offset =
            6 + 2 * config.max_loops + 1 + config.max_operands * config.max_rank * config.max_loops;
        // Matmul: add=1, mul=1.
        assert_eq!(
            &f[arith_offset..arith_offset + 5],
            &[1.0, 0.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn action_history_encoding() {
        let config = EnvConfig::small(); // N=4, M=5, tau=4
        let mut h = ActionHistory::new();
        h.push_tiled(vec![1, 0, 3]);
        h.push_interchange(vec![2, 0, 1]);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        let f = h.to_features(&config);
        let n = config.max_loops;
        let m = config.num_tile_candidates();
        assert_eq!(f.len(), 4 * n * m + 4 * n * n);
        // Step 0, level 0, tile index 1 is set.
        assert_eq!(f[1], 1.0);
        // Step 0, level 2, tile index 3 is set.
        assert_eq!(f[2 * m + 3], 1.0);
        // Step 1 belongs to the interchange block: position 0 holds loop 2.
        let offset = 4 * n * m;
        assert_eq!(f[offset + n * n + 2], 1.0);
        // Nothing recorded for step 0 in the interchange block.
        assert!(f[offset..offset + n * n].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn history_truncated_to_schedule_length() {
        let config = EnvConfig::small();
        let mut h = ActionHistory::new();
        for _ in 0..10 {
            h.push_tiled(vec![1, 1, 1, 1]);
        }
        // No panic, and the feature length is unchanged.
        assert_eq!(
            h.to_features(&config).len(),
            config.max_schedule_len * config.max_loops * config.num_tile_candidates()
                + config.max_schedule_len * config.max_loops * config.max_loops
        );
    }

    #[test]
    fn observation_batch_packs_row_major() {
        let obs = |p: f64, c: f64| Observation {
            producer: vec![p, p + 1.0],
            consumer: vec![c, c + 1.0],
            mask: crate::mask::ActionMask {
                transformation: [true; 6],
                tile_sizes: vec![],
                interchange_candidates: vec![true],
                level_pointer: vec![true],
            },
            num_loops: 1,
            op: OpId(0),
        };
        let a = obs(1.0, 10.0);
        let b = obs(2.0, 20.0);
        let batch = ObservationBatch::from_observations([&a, &b]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.feature_len(), 2);
        assert_eq!(batch.producers(), &[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(batch.consumers(), &[10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn observation_batch_rejects_mismatched_lengths() {
        let mask = crate::mask::ActionMask {
            transformation: [true; 6],
            tile_sizes: vec![],
            interchange_candidates: vec![true],
            level_pointer: vec![true],
        };
        let a = Observation {
            producer: vec![1.0],
            consumer: vec![1.0],
            mask: mask.clone(),
            num_loops: 1,
            op: OpId(0),
        };
        let b = Observation {
            producer: vec![1.0, 2.0],
            consumer: vec![1.0, 2.0],
            mask,
            num_loops: 1,
            op: OpId(0),
        };
        ObservationBatch::from_observations([&a, &b]);
    }

    #[test]
    fn normalize_bound_is_monotonic() {
        assert!(normalize_bound(1024) > normalize_bound(16));
        assert!(normalize_bound(16) > normalize_bound(1));
        assert!(normalize_bound(1_000_000) <= 1.05);
    }
}
