//! Action masks (Sec. IV-A-2).
//!
//! Not every action is valid at every step: vectorizing a loop with more
//! than 512 iterations blows up code size, fusing requires an untouched
//! producer, parallelizing requires a parallel iterator, and terminated
//! operations accept nothing but "no transformation". The mask removes such
//! actions from the policy's distributions.

use serde::{Deserialize, Serialize};

use mlir_rl_ir::{IteratorType, OpId};
use mlir_rl_transforms::{
    ScheduledModule, Transformation, TransformationKind, MAX_VECTORIZABLE_INNER_EXTENT,
};

use crate::action::enumerated_candidates;
use crate::config::EnvConfig;

/// Masks for every head of the multi-discrete policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionMask {
    /// Which of the six transformation kinds may be selected
    /// (indexed by [`TransformationKind::index`]).
    pub transformation: [bool; 6],
    /// For each visible loop level, which tile-size candidates are legal
    /// (a tile size must not exceed the loop bound).
    pub tile_sizes: Vec<Vec<bool>>,
    /// Which enumerated interchange candidates are legal (always all of
    /// them for a live operation; provided for the enumerated-candidates
    /// ablation head).
    pub interchange_candidates: Vec<bool>,
    /// Which loops may still be chosen by the next level-pointer sub-step
    /// (all of them at the start of an interchange; the agent masks out
    /// already-placed loops during the sub-steps).
    pub level_pointer: Vec<bool>,
}

impl ActionMask {
    /// True if the given transformation kind is allowed.
    pub fn allows(&self, kind: TransformationKind) -> bool {
        self.transformation[kind.index()]
    }

    /// Number of allowed transformation kinds.
    pub fn num_allowed(&self) -> usize {
        self.transformation.iter().filter(|b| **b).count()
    }
}

/// Computes the action mask for the operation currently being optimized.
///
/// # Panics
///
/// Panics if `op` does not belong to the scheduled module.
pub fn compute_mask(scheduled: &ScheduledModule, op: OpId, config: &EnvConfig) -> ActionMask {
    let linalg_op = scheduled.module().op(op).expect("op belongs to module");
    let state = scheduled.state(op);
    let n = linalg_op.num_loops();
    let bounds = state.visible_bounds(linalg_op);
    let iter_types = state.visible_iterator_types(linalg_op);

    let terminated = state.is_terminated();
    let full = state.schedule.len() >= scheduled.max_schedule_len();
    let open = !terminated && !full;

    let mut transformation = [false; 6];
    transformation[TransformationKind::NoTransformation.index()] = true;
    if open {
        transformation[TransformationKind::Tiling.index()] = true;
        transformation[TransformationKind::Interchange.index()] = n >= 2;
        transformation[TransformationKind::TiledParallelization.index()] =
            iter_types.contains(&IteratorType::Parallel);
        // Fusion: the last producer must exist, be live, and be untouched.
        let fusion_ok = scheduled.module().last_producer(op).is_some_and(|p| {
            scheduled
                .check(
                    op,
                    &Transformation::TiledFusion {
                        tile_sizes: vec![0; n],
                        producer: p,
                    },
                )
                .is_ok()
        });
        transformation[TransformationKind::TiledFusion.index()] = fusion_ok;
        // Vectorization: static preconditions plus the 512-iteration limit
        // on the innermost loop of the current schedule.
        let vectorization_ok = scheduled.check(op, &Transformation::Vectorization).is_ok();
        transformation[TransformationKind::Vectorization.index()] = vectorization_ok;
    }

    let tile_sizes = bounds
        .iter()
        .map(|bound| {
            config
                .tile_candidates
                .iter()
                .map(|t| *t == 0 || *t <= *bound)
                .collect()
        })
        .collect();

    let interchange_candidates = vec![open && n >= 2; enumerated_candidates(n).len().max(1)];
    let level_pointer = vec![open; n.max(1)];

    let _ = MAX_VECTORIZABLE_INNER_EXTENT; // documented constant, checked via `scheduled.check`
    ActionMask {
        transformation,
        tile_sizes,
        interchange_candidates,
        level_pointer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_ir::ModuleBuilder;

    fn chain() -> ScheduledModule {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 32]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        ScheduledModule::new(b.finish())
    }

    #[test]
    fn fresh_matmul_mask() {
        let s = chain();
        let config = EnvConfig::small();
        let mask = compute_mask(&s, OpId(0), &config);
        assert!(mask.allows(TransformationKind::Tiling));
        assert!(mask.allows(TransformationKind::TiledParallelization));
        assert!(mask.allows(TransformationKind::Interchange));
        assert!(mask.allows(TransformationKind::NoTransformation));
        // Matmul has no producer, so fusion is masked out.
        assert!(!mask.allows(TransformationKind::TiledFusion));
        // The innermost loop is 128 > ... within the 512 limit, and maps are
        // permutations, so vectorization is allowed.
        assert!(mask.allows(TransformationKind::Vectorization));
        assert_eq!(mask.tile_sizes.len(), 3);
        assert_eq!(mask.tile_sizes[0].len(), config.num_tile_candidates());
    }

    #[test]
    fn relu_mask_allows_fusion_of_its_producer() {
        let s = chain();
        let config = EnvConfig::small();
        let mask = compute_mask(&s, OpId(1), &config);
        assert!(mask.allows(TransformationKind::TiledFusion));
    }

    #[test]
    fn tile_size_mask_respects_loop_bounds() {
        let s = chain();
        let config = EnvConfig::small(); // candidates [0, 4, 16, 32, 64]
        let mask = compute_mask(&s, OpId(1), &config);
        // ReLU over 64x32: level 1 has bound 32, so tile 64 is illegal.
        assert_eq!(mask.tile_sizes[1], vec![true, true, true, true, false]);
        assert_eq!(mask.tile_sizes[0], vec![true, true, true, true, true]);
    }

    #[test]
    fn vectorization_masked_for_large_inner_loop() {
        let mut b = ModuleBuilder::new("big");
        let x = b.argument("x", vec![1024, 1024]);
        let y = b.argument("y", vec![1024, 1024]);
        b.add(x, y);
        let s = ScheduledModule::new(b.finish());
        let mask = compute_mask(&s, OpId(0), &EnvConfig::small());
        assert!(
            !mask.allows(TransformationKind::Vectorization),
            "innermost 1024 > 512 must be masked"
        );
    }

    #[test]
    fn terminated_op_only_allows_stop() {
        let mut s = chain();
        s.apply(OpId(0), Transformation::NoTransformation).unwrap();
        let mask = compute_mask(&s, OpId(0), &EnvConfig::small());
        assert_eq!(mask.num_allowed(), 1);
        assert!(mask.allows(TransformationKind::NoTransformation));
    }

    #[test]
    fn full_schedule_only_allows_stop() {
        let mut s = ScheduledModule::with_max_schedule_len(chain().module().clone(), 1);
        s.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![4, 4, 4],
            },
        )
        .unwrap();
        let mask = compute_mask(&s, OpId(0), &EnvConfig::small());
        assert_eq!(mask.num_allowed(), 1);
    }

    #[test]
    fn parallelization_masked_when_no_parallel_iterator() {
        // A pure-reduction generic op: sum over both loops.
        use mlir_rl_ir::{AffineExpr, AffineMap, ArithCounts, IteratorType};
        let mut b = ModuleBuilder::new("red");
        let x = b.argument("x", vec![32, 32]);
        b.generic(
            vec![x],
            vec![32, 32],
            vec![IteratorType::Reduction, IteratorType::Reduction],
            vec![
                AffineMap::identity(2),
                AffineMap::new(2, vec![AffineExpr::constant(0)]).unwrap(),
            ],
            vec![1],
            ArithCounts {
                add: 1,
                ..Default::default()
            },
        );
        let s = ScheduledModule::new(b.finish());
        let mask = compute_mask(&s, OpId(0), &EnvConfig::small());
        assert!(!mask.allows(TransformationKind::TiledParallelization));
        assert!(mask.allows(TransformationKind::Tiling));
    }
}
