//! Agent-facing actions and their translation to IR transformations.
//!
//! The agent expresses parameters in terms of the environment configuration
//! (tile-size *indices* into the candidate list, interchange candidates or
//! full permutations); [`Action::to_transformation`] translates them into the
//! [`Transformation`]s applied to the IR.

use serde::{Deserialize, Serialize};

use mlir_rl_ir::OpId;
use mlir_rl_transforms::{Transformation, TransformationKind};

use crate::config::EnvConfig;

/// How an interchange is specified by the agent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterchangeSpec {
    /// A full permutation of the operation's loops, as produced by the
    /// level-pointer head (`permutation[i]` = loop placed at position `i`).
    Permutation(Vec<usize>),
    /// An index into the enumerated candidate list (pairwise swaps of loops
    /// at distance 1, 2 or 3).
    Candidate(usize),
}

/// One agent action in the multi-discrete action space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Tile every loop level with the tile-size *candidate index* given per
    /// visible loop level (index 0 means "do not tile this level").
    Tiling {
        /// Tile-candidate index per visible loop level.
        tile_indices: Vec<usize>,
    },
    /// Tiling followed by parallelization of the outer tile loops.
    TiledParallelization {
        /// Tile-candidate index per visible loop level.
        tile_indices: Vec<usize>,
    },
    /// Tiling of the consumer followed by fusion of its last producer.
    TiledFusion {
        /// Tile-candidate index per visible loop level.
        tile_indices: Vec<usize>,
    },
    /// Loop interchange.
    Interchange(InterchangeSpec),
    /// Vectorize the innermost loop (terminal for the current operation).
    Vectorization,
    /// Stop optimizing the current operation (terminal).
    NoTransformation,
}

impl Action {
    /// The transformation category this action selects.
    pub fn kind(&self) -> TransformationKind {
        match self {
            Action::Tiling { .. } => TransformationKind::Tiling,
            Action::TiledParallelization { .. } => TransformationKind::TiledParallelization,
            Action::TiledFusion { .. } => TransformationKind::TiledFusion,
            Action::Interchange(_) => TransformationKind::Interchange,
            Action::Vectorization => TransformationKind::Vectorization,
            Action::NoTransformation => TransformationKind::NoTransformation,
        }
    }

    /// Translates the action into an IR transformation.
    ///
    /// `num_loops` is the loop count of the operation being optimized and
    /// `producer` the producer that a fusion would target (the last
    /// producer, per Sec. III).
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when the action's parameters do not fit
    /// the operation (wrong arity, out-of-range candidate index, fusion with
    /// no producer).
    pub fn to_transformation(
        &self,
        config: &EnvConfig,
        num_loops: usize,
        producer: Option<OpId>,
    ) -> Result<Transformation, String> {
        let decode_tiles = |tile_indices: &[usize]| -> Result<Vec<u64>, String> {
            if tile_indices.len() != num_loops {
                return Err(format!(
                    "expected {num_loops} tile indices, got {}",
                    tile_indices.len()
                ));
            }
            tile_indices
                .iter()
                .map(|i| {
                    config
                        .tile_candidates
                        .get(*i)
                        .copied()
                        .ok_or_else(|| format!("tile candidate index {i} out of range"))
                })
                .collect()
        };
        match self {
            Action::Tiling { tile_indices } => Ok(Transformation::Tiling {
                tile_sizes: decode_tiles(tile_indices)?,
            }),
            Action::TiledParallelization { tile_indices } => {
                Ok(Transformation::TiledParallelization {
                    tile_sizes: decode_tiles(tile_indices)?,
                })
            }
            Action::TiledFusion { tile_indices } => {
                let producer = producer.ok_or_else(|| "no producer to fuse".to_string())?;
                Ok(Transformation::TiledFusion {
                    tile_sizes: decode_tiles(tile_indices)?,
                    producer,
                })
            }
            Action::Interchange(spec) => {
                let permutation = match spec {
                    InterchangeSpec::Permutation(p) => {
                        if p.len() != num_loops {
                            return Err(format!(
                                "permutation has {} entries for {num_loops} loops",
                                p.len()
                            ));
                        }
                        p.clone()
                    }
                    InterchangeSpec::Candidate(idx) => {
                        let candidates = enumerated_candidates(num_loops);
                        let (a, b) = candidates
                            .get(*idx)
                            .copied()
                            .ok_or_else(|| format!("interchange candidate {idx} out of range"))?;
                        swap_permutation(num_loops, a, b)
                    }
                };
                Ok(Transformation::Interchange { permutation })
            }
            Action::Vectorization => Ok(Transformation::Vectorization),
            Action::NoTransformation => Ok(Transformation::NoTransformation),
        }
    }
}

/// The enumerated interchange candidates for an `n`-loop nest: swaps of two
/// loop levels that are adjacent or separated by one or two levels
/// (`3N - 6` candidates for `N >= 3`, fewer for shallow nests).
pub fn enumerated_candidates(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for distance in 1..=3usize {
        for i in 0..n.saturating_sub(distance) {
            out.push((i, i + distance));
        }
    }
    out
}

/// The identity permutation with positions `a` and `b` swapped.
pub fn swap_permutation(n: usize, a: usize, b: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    p.swap(a, b);
    p
}

/// The flat action space used by the Fig. 6 ablation: a fixed enumeration of
/// (transformation, parameter) combinations. Tiled transformations are
/// restricted to a uniform tile size across all loop levels, which is what
/// keeps the flat enumeration tractable — and what limits the schedules it
/// can express compared to the multi-discrete space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlatAction {
    /// Tile all levels with `tile_candidates[index]`.
    UniformTiling {
        /// Index into the tile-candidate list.
        index: usize,
    },
    /// Tile all levels uniformly and parallelize.
    UniformTiledParallelization {
        /// Index into the tile-candidate list.
        index: usize,
    },
    /// Tile all levels uniformly and fuse the last producer.
    UniformTiledFusion {
        /// Index into the tile-candidate list.
        index: usize,
    },
    /// Apply one of the enumerated interchange candidates.
    Interchange {
        /// Index into [`enumerated_candidates`].
        candidate: usize,
    },
    /// Vectorize.
    Vectorization,
    /// Stop optimizing the current operation.
    NoTransformation,
}

/// Enumerates the whole flat action space for the given configuration.
pub fn flat_action_space(config: &EnvConfig) -> Vec<FlatAction> {
    let mut out = Vec::new();
    for index in 1..config.num_tile_candidates() {
        out.push(FlatAction::UniformTiling { index });
    }
    for index in 1..config.num_tile_candidates() {
        out.push(FlatAction::UniformTiledParallelization { index });
    }
    for index in 1..config.num_tile_candidates() {
        out.push(FlatAction::UniformTiledFusion { index });
    }
    for candidate in 0..config.num_enumerated_interchanges() {
        out.push(FlatAction::Interchange { candidate });
    }
    out.push(FlatAction::Vectorization);
    out.push(FlatAction::NoTransformation);
    out
}

impl FlatAction {
    /// Expands the flat action into a multi-discrete [`Action`] for an
    /// operation with `num_loops` loops.
    pub fn to_action(&self, num_loops: usize) -> Action {
        match self {
            FlatAction::UniformTiling { index } => Action::Tiling {
                tile_indices: vec![*index; num_loops],
            },
            FlatAction::UniformTiledParallelization { index } => Action::TiledParallelization {
                tile_indices: vec![*index; num_loops],
            },
            FlatAction::UniformTiledFusion { index } => Action::TiledFusion {
                tile_indices: vec![*index; num_loops],
            },
            FlatAction::Interchange { candidate } => {
                Action::Interchange(InterchangeSpec::Candidate(*candidate))
            }
            FlatAction::Vectorization => Action::Vectorization,
            FlatAction::NoTransformation => Action::NoTransformation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerated_candidates_count_matches_3n_minus_6() {
        assert_eq!(enumerated_candidates(3).len(), 3);
        assert_eq!(enumerated_candidates(4).len(), 6);
        assert_eq!(enumerated_candidates(12).len(), 30);
        // Shallow nests have fewer candidates.
        assert_eq!(enumerated_candidates(2).len(), 1);
        assert_eq!(enumerated_candidates(1).len(), 0);
    }

    #[test]
    fn swap_permutation_is_a_permutation() {
        assert_eq!(swap_permutation(4, 1, 3), vec![0, 3, 2, 1]);
        assert_eq!(swap_permutation(3, 0, 1), vec![1, 0, 2]);
    }

    #[test]
    fn tiling_action_decodes_tile_sizes() {
        let config = EnvConfig::small(); // candidates [0, 4, 16, 32, 64]
        let action = Action::Tiling {
            tile_indices: vec![1, 0, 3],
        };
        let t = action.to_transformation(&config, 3, None).unwrap();
        assert_eq!(
            t,
            Transformation::Tiling {
                tile_sizes: vec![4, 0, 32]
            }
        );
    }

    #[test]
    fn tiling_action_rejects_wrong_arity_and_bad_index() {
        let config = EnvConfig::small();
        assert!(Action::Tiling {
            tile_indices: vec![1, 2]
        }
        .to_transformation(&config, 3, None)
        .is_err());
        assert!(Action::Tiling {
            tile_indices: vec![9, 0, 0]
        }
        .to_transformation(&config, 3, None)
        .is_err());
    }

    #[test]
    fn fusion_requires_a_producer() {
        let config = EnvConfig::small();
        let action = Action::TiledFusion {
            tile_indices: vec![1, 1],
        };
        assert!(action.to_transformation(&config, 2, None).is_err());
        let t = action.to_transformation(&config, 2, Some(OpId(3))).unwrap();
        assert!(matches!(
            t,
            Transformation::TiledFusion {
                producer: OpId(3),
                ..
            }
        ));
    }

    #[test]
    fn interchange_candidate_expands_to_swap() {
        let config = EnvConfig::small();
        // Candidate 0 for 3 loops is the (0, 1) swap.
        let action = Action::Interchange(InterchangeSpec::Candidate(0));
        let t = action.to_transformation(&config, 3, None).unwrap();
        assert_eq!(
            t,
            Transformation::Interchange {
                permutation: vec![1, 0, 2]
            }
        );
        // Out-of-range candidate is rejected.
        let bad = Action::Interchange(InterchangeSpec::Candidate(99));
        assert!(bad.to_transformation(&config, 3, None).is_err());
    }

    #[test]
    fn interchange_permutation_passthrough() {
        let config = EnvConfig::small();
        let action = Action::Interchange(InterchangeSpec::Permutation(vec![2, 0, 1]));
        let t = action.to_transformation(&config, 3, None).unwrap();
        assert_eq!(
            t,
            Transformation::Interchange {
                permutation: vec![2, 0, 1]
            }
        );
        let wrong = Action::Interchange(InterchangeSpec::Permutation(vec![0, 1]));
        assert!(wrong.to_transformation(&config, 3, None).is_err());
    }

    #[test]
    fn action_kinds() {
        assert_eq!(
            Action::Vectorization.kind(),
            TransformationKind::Vectorization
        );
        assert_eq!(
            Action::NoTransformation.kind(),
            TransformationKind::NoTransformation
        );
        assert_eq!(
            Action::Tiling {
                tile_indices: vec![]
            }
            .kind(),
            TransformationKind::Tiling
        );
    }

    #[test]
    fn flat_action_space_size_and_expansion() {
        let config = EnvConfig::small(); // M=5, max_loops=4 -> 3*4 + 6 + 2
        let flat = flat_action_space(&config);
        assert_eq!(
            flat.len(),
            3 * (config.num_tile_candidates() - 1) + config.num_enumerated_interchanges() + 2
        );
        let expanded = flat[0].to_action(3);
        assert_eq!(
            expanded,
            Action::Tiling {
                tile_indices: vec![1, 1, 1]
            }
        );
        assert_eq!(flat.last().unwrap().to_action(3), Action::NoTransformation);
    }
}
