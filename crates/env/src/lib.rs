//! # mlir-rl-env
//!
//! The MLIR RL reinforcement-learning environment: multi-discrete action
//! space with action masking, level-pointer and enumerated-candidate
//! interchange formulations, the Fig. 1 state representation (operation
//! type, loop ranges, vectorization pre-conditions, polyhedral access
//! matrices, operation counts, action history), and log-speedup rewards in
//! final or immediate mode — all over the miniature Linalg IR, the
//! transformation engine and the analytical cost model.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_costmodel::{CostModel, MachineModel};
//! use mlir_rl_env::{Action, EnvConfig, OptimizationEnv};
//! use mlir_rl_ir::ModuleBuilder;
//!
//! let mut b = ModuleBuilder::new("m");
//! let a = b.argument("A", vec![128, 256]);
//! let w = b.argument("B", vec![256, 64]);
//! b.matmul(a, w);
//!
//! let mut env = OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()));
//! let obs = env.reset(b.finish()).expect("module has one op");
//! assert_eq!(obs.num_loops, 3);
//!
//! let outcome = env.step(&Action::TiledParallelization { tile_indices: vec![2, 2, 0] });
//! assert!(outcome.applied);
//! ```

#![warn(missing_docs)]

pub mod action;
pub mod config;
pub mod env;
pub mod features;
pub mod mask;
pub mod reward;

pub use action::{
    enumerated_candidates, flat_action_space, swap_permutation, Action, FlatAction, InterchangeSpec,
};
pub use config::{ActionSpaceMode, EnvConfig, InterchangeMode, RewardMode};
pub use env::{EpisodeSnapshot, EpisodeStats, Observation, OptimizationEnv, StepOutcome};
pub use features::{extract_features, zero_features, ActionHistory, ObservationBatch};
pub use mask::{compute_mask, ActionMask};
pub use reward::{log_speedup, speedup_from_log, step_reward};
