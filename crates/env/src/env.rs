//! The MLIR RL optimization environment (Sec. III and IV).
//!
//! An episode optimizes one module: operations are visited in reverse
//! program order (consumers before producers, so fusion opportunities are
//! preserved); at every step the agent applies one transformation to the
//! operation currently being optimized; terminal actions (vectorization or
//! "no transformation") move to the next operation; the episode ends when
//! every operation has been visited. The reward is the log-speedup of the
//! optimized module over the untransformed baseline, estimated by the
//! analytical cost model (the substitute for the paper's real executions).

use serde::{Deserialize, Serialize};

use mlir_rl_costmodel::{
    module_fingerprint, schedule_fingerprint, CostModel, EvalCache, MeasurementNoise, ScheduleKey,
    SharedEvalCache,
};
use mlir_rl_ir::{Module, OpId};
use mlir_rl_obs::ProbeRef;
use mlir_rl_transforms::{ScheduledModule, TransformError, TransformationKind};

use crate::action::Action;
use crate::config::{EnvConfig, RewardMode};
use crate::features::{extract_features, zero_features, ActionHistory};
use crate::mask::{compute_mask, ActionMask};
use crate::reward::{log_speedup, step_reward};

/// What the agent observes before choosing an action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Representation vector of the operation being optimized (the
    /// consumer).
    pub consumer: Vec<f64>,
    /// Representation vector of its last producer (all zeros when there is
    /// none).
    pub producer: Vec<f64>,
    /// Action masks for every policy head.
    pub mask: ActionMask,
    /// Number of loops of the operation being optimized.
    pub num_loops: usize,
    /// The operation being optimized.
    pub op: OpId,
}

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The next observation, or `None` when the episode has ended.
    pub observation: Option<Observation>,
    /// The reward of this step.
    pub reward: f64,
    /// Whether the episode has ended.
    pub done: bool,
    /// Whether the requested transformation was actually applied (illegal
    /// requests are ignored but still consume a step).
    pub applied: bool,
    /// Execution-time estimate of the module after this step, in seconds
    /// (only refreshed when the reward mode required an evaluation).
    pub current_time_s: f64,
}

/// The per-episode statistics the training loop and the benchmark harness
/// consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Baseline (untransformed) execution time, seconds.
    pub baseline_s: f64,
    /// Final optimized execution time, seconds.
    pub final_s: f64,
    /// End-to-end speedup over the baseline.
    pub speedup: f64,
    /// Environment steps taken.
    pub steps: usize,
    /// Cost-model evaluations performed (the execution count that makes the
    /// immediate-reward mode expensive, Fig. 7). Evaluations served from the
    /// schedule-keyed cache are *not* counted here.
    pub evaluations: usize,
    /// Evaluation requests answered by the schedule-keyed cache instead of
    /// running the estimator.
    pub cache_hits: usize,
}

impl EpisodeStats {
    /// Total cost-model lookups of the episode. Every lookup is classified
    /// as exactly one of `evaluations` (estimator ran) or `cache_hits`
    /// (served from memory), so `evaluations + cache_hits == total_lookups`
    /// always holds — the invariant the rollout engine and the search
    /// subsystem both report against.
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }
}

/// A resumable snapshot of a live episode.
///
/// Search procedures branch the environment: they take a snapshot at a
/// decision point, try an action, and [`OptimizationEnv::restore`] to try
/// the next one — without re-running the transformation sequence from the
/// episode start. The snapshot captures everything episode-specific
/// (schedule state, visit cursor, action histories, timings, counters and
/// the noise stream); the configuration, cost model and evaluation cache
/// stay with the environment, so all branches of a search share one cache.
#[derive(Debug, Clone)]
pub struct EpisodeSnapshot {
    scheduled: Option<ScheduledModule>,
    op_order: Vec<OpId>,
    current_index: usize,
    histories: Vec<ActionHistory>,
    baseline_s: f64,
    current_s: f64,
    steps_on_current_op: usize,
    total_steps: usize,
    evaluations: usize,
    cache_hits: usize,
    module_fp: u64,
    noise: Option<MeasurementNoise>,
}

/// The optimization environment.
#[derive(Debug, Clone)]
pub struct OptimizationEnv {
    config: EnvConfig,
    cost_model: CostModel,
    noise: Option<MeasurementNoise>,
    scheduled: Option<ScheduledModule>,
    op_order: Vec<OpId>,
    current_index: usize,
    histories: Vec<ActionHistory>,
    baseline_s: f64,
    current_s: f64,
    steps_on_current_op: usize,
    total_steps: usize,
    evaluations: usize,
    cache_hits: usize,
    cache: EvalCache,
    module_fp: u64,
}

impl OptimizationEnv {
    /// Creates an environment with the given configuration and cost model.
    pub fn new(config: EnvConfig, cost_model: CostModel) -> Self {
        config.validate();
        let noise = config.noise_seed.map(MeasurementNoise::new);
        Self {
            config,
            cost_model,
            noise,
            scheduled: None,
            op_order: Vec::new(),
            current_index: 0,
            histories: Vec::new(),
            baseline_s: 0.0,
            current_s: 0.0,
            steps_on_current_op: 0,
            total_steps: 0,
            evaluations: 0,
            cache_hits: 0,
            cache: EvalCache::default(),
            module_fp: 0,
        }
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// The cost model used for rewards.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Starts a new episode on the given module and returns the first
    /// observation (`None` if the module has no operations).
    pub fn reset(&mut self, module: Module) -> Option<Observation> {
        let scheduled =
            ScheduledModule::with_max_schedule_len(module, self.config.max_schedule_len);
        self.op_order = scheduled.module().reverse_order();
        self.histories = vec![ActionHistory::new(); scheduled.module().ops().len()];
        self.current_index = 0;
        self.steps_on_current_op = 0;
        self.total_steps = 0;
        self.evaluations = 0;
        self.cache_hits = 0;
        self.module_fp = module_fingerprint(scheduled.module());
        let baseline = self.cached_total_s(&scheduled);
        self.baseline_s = self.measure(baseline);
        self.current_s = self.baseline_s;
        self.scheduled = Some(scheduled);
        self.skip_unavailable_ops();
        self.observation()
    }

    /// The operation currently being optimized, if the episode is live.
    pub fn current_op(&self) -> Option<OpId> {
        self.op_order.get(self.current_index).copied()
    }

    /// The scheduled module of the current episode.
    pub fn scheduled(&self) -> Option<&ScheduledModule> {
        self.scheduled.as_ref()
    }

    /// Baseline execution time of the episode's module.
    pub fn baseline_time_s(&self) -> f64 {
        self.baseline_s
    }

    /// Number of cost-model evaluations actually performed (cache misses)
    /// so far this episode.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Number of evaluation requests served by the schedule-keyed cache so
    /// far this episode.
    pub fn episode_cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// The schedule-keyed evaluation cache (lifetime hit/miss counters).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Attaches a trace probe to this environment's evaluation path:
    /// cache hits/misses and budget charges are mirrored as trace events,
    /// and searchers read the handle back (via [`OptimizationEnv::probe`])
    /// to emit their own phase events against the same trace id. Emission
    /// is purely observational and never perturbs outcomes; pass
    /// [`ProbeRef::none`] to detach. The probe rides along on environment
    /// clones (racing portfolio members keep tracing) but is *not* part of
    /// episode snapshots.
    pub fn set_probe(&mut self, probe: ProbeRef) {
        self.cache.set_probe(probe);
    }

    /// The trace probe events from this environment are attributed to.
    pub fn probe(&self) -> &ProbeRef {
        self.cache.probe()
    }

    /// Replaces the evaluation cache, returning the previous one.
    pub fn replace_cache(&mut self, cache: EvalCache) -> EvalCache {
        std::mem::replace(&mut self.cache, cache)
    }

    /// Switches the evaluation cache to the sharded thread-shared backend
    /// (idempotent) and returns a handle to the shared table. Environment
    /// clones taken *after* this call all hit the same table — the rollout
    /// engine and the search driver use this so every worker and every
    /// search branch shares one cache.
    pub fn enable_shared_cache(&mut self) -> SharedEvalCache {
        self.cache.make_shared()
    }

    /// Total cost-model lookups so far this episode
    /// (`evaluations + cache_hits`).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }

    /// Reseeds the measurement-noise stream (no-op when the configuration
    /// disables noise). The parallel rollout engine calls this with a
    /// per-episode seed so that trajectories are identical no matter which
    /// worker runs them.
    pub fn reseed_noise(&mut self, seed: u64) {
        if let Some(noise) = &mut self.noise {
            let sigma = noise.relative_sigma;
            *noise = MeasurementNoise::with_sigma(seed, sigma);
        }
    }

    /// Episode statistics; meaningful once the episode is done (but callable
    /// at any point).
    pub fn stats(&mut self) -> EpisodeStats {
        let final_s = self.evaluate_current();
        EpisodeStats {
            baseline_s: self.baseline_s,
            final_s,
            speedup: if final_s > 0.0 {
                self.baseline_s / final_s
            } else {
                1.0
            },
            steps: self.total_steps,
            evaluations: self.evaluations,
            cache_hits: self.cache_hits,
        }
    }

    /// Takes a snapshot of the live episode for later [`Self::restore`].
    pub fn snapshot(&self) -> EpisodeSnapshot {
        EpisodeSnapshot {
            scheduled: self.scheduled.clone(),
            op_order: self.op_order.clone(),
            current_index: self.current_index,
            histories: self.histories.clone(),
            baseline_s: self.baseline_s,
            current_s: self.current_s,
            steps_on_current_op: self.steps_on_current_op,
            total_steps: self.total_steps,
            evaluations: self.evaluations,
            cache_hits: self.cache_hits,
            module_fp: self.module_fp,
            noise: self.noise.clone(),
        }
    }

    /// Restores a previously taken snapshot, rewinding the episode to that
    /// decision point. The evaluation cache is *not* rewound: estimates
    /// memoized on an abandoned branch stay warm for the next one.
    pub fn restore(&mut self, snapshot: &EpisodeSnapshot) {
        self.scheduled = snapshot.scheduled.clone();
        self.op_order = snapshot.op_order.clone();
        self.current_index = snapshot.current_index;
        self.histories = snapshot.histories.clone();
        self.baseline_s = snapshot.baseline_s;
        self.current_s = snapshot.current_s;
        self.steps_on_current_op = snapshot.steps_on_current_op;
        self.total_steps = snapshot.total_steps;
        self.evaluations = snapshot.evaluations;
        self.cache_hits = snapshot.cache_hits;
        self.module_fp = snapshot.module_fp;
        self.noise = snapshot.noise.clone();
    }

    /// The observation of the current decision point (`None` when the
    /// episode is over). Search procedures call this after
    /// [`Self::restore`] to re-derive the branching point's observation.
    pub fn current_observation(&self) -> Option<Observation> {
        self.observation()
    }

    /// Estimated execution time of the current schedule, through the cache,
    /// *without* measurement noise and without touching the episode's
    /// running time. Search procedures score branches with this (the
    /// lookup still counts toward `evaluations`/`cache_hits`).
    pub fn peek_time_s(&mut self) -> f64 {
        let Some(scheduled) = self.scheduled.take() else {
            return self.current_s;
        };
        let t = self.cached_total_s(&scheduled);
        self.scheduled = Some(scheduled);
        t
    }

    /// Evaluates `scheduled` through the schedule-keyed cache, classifying
    /// the request into this episode's hit/miss counters (the only place
    /// that accounting happens).
    fn cached_total_s(&mut self, scheduled: &ScheduledModule) -> f64 {
        let key = ScheduleKey {
            module: self.module_fp,
            schedule: schedule_fingerprint(scheduled),
        };
        let (total_s, was_hit) = self.cache.total_s_keyed(key, &self.cost_model, scheduled);
        if was_hit {
            self.cache_hits += 1;
        } else {
            self.evaluations += 1;
        }
        total_s
    }

    fn measure(&mut self, time_s: f64) -> f64 {
        match &mut self.noise {
            Some(noise) => noise.measure_median(time_s, 5),
            None => time_s,
        }
    }

    /// Evaluates the current schedule with the cost model, through the
    /// schedule-keyed cache: a repeated schedule is served from memory and
    /// counted as a cache hit, a new schedule runs the roofline estimator
    /// and counts as an evaluation.
    pub fn evaluate_current(&mut self) -> f64 {
        let Some(scheduled) = self.scheduled.take() else {
            return self.current_s;
        };
        let t = self.cached_total_s(&scheduled);
        self.scheduled = Some(scheduled);
        let measured = self.measure(t);
        self.current_s = measured;
        measured
    }

    fn observation(&self) -> Option<Observation> {
        let scheduled = self.scheduled.as_ref()?;
        let op = self.current_op()?;
        let num_loops = scheduled.module().op(op).ok()?.num_loops();
        let consumer = extract_features(scheduled, op, &self.histories[op.0], &self.config);
        let producer = match scheduled.module().last_producer(op) {
            Some(p) => extract_features(scheduled, p, &self.histories[p.0], &self.config),
            None => zero_features(&self.config),
        };
        Some(Observation {
            consumer,
            producer,
            mask: compute_mask(scheduled, op, &self.config),
            num_loops,
            op,
        })
    }

    /// Skips operations that can no longer be optimized (already fused into
    /// a consumer).
    fn skip_unavailable_ops(&mut self) {
        while let (Some(op), Some(scheduled)) = (self.current_op(), self.scheduled.as_ref()) {
            if scheduled.state(op).fused_into.is_some() {
                self.current_index += 1;
                self.steps_on_current_op = 0;
            } else {
                return;
            }
        }
    }

    fn episode_done(&self) -> bool {
        self.current_index >= self.op_order.len()
    }

    /// Applies one agent action.
    ///
    /// Illegal actions (which the masks normally prevent) are not applied
    /// but still consume a step; a tiled parallelization whose outermost
    /// tiled loop is a reduction is downgraded to plain tiling, mirroring
    /// how `scf.forall` tiling skips reduction dimensions.
    pub fn step(&mut self, action: &Action) -> StepOutcome {
        if self.episode_done() || self.scheduled.is_none() {
            return StepOutcome {
                observation: None,
                reward: 0.0,
                done: true,
                applied: false,
                current_time_s: self.current_s,
            };
        }
        let op = self.current_op().expect("episode not done");
        let scheduled = self.scheduled.as_mut().expect("episode live");
        let num_loops = scheduled
            .module()
            .op(op)
            .expect("op belongs to module")
            .num_loops();
        let producer = scheduled.module().last_producer(op);

        self.total_steps += 1;
        self.steps_on_current_op += 1;
        let previous_s = self.current_s;

        // Decode and apply.
        let mut applied = false;
        let mut applied_kind = action.kind();
        if let Ok(transformation) = action.to_transformation(&self.config, num_loops, producer) {
            let result = scheduled.apply(op, transformation.clone());
            match result {
                Ok(()) => applied = true,
                Err(TransformError::ParallelizingReduction { .. }) => {
                    // Downgrade to plain tiling.
                    if let mlir_rl_transforms::Transformation::TiledParallelization { tile_sizes } =
                        transformation
                    {
                        if scheduled
                            .apply(
                                op,
                                mlir_rl_transforms::Transformation::Tiling { tile_sizes },
                            )
                            .is_ok()
                        {
                            applied = true;
                            applied_kind = TransformationKind::Tiling;
                        }
                    }
                }
                Err(_) => {}
            }
        }

        // Record the action history (terminal actions record nothing,
        // Appendix A).
        if applied && !applied_kind.is_terminal() {
            let state = self.scheduled.as_ref().expect("episode live").state(op);
            match action {
                Action::Tiling { tile_indices }
                | Action::TiledParallelization { tile_indices }
                | Action::TiledFusion { tile_indices } => {
                    self.histories[op.0].push_tiled(tile_indices.clone());
                }
                Action::Interchange(_) => {
                    self.histories[op.0].push_interchange(state.order.clone());
                }
                _ => self.histories[op.0].push_empty(),
            }
        }

        // Does this step end the optimization of the current operation?
        let schedule_len = self
            .scheduled
            .as_ref()
            .expect("episode live")
            .state(op)
            .schedule
            .len();
        let op_finished = applied_kind.is_terminal()
            || (applied && schedule_len >= self.config.max_schedule_len)
            || self.steps_on_current_op >= self.config.max_schedule_len + 2;
        if op_finished {
            // Freeze the op if it was not already terminated so that later
            // masks report it as closed.
            let scheduled = self.scheduled.as_mut().expect("episode live");
            if !scheduled.state(op).is_terminated() {
                let _ = scheduled.apply(op, mlir_rl_transforms::Transformation::NoTransformation);
            }
            self.current_index += 1;
            self.steps_on_current_op = 0;
            self.skip_unavailable_ops();
        }
        let done = self.episode_done();

        // Reward.
        let needs_evaluation = matches!(self.config.reward_mode, RewardMode::Immediate)
            || (done && matches!(self.config.reward_mode, RewardMode::Final));
        let current_s = if needs_evaluation {
            self.evaluate_current()
        } else {
            self.current_s
        };
        let reward = step_reward(
            self.config.reward_mode,
            done,
            self.baseline_s,
            previous_s,
            current_s,
        );

        StepOutcome {
            observation: if done { None } else { self.observation() },
            reward,
            done,
            applied,
            current_time_s: current_s,
        }
    }

    /// Final speedup of the episode (1.0 before any step).
    pub fn final_speedup(&self) -> f64 {
        if self.current_s > 0.0 {
            self.baseline_s / self.current_s
        } else {
            1.0
        }
    }

    /// Accumulated log-speedup, for comparing against episode rewards.
    pub fn log_speedup(&self) -> f64 {
        log_speedup(self.baseline_s, self.current_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::InterchangeSpec;
    use mlir_rl_costmodel::MachineModel;
    use mlir_rl_ir::ModuleBuilder;

    fn matmul_relu_module() -> Module {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![128, 256]);
        let w = b.argument("B", vec![256, 64]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    fn env() -> OptimizationEnv {
        OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()))
    }

    #[test]
    fn reset_visits_last_consumer_first() {
        let mut e = env();
        let obs = e.reset(matmul_relu_module()).unwrap();
        // The relu (op 1) is the last consumer and is optimized first.
        assert_eq!(obs.op, OpId(1));
        assert_eq!(obs.num_loops, 2);
        assert!(e.baseline_time_s() > 0.0);
        // Its producer slot holds the matmul features (non-zero).
        assert!(obs.producer.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn full_episode_with_stop_actions() {
        let mut e = env();
        e.reset(matmul_relu_module()).unwrap();
        let out1 = e.step(&Action::NoTransformation);
        assert!(!out1.done);
        assert_eq!(out1.observation.as_ref().unwrap().op, OpId(0));
        let out2 = e.step(&Action::NoTransformation);
        assert!(out2.done);
        assert!(out2.observation.is_none());
        // Doing nothing gives (approximately) zero reward.
        assert!(out2.reward.abs() < 1e-9);
        let stats = e.stats();
        assert_eq!(stats.steps, 2);
        assert!((stats.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimizing_yields_positive_final_reward() {
        let mut e = env();
        e.reset(matmul_relu_module()).unwrap();
        // Fuse the matmul into the relu, then stop; then parallelize nothing
        // further (the matmul is fused away, so the episode ends).
        let out = e.step(&Action::TiledFusion {
            tile_indices: vec![2, 2],
        });
        assert!(out.applied);
        let out = e.step(&Action::NoTransformation);
        assert!(out.done, "the fused-away matmul is skipped");
        assert!(out.reward > 0.0, "fusion should speed the module up");
        assert!(e.final_speedup() > 1.0);
    }

    #[test]
    fn parallelization_gives_large_speedup() {
        let mut e = env();
        e.reset(matmul_relu_module()).unwrap();
        // Optimize the relu trivially, then parallelize the matmul.
        e.step(&Action::NoTransformation);
        let out = e.step(&Action::TiledParallelization {
            tile_indices: vec![2, 2, 0],
        });
        assert!(out.applied);
        let out = e.step(&Action::Vectorization);
        assert!(out.done);
        assert!(out.reward > 1.0, "log-speedup should exceed 1 (e >= 2.7x)");
    }

    #[test]
    fn illegal_action_is_not_applied_but_consumes_a_step() {
        let mut e = env();
        e.reset(matmul_relu_module()).unwrap();
        // Wrong arity for the relu (2 loops).
        let out = e.step(&Action::Tiling {
            tile_indices: vec![1, 1, 1, 1],
        });
        assert!(!out.applied);
        assert!(!out.done);
    }

    #[test]
    fn parallelizing_a_reduction_outer_loop_downgrades_to_tiling() {
        let mut b = ModuleBuilder::new("softmax");
        let x = b.argument("x", vec![64, 128]);
        b.softmax_2d(x);
        let mut e = env();
        e.reset(b.finish()).unwrap();
        // Interchange so the reduction is outermost, then ask for tiled
        // parallelization: the environment downgrades it to plain tiling.
        e.step(&Action::Interchange(InterchangeSpec::Permutation(vec![
            1, 0,
        ])));
        let out = e.step(&Action::TiledParallelization {
            tile_indices: vec![1, 1],
        });
        assert!(out.applied);
        let scheduled = e.scheduled().unwrap();
        assert!(!scheduled.state(OpId(0)).parallelized);
        assert!(scheduled.state(OpId(0)).tile_sizes.iter().any(|t| *t > 0));
    }

    #[test]
    fn schedule_length_limit_moves_to_next_op() {
        let mut e = env();
        e.reset(matmul_relu_module()).unwrap();
        // Apply more non-terminal actions than the schedule allows.
        let mut moved = false;
        for _ in 0..10 {
            let out = e.step(&Action::Tiling {
                tile_indices: vec![1, 1],
            });
            if out.done || out.observation.as_ref().map(|o| o.op) == Some(OpId(0)) {
                moved = true;
                break;
            }
        }
        assert!(moved, "the environment must eventually move to the next op");
    }

    #[test]
    fn immediate_reward_mode_evaluates_every_step() {
        let mut config = EnvConfig::small();
        config.reward_mode = RewardMode::Immediate;
        let mut e = OptimizationEnv::new(config, CostModel::new(MachineModel::default()));
        e.reset(matmul_relu_module()).unwrap();
        let evals_before = e.evaluations();
        e.step(&Action::Tiling {
            tile_indices: vec![1, 1],
        });
        e.step(&Action::NoTransformation);
        assert!(e.evaluations() >= evals_before + 2);

        // Final mode evaluates only at the end.
        let mut e2 = env();
        e2.reset(matmul_relu_module()).unwrap();
        let evals_start = e2.evaluations();
        e2.step(&Action::Tiling {
            tile_indices: vec![1, 1],
        });
        assert_eq!(e2.evaluations(), evals_start);
    }

    #[test]
    fn noise_seed_produces_reproducible_baselines() {
        let mut config = EnvConfig::small();
        config.noise_seed = Some(7);
        let cm = CostModel::new(MachineModel::default());
        let mut a = OptimizationEnv::new(config.clone(), cm.clone());
        let mut b = OptimizationEnv::new(config, cm);
        a.reset(matmul_relu_module());
        b.reset(matmul_relu_module());
        assert_eq!(a.baseline_time_s(), b.baseline_time_s());
    }

    #[test]
    fn snapshot_restore_rewinds_the_episode_exactly() {
        let mut e = env();
        e.reset(matmul_relu_module()).unwrap();
        let out = e.step(&Action::Tiling {
            tile_indices: vec![1, 1],
        });
        assert!(out.applied);
        let snap = e.snapshot();
        let obs_at_snap = e.current_observation().unwrap();

        // Branch A: parallelize, finish.
        let a1 = e.step(&Action::TiledParallelization {
            tile_indices: vec![2, 2],
        });
        assert!(a1.applied);
        let t_a = e.peek_time_s();

        // Rewind and take branch B: stop immediately.
        e.restore(&snap);
        assert_eq!(e.current_observation().unwrap(), obs_at_snap);
        let t_b = e.peek_time_s();
        assert_ne!(t_a, t_b, "branches must be scored on their own schedules");

        // Replaying branch A after the restore gives bit-identical timing.
        let a2 = e.step(&Action::TiledParallelization {
            tile_indices: vec![2, 2],
        });
        assert!(a2.applied);
        assert_eq!(e.peek_time_s(), t_a);
    }

    #[test]
    fn lookup_accounting_is_consistent() {
        // hits + evaluations == total lookups, and the episode counters
        // agree with the cache's own counters (a fresh env has a fresh
        // cache, so the lifetime counters are the episode's).
        let mut config = EnvConfig::small();
        config.reward_mode = RewardMode::Immediate;
        let mut e = OptimizationEnv::new(config, CostModel::new(MachineModel::default()));
        e.reset(matmul_relu_module()).unwrap();
        e.step(&Action::Tiling {
            tile_indices: vec![1, 1],
        });
        e.step(&Action::NoTransformation);
        e.step(&Action::Tiling {
            tile_indices: vec![1, 1, 0],
        });
        e.step(&Action::NoTransformation);
        let stats = e.stats();
        assert_eq!(
            stats.total_lookups(),
            stats.evaluations + stats.cache_hits,
            "every lookup is exactly one of evaluation or hit"
        );
        assert_eq!(stats.evaluations, e.cache().misses() as usize);
        assert_eq!(stats.cache_hits, e.cache().hits() as usize);
        assert_eq!(e.total_lookups(), stats.total_lookups());
        assert!(stats.cache_hits > 0, "repeated schedules must hit");
    }

    #[test]
    fn shared_cache_mode_preserves_episode_results() {
        let module = matmul_relu_module();
        let run = |e: &mut OptimizationEnv| {
            e.reset(module.clone()).unwrap();
            e.step(&Action::TiledFusion {
                tile_indices: vec![2, 2],
            });
            let out = e.step(&Action::NoTransformation);
            (out.reward, e.stats())
        };
        let mut local = env();
        let mut shared = env();
        let handle = shared.enable_shared_cache();
        let (r_local, s_local) = run(&mut local);
        let (r_shared, s_shared) = run(&mut shared);
        assert_eq!(r_local, r_shared);
        assert_eq!(s_local, s_shared);
        assert_eq!(
            handle.hits() + handle.misses(),
            s_shared.total_lookups() as u64
        );
    }

    #[test]
    fn empty_module_episode_is_immediately_done() {
        let mut e = env();
        let obs = e.reset(Module::new("empty"));
        assert!(obs.is_none());
        let out = e.step(&Action::NoTransformation);
        assert!(out.done);
    }
}
