//! Environment configuration.

use serde::{Deserialize, Serialize};

/// How the interchange action is represented by the policy (Sec. IV-A-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterchangeMode {
    /// A restricted enumeration of `3N - 6` candidate permutations obtained
    /// by swapping two loops that are adjacent or separated by one or two
    /// levels.
    EnumeratedCandidates,
    /// The pointer-network style decomposition: the permutation is built one
    /// position at a time by selecting which loop goes next (N sub-steps of
    /// an N-way choice), covering all `N!` permutations.
    LevelPointers,
}

/// When the reward is delivered (Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RewardMode {
    /// Zero reward at every step; the log-speedup of the whole episode is
    /// delivered at the final step (the paper's default).
    Final,
    /// The incremental log-speedup is delivered after every step. More
    /// informative but requires an execution (cost evaluation) per step.
    Immediate,
}

/// Whether the environment exposes the flat or the multi-discrete action
/// space (the ablation of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionSpaceMode {
    /// One categorical distribution over every (transformation, parameters)
    /// combination.
    Flat,
    /// Transformation selection first, then its parameters (the paper's
    /// proposal).
    MultiDiscrete,
}

/// Static configuration of the RL environment.
///
/// The defaults mirror Sec. VII-A-5 of the paper: at most 12 loop levels,
/// 8 candidate tile sizes (including 0 = no tiling), at most 14 accessed
/// arrays of rank at most 12, and a maximum schedule length of 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Maximum number of loop levels `N` representable in observations.
    pub max_loops: usize,
    /// Candidate tile sizes (`M` entries); index 0 must be 0 (no tiling).
    pub tile_candidates: Vec<u64>,
    /// Maximum number of accessed arrays `L` in the representation.
    pub max_operands: usize,
    /// Maximum rank `D` of array accesses in the representation.
    pub max_rank: usize,
    /// Maximum schedule length τ per operation.
    pub max_schedule_len: usize,
    /// Interchange head formulation.
    pub interchange_mode: InterchangeMode,
    /// Reward delivery mode.
    pub reward_mode: RewardMode,
    /// Action-space formulation.
    pub action_space_mode: ActionSpaceMode,
    /// Seed for the measurement-noise model (None disables noise).
    pub noise_seed: Option<u64>,
}

impl EnvConfig {
    /// The paper's configuration (N=12, M=8, L=14, D=12, τ=5, level
    /// pointers, final reward).
    pub fn paper() -> Self {
        Self {
            max_loops: 12,
            tile_candidates: vec![0, 1, 4, 8, 16, 32, 64, 128],
            max_operands: 14,
            max_rank: 12,
            max_schedule_len: 5,
            interchange_mode: InterchangeMode::LevelPointers,
            reward_mode: RewardMode::Final,
            action_space_mode: ActionSpaceMode::MultiDiscrete,
            noise_seed: None,
        }
    }

    /// A scaled-down configuration for fast unit tests and benchmarks
    /// (N=4, M=5, L=4, D=4, τ=4).
    pub fn small() -> Self {
        Self {
            max_loops: 4,
            tile_candidates: vec![0, 4, 16, 32, 64],
            max_operands: 4,
            max_rank: 4,
            max_schedule_len: 4,
            interchange_mode: InterchangeMode::LevelPointers,
            reward_mode: RewardMode::Final,
            action_space_mode: ActionSpaceMode::MultiDiscrete,
            noise_seed: None,
        }
    }

    /// Number of candidate tile sizes `M`.
    pub fn num_tile_candidates(&self) -> usize {
        self.tile_candidates.len()
    }

    /// Number of enumerated interchange candidates, `3N - 6` (clamped at 1).
    pub fn num_enumerated_interchanges(&self) -> usize {
        (3 * self.max_loops).saturating_sub(6).max(1)
    }

    /// Length of the per-operation feature vector produced by the feature
    /// extractor with this configuration.
    pub fn feature_len(&self) -> usize {
        // operation-type one-hot
        6
        // loop upper bounds + iterator-type flags
        + 2 * self.max_loops
        // vectorization pre-condition flag
        + 1
        // access matrices: L operands x D rows x N columns
        + self.max_operands * self.max_rank * self.max_loops
        // arithmetic operation counts
        + 5
        // action history: tiled (tau x N x M) + interchange (tau x N x N)
        + self.max_schedule_len * self.max_loops * self.num_tile_candidates()
        + self.max_schedule_len * self.max_loops * self.max_loops
    }

    /// Validates internal consistency without panicking, returning a
    /// human-readable description of the first problem found. Request
    /// admission uses this so a malformed per-request configuration is
    /// rejected as a response error instead of killing the serving process;
    /// [`EnvConfig::validate`] is the panicking wrapper construction paths
    /// keep using.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.tile_candidates.is_empty() {
            return Err("tile candidate list must not be empty".to_string());
        }
        if self.tile_candidates[0] != 0 {
            return Err(format!(
                "tile candidate 0 must be `no tiling` (got {})",
                self.tile_candidates[0]
            ));
        }
        if self.max_loops < 1 {
            return Err("at least one loop level is required".to_string());
        }
        if self.max_schedule_len < 1 {
            return Err("schedule length must be >= 1".to_string());
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if [`EnvConfig::try_validate`] finds a problem (empty tile
    /// candidate list, missing leading 0 tile, zero loops or schedule
    /// length).
    pub fn validate(&self) {
        if let Err(problem) = self.try_validate() {
            panic!("invalid EnvConfig: {problem}");
        }
    }
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_paper() {
        let c = EnvConfig::paper();
        c.validate();
        assert_eq!(c.max_loops, 12);
        assert_eq!(c.num_tile_candidates(), 8);
        assert_eq!(c.max_operands, 14);
        assert_eq!(c.max_rank, 12);
        assert_eq!(c.max_schedule_len, 5);
        assert_eq!(c.num_enumerated_interchanges(), 30);
        assert_eq!(c.interchange_mode, InterchangeMode::LevelPointers);
        assert_eq!(c.reward_mode, RewardMode::Final);
    }

    #[test]
    fn feature_len_formula() {
        let c = EnvConfig::small();
        c.validate();
        let expected = 6 + 2 * 4 + 1 + 4 * 4 * 4 + 5 + 4 * 4 * 5 + 4 * 4 * 4;
        assert_eq!(c.feature_len(), expected);
        // The paper-sized representation is around 3.3k features.
        assert!(EnvConfig::paper().feature_len() > 3000);
    }

    #[test]
    #[should_panic(expected = "no tiling")]
    fn validate_rejects_missing_zero_tile() {
        let mut c = EnvConfig::small();
        c.tile_candidates = vec![4, 8];
        c.validate();
    }

    #[test]
    fn try_validate_reports_instead_of_panicking() {
        assert_eq!(EnvConfig::small().try_validate(), Ok(()));
        let mut c = EnvConfig::small();
        c.tile_candidates = vec![4, 8];
        assert!(c.try_validate().unwrap_err().contains("no tiling"));
        c.tile_candidates = Vec::new();
        assert!(c.try_validate().unwrap_err().contains("empty"));
        let mut c = EnvConfig::small();
        c.max_loops = 0;
        assert!(c.try_validate().unwrap_err().contains("loop level"));
        let mut c = EnvConfig::small();
        c.max_schedule_len = 0;
        assert!(c.try_validate().unwrap_err().contains("schedule length"));
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(EnvConfig::default(), EnvConfig::paper());
    }
}
