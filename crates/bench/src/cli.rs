//! Shared command-line parsing for the `exp_*` binaries.
//!
//! Every binary historically hand-rolled `args.iter().any(|a| a == "--smoke")`
//! scans, which silently accepted unknown arguments — a typo'd `--smokey`
//! ran the full-scale experiment, and `--json` on a binary without a JSON
//! report printed nothing anyone asked for. This parser is strict: exactly
//! the flags a binary declares in [`Accepts`] are recognized and anything
//! else aborts with a usage line and exit code 2.

use std::path::PathBuf;

use crate::ExperimentScale;

/// Which optional flags a binary accepts. `--smoke` is always accepted;
/// the rest are opt-in per binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accepts {
    /// `--json`: print the machine-readable report instead of text.
    pub json: bool,
    /// `--trace <path>`: record a structured service trace and export it
    /// as Chrome trace-event JSON to `<path>`.
    pub trace: bool,
}

/// Parsed command line of an `exp_*` binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpArgs {
    /// Run at [`ExperimentScale::smoke`] regardless of `MLIR_RL_SCALE`.
    pub smoke: bool,
    /// Print the machine-readable JSON report instead of text.
    pub json: bool,
    /// Write a Chrome trace-event JSON trace to this path.
    pub trace: Option<PathBuf>,
}

impl ExpArgs {
    /// The experiment scale the flags select: `--smoke` wins, otherwise
    /// the `MLIR_RL_SCALE` environment variable decides.
    pub fn scale(&self) -> ExperimentScale {
        if self.smoke {
            ExperimentScale::smoke()
        } else {
            ExperimentScale::from_env()
        }
    }
}

/// Parses the process arguments. An unrecognized argument (or a missing
/// `--trace` path) prints the problem and a usage line to stderr and
/// exits with status 2.
pub fn parse(bin: &str, accepts: Accepts) -> ExpArgs {
    match try_parse(std::env::args().skip(1), accepts) {
        Ok(args) => args,
        Err(problem) => {
            let mut usage = format!("usage: {bin} [--smoke]");
            if accepts.json {
                usage.push_str(" [--json]");
            }
            if accepts.trace {
                usage.push_str(" [--trace <path>]");
            }
            eprintln!("{bin}: {problem}");
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}

/// The testable engine under [`parse`]: takes the argument list (without
/// the program name) and the binary's accepted flags.
pub fn try_parse(
    args: impl IntoIterator<Item = String>,
    accepts: Accepts,
) -> Result<ExpArgs, String> {
    let mut out = ExpArgs::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--json" if accepts.json => out.json = true,
            "--trace" if accepts.trace => {
                let path = iter
                    .next()
                    .ok_or_else(|| "--trace requires a path argument".to_string())?;
                out.trace = Some(PathBuf::from(path));
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(out)
}

/// Worker count from `MLIR_RL_WORKERS`, defaulting to the machine's
/// available parallelism, always at least 1.
pub fn workers_from_env() -> usize {
    std::env::var("MLIR_RL_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(mlir_rl_agent::default_rollout_workers)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn accepts_declared_flags_in_any_order() {
        let accepts = Accepts {
            json: true,
            trace: true,
        };
        let parsed = try_parse(
            args(&["--json", "--trace", "/tmp/t.json", "--smoke"]),
            accepts,
        )
        .expect("all flags declared");
        assert!(parsed.smoke && parsed.json);
        assert_eq!(parsed.trace, Some(PathBuf::from("/tmp/t.json")));
    }

    #[test]
    fn rejects_unknown_and_undeclared_flags() {
        let none = Accepts::default();
        assert!(try_parse(args(&["--smokey"]), none).is_err());
        // `--json` exists on other binaries but is not declared here, so
        // it must be rejected rather than silently ignored.
        assert!(try_parse(args(&["--json"]), none).is_err());
        assert!(try_parse(
            args(&["--trace", "t.json"]),
            Accepts {
                json: true,
                trace: false
            }
        )
        .is_err());
    }

    #[test]
    fn trace_requires_a_path() {
        let accepts = Accepts {
            json: false,
            trace: true,
        };
        assert!(try_parse(args(&["--trace"]), accepts).is_err());
    }

    #[test]
    fn empty_argv_is_the_default() {
        assert_eq!(
            try_parse(args(&[]), Accepts::default()).expect("empty is fine"),
            ExpArgs::default()
        );
    }
}
