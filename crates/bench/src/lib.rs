//! # mlir-rl-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (Sec. VII), each returning a [`SpeedupTable`] or [`Figure`]
//! that the `exp_*` binaries print and the Criterion benches exercise.
//!
//! Every experiment is parameterized by an [`ExperimentScale`] so the same
//! code runs in seconds (`ExperimentScale::smoke`, used in tests), minutes
//! (`ExperimentScale::standard`, used by the binaries) or much longer
//! (`ExperimentScale::full`, approaching the paper's training budget).

#![warn(missing_docs)]

pub mod cli;

use std::fmt;
use std::time::{Duration, Instant};

use mlir_rl_agent::{
    collect_rollouts, FlatPolicyNetwork, PolicyHyperparams, PpoConfig, PpoTrainer, ValueNetwork,
};
use mlir_rl_baselines::{
    speedup_over_mlir, Baseline, HalideRl, MullapudiAutoscheduler, VendorLibrary, VendorMode,
};
use mlir_rl_core::report::json;
use mlir_rl_core::{
    wait_all, Figure, MlirRlOptimizer, OptimizationRequest, OptimizationResponse,
    OptimizationService, OptimizerConfig, ResponseStatus, Series, ServiceConfig, ServiceMetrics,
    SpeedupTable,
};
use mlir_rl_costmodel::{median, CostModel, MachineModel};
use mlir_rl_env::{ActionSpaceMode, EnvConfig, InterchangeMode, OptimizationEnv, RewardMode};
use mlir_rl_ir::Module;
use mlir_rl_obs::{recorder_overhead_ns, TraceSnapshot};
use mlir_rl_search::{
    BaselineSearcher, BatchSearchReport, BeamSearch, GreedyPolicy, Mcts, MemberAggregate,
    Portfolio, RandomSearch, SearchDriver, SearchSpec, Searcher,
};
use mlir_rl_transforms::{flat_action_space_size, multi_discrete_decision_count};
use mlir_rl_workloads::{
    dl_ops, full_training_dataset, lqcd, models, DlOperator, LqcdApplication, NeuralNetwork,
};
use rand_chacha::ChaCha8Rng;

/// How much work each experiment does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// PPO iterations for experiments that train an agent.
    pub train_iterations: usize,
    /// Fraction of the paper-sized dataset to train on.
    pub dataset_scale: f64,
    /// Trajectories per PPO iteration.
    pub trajectories_per_iteration: usize,
    /// Hidden size of the policy/value networks.
    pub hidden_size: usize,
}

impl ExperimentScale {
    /// Seconds-scale configuration for unit tests.
    pub fn smoke() -> Self {
        Self {
            train_iterations: 2,
            dataset_scale: 0.005,
            trajectories_per_iteration: 3,
            hidden_size: 16,
        }
    }

    /// Minutes-scale configuration used by the `exp_*` binaries.
    pub fn standard() -> Self {
        Self {
            train_iterations: 12,
            dataset_scale: 0.02,
            trajectories_per_iteration: 12,
            hidden_size: 32,
        }
    }

    /// Closer to the paper's budget (hours).
    pub fn full() -> Self {
        Self {
            train_iterations: 200,
            dataset_scale: 1.0,
            trajectories_per_iteration: 64,
            hidden_size: 512,
        }
    }

    /// Reads the scale from the `MLIR_RL_SCALE` environment variable
    /// (`smoke`, `standard` or `full`), defaulting to `standard`.
    pub fn from_env() -> Self {
        match std::env::var("MLIR_RL_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            Ok("full") => Self::full(),
            _ => Self::standard(),
        }
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::standard()
    }
}

fn optimizer_config(env: EnvConfig, scale: &ExperimentScale, seed: u64) -> OptimizerConfig {
    OptimizerConfig {
        env,
        machine: MachineModel::xeon_e5_2680_v4(),
        hyper: PolicyHyperparams {
            hidden_size: scale.hidden_size,
            backbone_layers: 2,
        },
        ppo: PpoConfig {
            trajectories_per_iteration: scale.trajectories_per_iteration,
            minibatch_size: 16,
            update_epochs: 2,
            ..PpoConfig::paper()
        },
        seed,
    }
}

/// Environment configuration for the deep (up to 12-level) LQCD nests.
pub fn lqcd_env_config() -> EnvConfig {
    EnvConfig {
        max_loops: 12,
        tile_candidates: vec![0, 1, 4, 8, 16, 32, 64, 128],
        max_operands: 6,
        max_rank: 6,
        max_schedule_len: 5,
        interchange_mode: InterchangeMode::LevelPointers,
        reward_mode: RewardMode::Final,
        action_space_mode: ActionSpaceMode::MultiDiscrete,
        noise_seed: None,
    }
}

/// Trains an MLIR RL optimizer on the given dataset and returns it.
pub fn train_mlir_rl(
    env: EnvConfig,
    dataset: &[Module],
    scale: &ExperimentScale,
    seed: u64,
) -> MlirRlOptimizer {
    let mut opt = MlirRlOptimizer::new(optimizer_config(env, scale, seed));
    opt.train(dataset, scale.train_iterations);
    opt
}

// ---------------------------------------------------------------------------
// E1 — Fig. 5: speedups per DL operator family.
// ---------------------------------------------------------------------------

/// Reproduces Fig. 5: average speedup over the MLIR baseline per operator
/// family for MLIR RL, Halide RL, PyTorch and the PyTorch compiler.
pub fn fig5_operators(scale: &ExperimentScale) -> SpeedupTable {
    let machine = MachineModel::xeon_e5_2680_v4();
    let dataset = dl_ops::training_dataset(scale.dataset_scale, 11);
    let mut rl = train_mlir_rl(EnvConfig::small(), &dataset, scale, 1);

    let columns = vec![
        "MLIR RL".to_string(),
        "Halide RL".to_string(),
        "PyTorch".to_string(),
        "PyTorch compiler".to_string(),
    ];
    let mut table = SpeedupTable::new(
        "Fig. 5: speedups over MLIR baseline per DL operator",
        columns,
    );

    let halide_rl = HalideRl::new();
    let eager = VendorLibrary::new(VendorMode::Eager);
    let compiled = VendorLibrary::new(VendorMode::Compiled);

    for family in DlOperator::ALL {
        let shapes: Vec<Module> = dl_ops::evaluation_benchmark()
            .into_iter()
            .filter(|(k, _)| *k == family)
            .map(|(_, m)| m)
            .collect();
        let mut speedups = vec![Vec::new(); 4];
        for module in &shapes {
            speedups[0].push(rl.optimize(module).speedup);
            speedups[1].push(speedup_over_mlir(
                &halide_rl.optimize(module),
                module,
                &machine,
            ));
            speedups[2].push(speedup_over_mlir(&eager.optimize(module), module, &machine));
            speedups[3].push(speedup_over_mlir(
                &compiled.optimize(module),
                module,
                &machine,
            ));
        }
        let averages = speedups
            .iter()
            .map(|v| v.iter().sum::<f64>() / v.len().max(1) as f64)
            .collect();
        table.push_row(family.name(), averages);
    }
    table
}

// ---------------------------------------------------------------------------
// E2 — Table III: neural-network models.
// ---------------------------------------------------------------------------

/// Reproduces Table III: speedups over the MLIR baseline for ResNet-18,
/// MobileNetV2 and VGG under MLIR RL, PyTorch and the PyTorch compiler.
pub fn table3_models(scale: &ExperimentScale) -> SpeedupTable {
    let machine = MachineModel::xeon_e5_2680_v4();
    let dataset = full_training_dataset(scale.dataset_scale, 23);
    let mut rl = train_mlir_rl(EnvConfig::small(), &dataset, scale, 2);

    let columns = vec![
        "MLIR RL".to_string(),
        "PyTorch".to_string(),
        "PyTorch compiler".to_string(),
    ];
    let mut table = SpeedupTable::new("Table III: neural-network models", columns);
    let eager = VendorLibrary::new(VendorMode::Eager);
    let compiled = VendorLibrary::new(VendorMode::Compiled);
    for model in NeuralNetwork::ALL {
        let module = model.module();
        let rl_speedup = rl.optimize(&module).speedup;
        let eager_speedup = speedup_over_mlir(&eager.optimize(&module), &module, &machine);
        let compiled_speedup = speedup_over_mlir(&compiled.optimize(&module), &module, &machine);
        table.push_row(
            model.name(),
            vec![rl_speedup, eager_speedup, compiled_speedup],
        );
    }
    table
}

// ---------------------------------------------------------------------------
// E3 — Table IV: LQCD applications.
// ---------------------------------------------------------------------------

/// Reproduces Table IV: speedups over the MLIR baseline on the three LQCD
/// applications for MLIR RL and the Halide autoscheduler (Mullapudi).
pub fn table4_lqcd(scale: &ExperimentScale) -> SpeedupTable {
    let machine = MachineModel::xeon_e5_2680_v4();
    let dataset = lqcd::training_dataset(scale.dataset_scale, 31);
    let mut rl = train_mlir_rl(lqcd_env_config(), &dataset, scale, 3);

    let columns = vec!["MLIR RL".to_string(), "Mullapudi".to_string()];
    let mut table = SpeedupTable::new("Table IV: LQCD applications", columns);
    let mullapudi = MullapudiAutoscheduler::new();
    for app in LqcdApplication::ALL {
        let module = app.module();
        let rl_speedup = rl.optimize(&module).speedup;
        let mp_speedup = speedup_over_mlir(&mullapudi.optimize(&module), &module, &machine);
        table.push_row(
            format!("{} (S = {})", app.name(), app.input_size()),
            vec![rl_speedup, mp_speedup],
        );
    }
    table
}

// ---------------------------------------------------------------------------
// E4 — interchange ablation: level pointers vs enumerated candidates.
// ---------------------------------------------------------------------------

/// Reproduces the Sec. VII-D interchange ablation: two agents differing only
/// in the interchange formulation, trained identically and evaluated on the
/// DL-operator benchmark; reports the average speedup of each.
pub fn ablation_interchange(scale: &ExperimentScale) -> SpeedupTable {
    let dataset = dl_ops::training_dataset(scale.dataset_scale, 41);
    let eval: Vec<Module> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();

    let mut table = SpeedupTable::new(
        "Interchange ablation: average speedup over MLIR baseline",
        vec!["average speedup".to_string()],
    );
    for (name, mode) in [
        ("Level Pointers", InterchangeMode::LevelPointers),
        (
            "Enumerated Candidates",
            InterchangeMode::EnumeratedCandidates,
        ),
    ] {
        let mut env_config = EnvConfig::small();
        env_config.interchange_mode = mode;
        let mut opt = train_mlir_rl(env_config, &dataset, scale, 4);
        let speedups: Vec<f64> = eval.iter().map(|m| opt.optimize(m).speedup).collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        table.push_row(name, vec![avg]);
    }
    table
}

// ---------------------------------------------------------------------------
// E5 — Fig. 6: flat vs multi-discrete action space.
// ---------------------------------------------------------------------------

/// Reproduces Fig. 6: training-speedup curves of the flat and the
/// multi-discrete action-space formulations.
pub fn fig6_action_space(scale: &ExperimentScale) -> Figure {
    let env_config = EnvConfig::small();
    let dataset = dl_ops::training_dataset(scale.dataset_scale, 51);
    let machine = MachineModel::xeon_e5_2680_v4();
    let ppo = PpoConfig {
        trajectories_per_iteration: scale.trajectories_per_iteration,
        minibatch_size: 16,
        update_epochs: 2,
        ..PpoConfig::paper()
    };
    let hyper = PolicyHyperparams {
        hidden_size: scale.hidden_size,
        backbone_layers: 2,
    };

    let mut figure = Figure::new(
        "Fig. 6: flat vs multi-discrete action space",
        "training iteration",
        "geomean speedup over MLIR baseline",
    );

    // Multi-discrete agent.
    {
        let mut env = OptimizationEnv::new(env_config.clone(), CostModel::new(machine.clone()));
        let mut trainer = PpoTrainer::new(&env_config, hyper, ppo, 5);
        let mut series = Series::new("Multi-Discrete Action Space");
        for i in 0..scale.train_iterations {
            let stats = trainer.train_iteration(&mut env, &dataset);
            series.push(i as f64, stats.geomean_speedup);
        }
        figure.series.push(series);
    }

    // Flat agent.
    {
        use rand::SeedableRng;
        let mut env = OptimizationEnv::new(env_config.clone(), CostModel::new(machine));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let policy = FlatPolicyNetwork::new(env_config.clone(), hyper, &mut rng);
        let value = ValueNetwork::new(&env_config, hyper, &mut rng);
        let mut trainer = PpoTrainer::with_policy(policy, value, ppo, rng);
        let mut series = Series::new("Flat Action Space");
        for i in 0..scale.train_iterations {
            let stats = trainer.train_iteration(&mut env, &dataset);
            series.push(i as f64, stats.geomean_speedup);
        }
        figure.series.push(series);
    }
    figure
}

// ---------------------------------------------------------------------------
// E6 — Fig. 7: immediate vs final reward.
// ---------------------------------------------------------------------------

/// Reproduces Fig. 7: speedup over training iterations (right plot) and over
/// accumulated cost-model evaluations — the proxy for wall-clock training
/// time (left plot) — for the final-reward and immediate-reward agents.
pub fn fig7_reward_modes(scale: &ExperimentScale) -> (Figure, Figure) {
    let dataset = dl_ops::training_dataset(scale.dataset_scale, 61);
    let machine = MachineModel::xeon_e5_2680_v4();
    let hyper = PolicyHyperparams {
        hidden_size: scale.hidden_size,
        backbone_layers: 2,
    };
    let ppo = PpoConfig {
        trajectories_per_iteration: scale.trajectories_per_iteration,
        minibatch_size: 16,
        update_epochs: 2,
        ..PpoConfig::paper()
    };

    let mut by_iteration = Figure::new(
        "Fig. 7 (right): reward modes over iterations",
        "training iteration",
        "geomean speedup",
    );
    let mut by_time = Figure::new(
        "Fig. 7 (left): reward modes over training cost",
        "cumulative code executions (cost-model evaluations)",
        "geomean speedup",
    );

    for (name, mode) in [
        ("Final Reward", RewardMode::Final),
        ("Immediate Reward", RewardMode::Immediate),
    ] {
        let mut env_config = EnvConfig::small();
        env_config.reward_mode = mode;
        let mut env = OptimizationEnv::new(env_config.clone(), CostModel::new(machine.clone()));
        let mut trainer = PpoTrainer::new(&env_config, hyper, ppo, 7);
        let mut iteration_series = Series::new(name);
        let mut time_series = Series::new(name);
        for i in 0..scale.train_iterations {
            let stats = trainer.train_iteration(&mut env, &dataset);
            iteration_series.push(i as f64, stats.geomean_speedup);
            time_series.push(stats.cumulative_evaluations as f64, stats.geomean_speedup);
        }
        by_iteration.series.push(iteration_series);
        by_time.series.push(time_series);
    }
    (by_iteration, by_time)
}

// ---------------------------------------------------------------------------
// E7 — Sec. VII-B: compilation-pass overhead.
// ---------------------------------------------------------------------------

/// Reproduces the Sec. VII-B overhead measurements: average policy-inference
/// time and transformation-application time per code sample, for single DL
/// operators and for the LQCD applications. Returns `(label, seconds)` rows.
pub fn overhead(scale: &ExperimentScale) -> Vec<(String, f64)> {
    let mut rows = Vec::new();

    // Policy inference time per code sample (DL operators + LQCD kernels).
    let mut rl = MlirRlOptimizer::new(optimizer_config(
        EnvConfig::small(),
        &ExperimentScale {
            train_iterations: 0,
            ..*scale
        },
        8,
    ));
    let operators: Vec<Module> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .take(6)
        .collect();
    let start = Instant::now();
    for module in &operators {
        let _ = rl.optimize(module);
    }
    let per_sample = start.elapsed().as_secs_f64() / operators.len() as f64;
    rows.push((
        "policy inference + scheduling, DL operator (s/sample)".to_string(),
        per_sample,
    ));

    // Transformation-application time: applying an expert schedule to every
    // operation of a module (DL operator vs LQCD application).
    let machine = MachineModel::xeon_e5_2680_v4();
    let vendor = VendorLibrary::new(VendorMode::Compiled);
    let dl_module = dl_ops::matmul_module(512, 512, 512);
    let start = Instant::now();
    for _ in 0..10 {
        let _ = vendor.optimize(&dl_module);
    }
    rows.push((
        "transformation application, DL operator (s/sample)".to_string(),
        start.elapsed().as_secs_f64() / 10.0,
    ));

    let lqcd_module = LqcdApplication::HexaquarkHexaquark.module();
    let start = Instant::now();
    let result = vendor.optimize(&lqcd_module);
    rows.push((
        "transformation application, LQCD application (s/sample)".to_string(),
        start.elapsed().as_secs_f64(),
    ));
    // Keep the result alive so the optimizer work is not optimized away.
    let _ = mlir_rl_baselines::evaluate(&result, &machine);
    rows
}

// ---------------------------------------------------------------------------
// E10 — rollout throughput: serial vs parallel collection + cache hit-rate.
// ---------------------------------------------------------------------------

/// Result of the rollout-throughput experiment: how fast the rollout engine
/// collects episodes serially vs fanned out over worker threads, and how
/// much work the schedule-keyed cost-model cache absorbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutThroughput {
    /// Episodes collected per configuration.
    pub episodes: usize,
    /// Environment steps in one collection batch.
    pub steps: usize,
    /// Steps per second with one worker (serial collection).
    pub serial_steps_per_sec: f64,
    /// Steps per second with `workers` workers.
    pub parallel_steps_per_sec: f64,
    /// Worker threads used for the parallel measurement.
    pub workers: usize,
    /// `parallel_steps_per_sec / serial_steps_per_sec`.
    pub speedup: f64,
    /// Cost-model cache hit-rate observed during the serial collection.
    pub cache_hit_rate: f64,
}

impl fmt::Display for RolloutThroughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== rollout throughput ==")?;
        writeln!(f, "episodes                  {:>12}", self.episodes)?;
        writeln!(f, "steps per batch           {:>12}", self.steps)?;
        writeln!(
            f,
            "serial steps/sec          {:>12.1}",
            self.serial_steps_per_sec
        )?;
        writeln!(
            f,
            "parallel steps/sec (x{:<2}) {:>13.1}",
            self.workers, self.parallel_steps_per_sec
        )?;
        writeln!(f, "parallel speedup          {:>12.2}x", self.speedup)?;
        writeln!(
            f,
            "cost-model cache hit-rate {:>11.1}%",
            self.cache_hit_rate * 100.0
        )
    }
}

impl RolloutThroughput {
    /// Machine-readable record of the run (one JSON object) for
    /// `BENCH_*.json` trajectories.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json::field(
            &mut out,
            1,
            "experiment",
            json::string("exp_rollout_throughput"),
        );
        out.push_str(",\n");
        json::field(&mut out, 1, "episodes", json::number(self.episodes as f64));
        out.push_str(",\n");
        json::field(&mut out, 1, "steps", json::number(self.steps as f64));
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "serial_steps_per_sec",
            json::number(self.serial_steps_per_sec),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "parallel_steps_per_sec",
            json::number(self.parallel_steps_per_sec),
        );
        out.push_str(",\n");
        json::field(&mut out, 1, "workers", json::number(self.workers as f64));
        out.push_str(",\n");
        json::field(&mut out, 1, "speedup", json::number(self.speedup));
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "cache_hit_rate",
            json::number(self.cache_hit_rate),
        );
        out.push_str("\n}");
        out
    }
}

/// Measures rollout-collection throughput (steps/sec) for serial and
/// parallel collection on the seed DL-operator workloads, plus the
/// cost-model cache hit-rate.
///
/// Both configurations share the same base seed, so they collect
/// bit-for-bit identical trajectories; the comparison is pure engine
/// overhead/parallelism. On a single-core machine the parallel figure is
/// bounded by the hardware — the speedup scales with available cores.
pub fn rollout_throughput(scale: &ExperimentScale, workers: usize) -> RolloutThroughput {
    let env_config = EnvConfig::small();
    let dataset = dl_ops::training_dataset(scale.dataset_scale.max(0.005), 71);
    let episodes = (scale.trajectories_per_iteration * 4).max(8);
    let modules: Vec<&Module> = (0..episodes).map(|i| &dataset[i % dataset.len()]).collect();
    let hyper = PolicyHyperparams {
        hidden_size: scale.hidden_size,
        backbone_layers: 2,
    };
    let base_seed = 2024;

    let run = |workers: usize| {
        let mut env = OptimizationEnv::new(
            env_config.clone(),
            CostModel::new(MachineModel::xeon_e5_2680_v4()),
        );
        let mut trainer = PpoTrainer::new(&env_config, hyper, PpoConfig::paper(), 17);
        let start = Instant::now();
        let batch = collect_rollouts(
            &mut env,
            &modules,
            &mut trainer.policy,
            &mut trainer.value,
            false,
            base_seed,
            workers,
        );
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        (batch.total_steps() as f64 / elapsed, batch)
    };

    let (serial_sps, serial_batch) = run(1);
    let (parallel_sps, _parallel_batch) = run(workers.max(1));

    RolloutThroughput {
        episodes,
        steps: serial_batch.total_steps(),
        serial_steps_per_sec: serial_sps,
        parallel_steps_per_sec: parallel_sps,
        workers: workers.max(1),
        speedup: parallel_sps / serial_sps.max(1e-9),
        cache_hit_rate: serial_batch.cache_hit_rate(),
    }
}

// ---------------------------------------------------------------------------
// E11 — exp_search: speedup-vs-budget per searcher on the standard
// workloads, through the batch SearchDriver with one shared eval cache.
// ---------------------------------------------------------------------------

/// Budget and cache accounting of one searcher over the whole workload
/// batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SearcherBudgetSummary {
    /// Searcher display name.
    pub name: String,
    /// Geometric-mean speedup over the MLIR baseline across the workloads.
    pub geomean_speedup: f64,
    /// Cost-model evaluations actually performed (the eval budget spent).
    pub evaluations: usize,
    /// Total cost-model lookups (evaluations + cache hits).
    pub total_lookups: usize,
    /// Hit-rate of the batch-wide shared evaluation cache.
    pub shared_cache_hit_rate: f64,
    /// Environment steps across every branch of every search.
    pub nodes_expanded: usize,
    /// Wall-clock seconds for the batch.
    pub wall_s: f64,
}

/// The `exp_search` report: per-workload speedups per searcher plus each
/// searcher's evaluation budget and shared-cache accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Rows: workloads; columns: searchers; values: speedup over the MLIR
    /// baseline.
    pub table: SpeedupTable,
    /// One budget summary per searcher, in column order.
    pub summaries: Vec<SearcherBudgetSummary>,
    /// Worker threads the driver fanned each batch over.
    pub workers: usize,
}

impl fmt::Display for SearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.table)?;
        writeln!(f, "== eval budgets (driver workers = {}) ==", self.workers)?;
        for s in &self.summaries {
            writeln!(
                f,
                "{:<24} geomean {:>7.2}x  evals {:>8}  lookups {:>8}  shared-cache hit-rate {:>5.1}%  nodes {:>8}  wall {:>7.2}s",
                s.name,
                s.geomean_speedup,
                s.evaluations,
                s.total_lookups,
                s.shared_cache_hit_rate * 100.0,
                s.nodes_expanded,
                s.wall_s,
            )?;
        }
        Ok(())
    }
}

/// Condenses one batch report into a [`SearcherBudgetSummary`] row.
fn budget_summary(name: String, report: &BatchSearchReport) -> SearcherBudgetSummary {
    SearcherBudgetSummary {
        name,
        geomean_speedup: report.geomean_speedup(),
        evaluations: report.total_evaluations(),
        total_lookups: report.outcomes.iter().map(|o| o.total_lookups()).sum(),
        shared_cache_hit_rate: report.shared_cache_hit_rate(),
        nodes_expanded: report.total_nodes_expanded(),
        wall_s: report.wall_s,
    }
}

/// Runs every searcher (greedy, beam-4, MCTS, random, plus the vendor and
/// Mullapudi comparison systems through the [`BaselineSearcher`] adapter)
/// over the Sec. VII-A-2 DL-operator evaluation workloads with a policy
/// trained at the given scale, batched through the parallel
/// [`mlir_rl_search::SearchDriver`]. MCTS and random budgets scale with
/// `scale.trajectories_per_iteration`.
///
/// Beam search is seeded with the greedy trajectory, so its column
/// dominates greedy's on every workload — the acceptance invariant the
/// smoke test asserts.
pub fn search_speedups(scale: &ExperimentScale, workers: usize) -> SearchReport {
    use mlir_rl_agent::PolicyNetwork;

    let dataset = dl_ops::training_dataset(scale.dataset_scale, 81);
    let mut rl = train_mlir_rl(EnvConfig::small(), &dataset, scale, 9);
    let workloads: Vec<Module> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();

    let budget = scale.trajectories_per_iteration;
    let searchers: Vec<Box<dyn Searcher<PolicyNetwork>>> = vec![
        Box::new(GreedyPolicy),
        Box::new(BeamSearch::new(4)),
        Box::new(Mcts::new((budget * 4).max(8))),
        Box::new(RandomSearch::new((budget * 2).max(4))),
        Box::new(BaselineSearcher::new(VendorLibrary::new(
            VendorMode::Compiled,
        ))),
        Box::new(BaselineSearcher::new(MullapudiAutoscheduler::new())),
    ];

    let columns: Vec<String> = searchers.iter().map(|s| s.name()).collect();
    let mut table = SpeedupTable::new(
        "exp_search: speedup over MLIR baseline, per searcher",
        columns,
    );
    let mut summaries = Vec::new();
    let mut per_module: Vec<Vec<f64>> = vec![Vec::new(); workloads.len()];
    for searcher in &searchers {
        let report = rl.optimize_batch(&workloads, searcher.as_ref(), workers);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            per_module[i].push(outcome.speedup);
        }
        summaries.push(budget_summary(searcher.name(), &report));
    }
    for (module, speedups) in workloads.iter().zip(per_module) {
        table.push_row(module.name(), speedups);
    }
    SearchReport {
        table,
        summaries,
        workers: workers.max(1),
    }
}

// ---------------------------------------------------------------------------
// E13 — exp_portfolio: portfolio search (round-robin + racing) vs the
// single-searcher baselines, on one shared eval cache per batch.
// ---------------------------------------------------------------------------

/// The `exp_portfolio` report: per-workload speedups for each roster member
/// run independently and for the portfolio (round-robin and racing), the
/// eval budgets showing the shared-cache warmth the portfolio gains, the
/// per-member win/spend attribution, and the racing determinism check.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioReport {
    /// Rows: workloads; columns: independent members, then the two
    /// portfolio modes; values: speedup over the MLIR baseline.
    pub table: SpeedupTable,
    /// Budget summary of each member run independently (fresh cache each).
    pub singles: Vec<SearcherBudgetSummary>,
    /// Budget summary of the round-robin portfolio batch.
    pub round_robin: SearcherBudgetSummary,
    /// Budget summary of the racing portfolio batch. Its figures cover the
    /// winner prefix of each module's roster; the prefix's *total lookups*
    /// are deterministic, but the evaluations/cache-hits split within it
    /// can shift with thread interleaving (loser threads may pre-score a
    /// schedule a prefix member was about to evaluate). The shared-cache
    /// counters additionally include the losers' own spend.
    pub racing: SearcherBudgetSummary,
    /// Per-member attribution of the round-robin batch (wins, spend).
    pub members: Vec<MemberAggregate>,
    /// Per-member attribution of the racing batch (wins, targets, stops).
    pub racing_members: Vec<MemberAggregate>,
    /// Total estimator runs of all independent member runs together (the
    /// spend the portfolio's shared warmth is measured against).
    pub singles_evaluations: usize,
    /// Best shared-cache hit-rate any independent member achieved.
    pub best_single_hit_rate: f64,
    /// Hit-rate of the independent member runs **combined** (all their
    /// lookups, no warmth shared between members) — the apples-to-apples
    /// baseline the portfolio's cross-member warmth is measured against:
    /// the portfolio performs the same lookups and must hit strictly more.
    pub singles_hit_rate: f64,
    /// Modules on which the round-robin portfolio's speedup equals the
    /// best of the independently-run members (expected: all of them).
    pub best_of_members_matches: usize,
    /// Number of workload modules.
    pub modules: usize,
    /// The racing target speedup (median of the per-module best-of-members,
    /// so roughly half the modules can end their race early).
    pub racing_target: f64,
    /// Modules whose racing winner reached the target.
    pub racing_reached_target: usize,
    /// Mean cost-model lookups the racing winner spent per module — the
    /// evals-to-target figure when the target was reached.
    pub racing_mean_winner_lookups: f64,
    /// Whether the racing batch produced bit-identical outcomes with 1, 2
    /// and 4 driver workers (the determinism acceptance check).
    pub racing_worker_invariant: bool,
    /// Worker threads the driver fanned each batch over.
    pub workers: usize,
}

impl fmt::Display for PortfolioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.table)?;
        writeln!(f, "== eval budgets (driver workers = {}) ==", self.workers)?;
        for s in self.singles.iter().chain([&self.round_robin, &self.racing]) {
            writeln!(
                f,
                "{:<24} geomean {:>7.2}x  evals {:>8}  lookups {:>8}  shared-cache hit-rate {:>5.1}%  nodes {:>8}  wall {:>7.2}s",
                s.name,
                s.geomean_speedup,
                s.evaluations,
                s.total_lookups,
                s.shared_cache_hit_rate * 100.0,
                s.nodes_expanded,
                s.wall_s,
            )?;
        }
        writeln!(f, "== member attribution (round-robin | racing) ==")?;
        for (rr, race) in self.members.iter().zip(&self.racing_members) {
            writeln!(
                f,
                "{:<24} wins {:>2} | {:>2}  reached-target {:>2}  stopped {:>2}  evals {:>8} | {:>8}",
                rr.member,
                rr.wins,
                race.wins,
                race.reached_target,
                race.stopped,
                rr.evaluations,
                race.evaluations,
            )?;
        }
        writeln!(
            f,
            "portfolio best-of-members   {}/{} modules",
            self.best_of_members_matches, self.modules
        )?;
        writeln!(
            f,
            "portfolio evals vs singles  {} vs {} ({:+.1}%)",
            self.round_robin.evaluations,
            self.singles_evaluations,
            100.0
                * (self.round_robin.evaluations as f64 / self.singles_evaluations.max(1) as f64
                    - 1.0),
        )?;
        writeln!(
            f,
            "shared-cache hit-rate       portfolio {:.1}% vs singles combined {:.1}% (best single {:.1}%)",
            self.round_robin.shared_cache_hit_rate * 100.0,
            self.singles_hit_rate * 100.0,
            self.best_single_hit_rate * 100.0,
        )?;
        writeln!(
            f,
            "racing target {:.2}x          reached on {}/{} modules, mean winner lookups {:.0}",
            self.racing_target,
            self.racing_reached_target,
            self.modules,
            self.racing_mean_winner_lookups,
        )?;
        writeln!(
            f,
            "racing worker-invariance    {}",
            if self.racing_worker_invariant {
                "bit-identical across 1/2/4 workers"
            } else {
                "DIVERGED"
            }
        )
    }
}

impl PortfolioReport {
    /// Machine-readable record of the run (one JSON object) for
    /// `BENCH_*.json` trajectories, emitted by `exp_portfolio --json`.
    pub fn to_json(&self) -> String {
        let summary_json = |s: &SearcherBudgetSummary| {
            let mut out = String::from("{");
            json::field(&mut out, 0, "name", json::string(&s.name));
            for (key, value) in [
                ("geomean_speedup", s.geomean_speedup),
                ("evaluations", s.evaluations as f64),
                ("total_lookups", s.total_lookups as f64),
                ("shared_cache_hit_rate", s.shared_cache_hit_rate),
                ("nodes_expanded", s.nodes_expanded as f64),
                ("wall_s", s.wall_s),
            ] {
                out.push_str(", ");
                json::field(&mut out, 0, key, json::number(value));
            }
            out.push('}');
            out
        };
        let member_json = |m: &MemberAggregate| {
            let mut out = String::from("{");
            json::field(&mut out, 0, "member", json::string(&m.member));
            for (key, value) in [
                ("rank", m.rank as f64),
                ("wins", m.wins as f64),
                ("reached_target", m.reached_target as f64),
                ("stopped", m.stopped as f64),
                ("skipped", m.skipped as f64),
                ("evaluations", m.evaluations as f64),
                ("cache_hits", m.cache_hits as f64),
            ] {
                out.push_str(", ");
                json::field(&mut out, 0, key, json::number(value));
            }
            out.push('}');
            out
        };

        let mut out = String::from("{\n");
        json::field(&mut out, 1, "experiment", json::string("exp_portfolio"));
        out.push_str(",\n");
        json::field(&mut out, 1, "workers", json::number(self.workers as f64));
        out.push_str(",\n");
        json::field(&mut out, 1, "table", self.table.to_json());
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "singles",
            json::array(self.singles.iter().map(summary_json)),
        );
        out.push_str(",\n");
        json::field(&mut out, 1, "round_robin", summary_json(&self.round_robin));
        out.push_str(",\n");
        json::field(&mut out, 1, "racing", summary_json(&self.racing));
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "members",
            json::array(self.members.iter().map(member_json)),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "racing_members",
            json::array(self.racing_members.iter().map(member_json)),
        );
        out.push_str(",\n");
        for (key, value) in [
            ("singles_evaluations", self.singles_evaluations as f64),
            ("singles_hit_rate", self.singles_hit_rate),
            ("best_single_hit_rate", self.best_single_hit_rate),
            (
                "best_of_members_matches",
                self.best_of_members_matches as f64,
            ),
            ("modules", self.modules as f64),
            ("racing_target", self.racing_target),
            ("racing_reached_target", self.racing_reached_target as f64),
            (
                "racing_mean_winner_lookups",
                self.racing_mean_winner_lookups,
            ),
        ] {
            json::field(&mut out, 1, key, json::number(value));
            out.push_str(",\n");
        }
        json::field(
            &mut out,
            1,
            "racing_worker_invariant",
            self.racing_worker_invariant.to_string(),
        );
        out.push_str("\n}");
        out
    }
}

/// Runs the portfolio experiment: each roster member (greedy, beam-4,
/// progressively-widened MCTS, random) independently through the
/// [`SearchDriver`] on a fresh shared cache, then the same roster as a
/// round-robin [`Portfolio`] (one cache warming every member and module)
/// and as a racing portfolio targeting the median best-of-members speedup.
/// All runs use the same base seed, so the round-robin portfolio's
/// per-module result is exactly the best of the members' independent
/// results — for less total estimator spend, which is the point.
pub fn portfolio_speedups(scale: &ExperimentScale, workers: usize) -> PortfolioReport {
    use mlir_rl_agent::PolicyNetwork;

    let dataset = dl_ops::training_dataset(scale.dataset_scale, 91);
    let rl = train_mlir_rl(EnvConfig::small(), &dataset, scale, 13);
    let workloads: Vec<Module> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();
    let fresh_env = || {
        OptimizationEnv::new(
            EnvConfig::small(),
            CostModel::new(MachineModel::xeon_e5_2680_v4()),
        )
    };
    let base_seed = 77;
    let driver = SearchDriver::new(workers).with_seed(base_seed);

    // One definition of the roster, used for the independent-singles runs
    // AND both portfolio modes, so the best-of-members comparison can
    // never drift apart from what the portfolio actually runs.
    let budget = scale.trajectories_per_iteration;
    let make_members = || -> Vec<Box<dyn Searcher<PolicyNetwork>>> {
        vec![
            Box::new(GreedyPolicy),
            Box::new(BeamSearch::new(4)),
            Box::new(
                Mcts::new((budget * 4).max(8))
                    .with_branch(4)
                    .with_progressive_widening(1.0, 0.6),
            ),
            Box::new(RandomSearch::new((budget * 2).max(4))),
        ]
    };
    let members = make_members();
    let roster = |mode: Portfolio<PolicyNetwork>| {
        make_members()
            .into_iter()
            .fold(mode, Portfolio::with_boxed_member)
    };

    // --- each member independently, fresh cache each -----------------
    let mut singles = Vec::new();
    let mut single_reports = Vec::new();
    for member in &members {
        let report = driver.run(&fresh_env(), rl.policy(), member.as_ref(), &workloads);
        singles.push(budget_summary(member.name(), &report));
        single_reports.push(report);
    }
    let singles_evaluations: usize = singles.iter().map(|s| s.evaluations).sum();
    let best_single_hit_rate = singles
        .iter()
        .map(|s| s.shared_cache_hit_rate)
        .fold(0.0, f64::max);
    let singles_lookups: usize = singles.iter().map(|s| s.total_lookups).sum();
    let singles_hit_rate =
        (singles_lookups - singles_evaluations) as f64 / singles_lookups.max(1) as f64;
    let best_of_singles: Vec<f64> = (0..workloads.len())
        .map(|i| {
            single_reports
                .iter()
                .map(|r| r.outcomes[i].speedup)
                .fold(0.0, f64::max)
        })
        .collect();

    // --- the same roster as a round-robin portfolio ------------------
    let rr = roster(Portfolio::round_robin());
    let rr_report = driver.run_portfolio(&fresh_env(), rl.policy(), &rr, &workloads);
    let best_of_members_matches = rr_report
        .outcomes
        .iter()
        .zip(&best_of_singles)
        .filter(|(o, best)| (o.speedup - **best).abs() <= 1e-9 * best.max(1.0))
        .count();

    // --- racing, targeting the median best-of-members ----------------
    let racing_target = median(&best_of_singles).unwrap_or(1.0);
    let race = roster(Portfolio::racing(racing_target));
    let race_report = driver.run_portfolio(&fresh_env(), rl.policy(), &race, &workloads);
    let racing_reached_target = race_report
        .outcomes
        .iter()
        .filter(|o| o.members.iter().any(|m| m.winner && m.reached_target))
        .count();
    let winner_lookups: Vec<usize> = race_report
        .outcomes
        .iter()
        .flat_map(|o| o.members.iter().filter(|m| m.winner))
        .map(|m| m.total_lookups())
        .collect();
    let racing_mean_winner_lookups =
        winner_lookups.iter().sum::<usize>() as f64 / winner_lookups.len().max(1) as f64;

    // --- the determinism acceptance check: 1/2/4 driver workers ------
    let fields = |report: &BatchSearchReport| -> Vec<_> {
        report
            .outcomes
            .iter()
            .map(|o| {
                (
                    o.best_s.to_bits(),
                    o.speedup.to_bits(),
                    o.best_actions.clone(),
                    o.nodes_expanded,
                    o.total_lookups(),
                )
            })
            .collect()
    };
    let reference = fields(&race_report);
    let racing_worker_invariant = [1usize, 2, 4].iter().all(|w| {
        let report = SearchDriver::new(*w).with_seed(base_seed).run_portfolio(
            &fresh_env(),
            rl.policy(),
            &race,
            &workloads,
        );
        fields(&report) == reference
    });

    // --- the per-workload table --------------------------------------
    let mut columns: Vec<String> = members.iter().map(|m| m.name()).collect();
    columns.push(Searcher::<PolicyNetwork>::name(&rr));
    columns.push(Searcher::<PolicyNetwork>::name(&race));
    let mut table = SpeedupTable::new(
        "exp_portfolio: speedup over MLIR baseline, members vs portfolio",
        columns,
    );
    for (i, module) in workloads.iter().enumerate() {
        let mut row: Vec<f64> = single_reports
            .iter()
            .map(|r| r.outcomes[i].speedup)
            .collect();
        row.push(rr_report.outcomes[i].speedup);
        row.push(race_report.outcomes[i].speedup);
        table.push_row(module.name(), row);
    }

    PortfolioReport {
        table,
        singles,
        round_robin: budget_summary(Searcher::<PolicyNetwork>::name(&rr), &rr_report),
        racing: budget_summary(Searcher::<PolicyNetwork>::name(&race), &race_report),
        members: rr_report.member_attribution(),
        racing_members: race_report.member_attribution(),
        singles_evaluations,
        best_single_hit_rate,
        singles_hit_rate,
        best_of_members_matches,
        modules: workloads.len(),
        racing_target,
        racing_reached_target,
        racing_mean_winner_lookups,
        racing_worker_invariant,
        workers: workers.max(1),
    }
}

// ---------------------------------------------------------------------------
// E14 — exp_service: sustained request-stream serving through the
// OptimizationService: a warm persistent service (one cache amortized
// across every request) vs per-request cold services, plus the
// request-level determinism check (worker counts x submission orders).
// ---------------------------------------------------------------------------

/// Aggregates of one request stream run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStreamSummary {
    /// Stream label (`warm-service` / `batched-service` /
    /// `restored-service` / `tiny-cache-service` / `cold-per-request`).
    pub name: String,
    /// Requests served.
    pub requests: usize,
    /// Requests served per wall-clock second (including, for the cold
    /// stream, the per-request service construction that a persistent
    /// service amortizes away).
    pub requests_per_sec: f64,
    /// Wall-clock seconds for the whole stream.
    pub wall_s: f64,
    /// Geometric mean of the per-request speedups.
    pub geomean_speedup: f64,
    /// Estimator runs across the stream (cache misses).
    pub evaluations: usize,
    /// Total cost-model lookups across the stream.
    pub total_lookups: usize,
    /// Fraction of lookups served by cache.
    pub hit_rate: f64,
    /// Mean seconds a request waited in the queue.
    pub mean_queue_s: f64,
    /// Mean seconds a request's search ran.
    pub mean_service_s: f64,
}

impl ServiceStreamSummary {
    fn from_responses(name: &str, responses: &[OptimizationResponse], wall_s: f64) -> Self {
        let requests = responses.len();
        let evaluations: usize = responses.iter().map(|r| r.evaluations).sum();
        let total_lookups: usize = responses.iter().map(|r| r.total_lookups()).sum();
        let geomean_speedup = if requests == 0 {
            1.0
        } else {
            (responses
                .iter()
                .map(|r| r.speedup().max(1e-12).ln())
                .sum::<f64>()
                / requests as f64)
                .exp()
        };
        Self {
            name: name.to_string(),
            requests,
            requests_per_sec: requests as f64 / wall_s.max(1e-9),
            wall_s,
            geomean_speedup,
            evaluations,
            total_lookups,
            hit_rate: (total_lookups - evaluations) as f64 / total_lookups.max(1) as f64,
            mean_queue_s: responses.iter().map(|r| r.queue_s).sum::<f64>() / requests.max(1) as f64,
            mean_service_s: responses.iter().map(|r| r.service_s).sum::<f64>()
                / requests.max(1) as f64,
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::field(&mut out, 0, "name", json::string(&self.name));
        for (key, value) in [
            ("requests", self.requests as f64),
            ("requests_per_sec", self.requests_per_sec),
            ("wall_s", self.wall_s),
            ("geomean_speedup", self.geomean_speedup),
            ("evaluations", self.evaluations as f64),
            ("total_lookups", self.total_lookups as f64),
            ("hit_rate", self.hit_rate),
            ("mean_queue_s", self.mean_queue_s),
            ("mean_service_s", self.mean_service_s),
        ] {
            out.push_str(", ");
            json::field(&mut out, 0, key, json::number(value));
        }
        out.push('}');
        out
    }
}

/// The `exp_service` report: the sustained request stream served by one
/// warm persistent service vs per-request cold services, and the
/// request-level determinism check.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Distinct workload modules in the stream.
    pub modules: usize,
    /// Passes over the workloads (each pass cycles the searcher specs).
    pub rounds: usize,
    /// Worker threads of the warm service.
    pub workers: usize,
    /// Worker threads of the batched (aggregated-inference) service —
    /// at least 4 so cross-request coalescing has concurrency to pack.
    pub batched_workers: usize,
    /// The warm persistent-service stream.
    pub warm: ServiceStreamSummary,
    /// The warm stream re-served with cross-request inference batching
    /// ([`ServiceConfig::with_inference_batching`]).
    pub batched: ServiceStreamSummary,
    /// The warm stream re-served by a **fresh** service that restored the
    /// warm service's cache snapshot at startup
    /// ([`ServiceConfig::with_cache_snapshot`]) — the storage-tier
    /// restart: warmth survives the process.
    pub restored: ServiceStreamSummary,
    /// The warm stream re-served by a service with a deliberately tiny
    /// cache capacity ([`ServiceConfig::with_cache_capacity`]), forcing
    /// entry-wise eviction on every shard while responses stay
    /// bit-identical.
    pub tiny: ServiceStreamSummary,
    /// The cold per-request-service stream (fresh cache every request).
    pub cold: ServiceStreamSummary,
    /// Entries the restored service recovered from the snapshot file.
    pub restored_entries: u64,
    /// Whether every restored-service response fingerprint matched its
    /// warm counterpart bit for bit.
    pub restored_fingerprints_match: bool,
    /// Global cache capacity of the tiny-cache stream.
    pub tiny_capacity: usize,
    /// Entry-wise evictions the tiny-cache stream performed.
    pub tiny_cache_evictions: u64,
    /// Whether every tiny-cache response fingerprint matched its warm
    /// counterpart bit for bit — eviction is a memory lever, never a
    /// result lever.
    pub tiny_fingerprints_match: bool,
    /// Request statuses of the warm stream, as
    /// `(completed, stopped, skipped, rejected)`.
    pub statuses: (usize, usize, usize, usize),
    /// Whether response fingerprints were bit-identical across 1/2/4
    /// workers and two shuffled submission orders.
    pub determinism_invariant: bool,
    /// Mean observation rows per aggregator batch in the batched stream
    /// (> 1 means cross-request work actually shared forward passes).
    pub rows_per_batch: f64,
    /// Whether every batched response fingerprint matched its warm
    /// (unbatched) counterpart bit for bit.
    pub batched_fingerprints_match: bool,
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== exp_service: request-stream serving ({} modules x {} rounds, {} workers) ==",
            self.modules, self.rounds, self.workers
        )?;
        for s in [
            &self.warm,
            &self.batched,
            &self.restored,
            &self.tiny,
            &self.cold,
        ] {
            writeln!(
                f,
                "{:<18} {:>7.2} req/s  geomean {:>6.2}x  evals {:>8}  lookups {:>8}  hit-rate {:>5.1}%  queue {:>8.4}s  service {:>8.4}s",
                s.name,
                s.requests_per_sec,
                s.geomean_speedup,
                s.evaluations,
                s.total_lookups,
                s.hit_rate * 100.0,
                s.mean_queue_s,
                s.mean_service_s,
            )?;
        }
        let (completed, stopped, skipped, rejected) = self.statuses;
        writeln!(
            f,
            "statuses           completed {completed}  stopped {stopped}  skipped {skipped}  rejected {rejected}",
        )?;
        writeln!(
            f,
            "warm vs cold       hit-rate {:+.1} pts, evals {:+.1}%",
            (self.warm.hit_rate - self.cold.hit_rate) * 100.0,
            100.0 * (self.warm.evaluations as f64 / self.cold.evaluations.max(1) as f64 - 1.0),
        )?;
        writeln!(
            f,
            "persistence        {} entries restored after restart, fingerprints {}",
            self.restored_entries,
            if self.restored_fingerprints_match {
                "bit-identical to the warm stream"
            } else {
                "DIVERGED"
            }
        )?;
        writeln!(
            f,
            "eviction           {} entry-wise evictions at capacity {}, fingerprints {}",
            self.tiny_cache_evictions,
            self.tiny_capacity,
            if self.tiny_fingerprints_match {
                "bit-identical to the warm stream"
            } else {
                "DIVERGED"
            }
        )?;
        writeln!(
            f,
            "batching           {:.2} rows/batch at {} workers, fingerprints {}",
            self.rows_per_batch,
            self.batched_workers,
            if self.batched_fingerprints_match {
                "bit-identical to the unbatched stream"
            } else {
                "DIVERGED"
            }
        )?;
        writeln!(
            f,
            "determinism        {}",
            if self.determinism_invariant {
                "responses bit-identical across 1/2/4 workers and shuffled submission orders"
            } else {
                "DIVERGED"
            }
        )
    }
}

impl ServiceReport {
    /// Machine-readable record of the run (one JSON object) for
    /// `BENCH_*.json` trajectories.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json::field(&mut out, 1, "experiment", json::string("exp_service"));
        out.push_str(",\n");
        json::field(&mut out, 1, "modules", json::number(self.modules as f64));
        out.push_str(",\n");
        json::field(&mut out, 1, "rounds", json::number(self.rounds as f64));
        out.push_str(",\n");
        json::field(&mut out, 1, "workers", json::number(self.workers as f64));
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "batched_workers",
            json::number(self.batched_workers as f64),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "streams",
            json::array(
                [
                    self.warm.to_json(),
                    self.batched.to_json(),
                    self.restored.to_json(),
                    self.tiny.to_json(),
                    self.cold.to_json(),
                ]
                .into_iter(),
            ),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "restored_entries",
            json::number(self.restored_entries as f64),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "restored_fingerprints_match",
            self.restored_fingerprints_match.to_string(),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "tiny_capacity",
            json::number(self.tiny_capacity as f64),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "tiny_cache_evictions",
            json::number(self.tiny_cache_evictions as f64),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "tiny_fingerprints_match",
            self.tiny_fingerprints_match.to_string(),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "rows_per_batch",
            json::number(self.rows_per_batch),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "batched_fingerprints_match",
            self.batched_fingerprints_match.to_string(),
        );
        out.push_str(",\n");
        let (completed, stopped, skipped, rejected) = self.statuses;
        json::field(
            &mut out,
            1,
            "statuses",
            format!(
                "{{\"completed\": {completed}, \"stopped\": {stopped}, \"skipped\": {skipped}, \"rejected\": {rejected}}}"
            ),
        );
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "determinism_invariant",
            self.determinism_invariant.to_string(),
        );
        out.push_str("\n}");
        out
    }
}

/// Deterministic Fisher-Yates shuffle (the vendored `rand` stub has no
/// `SliceRandom`).
fn shuffle<T>(items: &mut [T], rng: &mut ChaCha8Rng) {
    use rand::Rng;
    for i in (1..items.len()).rev() {
        let j = (rng.gen::<u64>() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// The request stream: `rounds` passes over the workloads, cycling the
/// searcher spec per (module, round) and seeding each request from its
/// stream position — so the same stream can be re-submitted in any order
/// on any worker count and must produce fingerprint-identical responses.
fn service_request_stream(
    workloads: &[Module],
    rounds: usize,
    specs: &[SearchSpec],
) -> Vec<OptimizationRequest> {
    let mut requests = Vec::with_capacity(workloads.len() * rounds);
    for round in 0..rounds {
        for (index, module) in workloads.iter().enumerate() {
            let spec = specs[(round + index) % specs.len()].clone();
            let seed = mlir_rl_agent::episode_seed(2027, (round * workloads.len() + index) as u64);
            requests.push(OptimizationRequest::new(module.clone(), spec).with_seed(seed));
        }
    }
    requests
}

/// Runs the request-stream serving experiment: trains a quick policy, then
/// serves `rounds` passes over the DL-operator evaluation workloads
/// (specs cycling over greedy / beam / widened MCTS / random) through
///
/// 1. one **warm persistent** [`OptimizationService`] — every request warms
///    the one shared evaluation cache for every later request,
/// 2. the same persistent service with **cross-request inference
///    batching** ([`ServiceConfig::with_inference_batching`]) — the
///    workers' policy calls coalesce into shared `Tensor2` batches, and
/// 3. a **restored** service — a fresh process-equivalent service that
///    restores the warm cache's snapshot file at startup
///    ([`ServiceConfig::with_cache_snapshot`]) — the storage-tier restart,
/// 4. a **tiny-cache** service ([`ServiceConfig::with_cache_capacity`]) —
///    the same stream under forced entry-wise eviction, and
/// 5. **cold per-request** services — a fresh service (fresh cache) per
///    request, the deployment the paper's one-shot evaluate script implies,
///
/// and verifies the request-level determinism contract by re-serving the
/// same stream with 1/2/4 workers and two shuffled submission orders,
/// comparing response fingerprints. The acceptance invariants: the warm
/// service's shared-cache hit-rate strictly beats the cold baseline's, the
/// warm-restarted (restored) service's hit-rate beats the cold baseline's
/// at bit-identical fingerprints, the tiny-cache stream evicts entry-wise
/// while staying bit-identical, and the batched stream's fingerprints
/// match the warm stream's bit for bit while packing more than one row per
/// aggregator batch.
pub fn service_throughput(scale: &ExperimentScale, workers: usize) -> ServiceReport {
    service_throughput_traced(scale, workers, None).0
}

/// [`service_throughput`] with optional structured tracing:
/// `trace_capacity` is the per-ring event capacity
/// ([`ServiceConfig::with_tracing`]), and the returned snapshot covers the
/// whole batched stream — request lifecycles plus the aggregator's
/// `batch_formed` instants. `None` runs exactly [`service_throughput`].
pub fn service_throughput_traced(
    scale: &ExperimentScale,
    workers: usize,
    trace_capacity: Option<usize>,
) -> (ServiceReport, Option<TraceSnapshot>) {
    use rand::SeedableRng;

    let dataset = dl_ops::training_dataset(scale.dataset_scale, 101);
    let mut rl = train_mlir_rl(EnvConfig::small(), &dataset, scale, 17);
    let workloads: Vec<Module> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();

    let budget = scale.trajectories_per_iteration;
    let specs = vec![
        SearchSpec::Greedy,
        SearchSpec::beam(4),
        SearchSpec::Mcts {
            iterations: (budget * 2).max(8),
            branch: 4,
            widening: Some((1.0, 0.6)),
        },
        SearchSpec::random((budget * 2).max(4)),
    ];
    let rounds = if scale.hidden_size <= 16 { 2 } else { 3 };
    let stream = service_request_stream(&workloads, rounds, &specs);

    // --- warm: one persistent service, one cache across the stream ----
    let mut warm_config = ServiceConfig::quick().with_workers(workers);
    if let Some(capacity) = trace_capacity {
        warm_config = warm_config.with_tracing(capacity);
    }
    let warm_service = rl.spawn_service_with(&warm_config);
    // `spawn_service_with` shares the optimizer's cache, which training
    // warmed; start the comparison from a clean slate so warm-vs-cold
    // measures exactly the cross-request amortization.
    warm_service.cache().clear();
    let start = Instant::now();
    let pending = warm_service.submit_batch(stream.clone());
    let warm_responses = wait_all(&pending);
    let warm = ServiceStreamSummary::from_responses(
        "warm-service",
        &warm_responses,
        start.elapsed().as_secs_f64(),
    );
    let statuses = (
        warm_responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Completed)
            .count(),
        warm_responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Stopped)
            .count(),
        warm_responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Skipped)
            .count(),
        warm_responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Rejected)
            .count(),
    );

    // --- batched: the same stream through the cross-request inference
    // aggregator, with enough workers that batches can actually pack rows
    // from concurrent requests. Fingerprints must match the warm stream
    // bit for bit — batching is a throughput lever, never a result lever.
    let batched_workers = workers.max(4);
    let mut batched_config = ServiceConfig::quick()
        .with_workers(batched_workers)
        .with_inference_batching(16, 200);
    if let Some(capacity) = trace_capacity {
        batched_config = batched_config.with_tracing(capacity);
    }
    let batched_service = rl.spawn_service_with(&batched_config);
    // Same clean-slate start as the warm stream, so the two streams'
    // throughput numbers are comparable.
    batched_service.cache().clear();
    let start = Instant::now();
    let pending = batched_service.submit_batch(stream.clone());
    let batched_responses = wait_all(&pending);
    let batched = ServiceStreamSummary::from_responses(
        "batched-service",
        &batched_responses,
        start.elapsed().as_secs_f64(),
    );
    let aggregator_stats = batched_service
        .aggregator_stats()
        .expect("batched service has batching enabled");
    let rows_per_batch = aggregator_stats.mean_rows_per_batch();
    let batched_fingerprints_match = warm_responses.len() == batched_responses.len()
        && warm_responses
            .iter()
            .zip(&batched_responses)
            .all(|(w, b)| w.fingerprint() == b.fingerprint());

    // --- cold: a fresh service (fresh cache) per request ---------------
    let service_config = ServiceConfig::quick();
    let start = Instant::now();
    let cold_responses: Vec<OptimizationResponse> = stream
        .iter()
        .map(|request| {
            let service = OptimizationService::new(service_config.clone(), rl.policy().clone());
            service.submit(request.clone()).wait()
        })
        .collect();
    let cold = ServiceStreamSummary::from_responses(
        "cold-per-request",
        &cold_responses,
        start.elapsed().as_secs_f64(),
    );

    let reference: Vec<u64> = warm_responses.iter().map(|r| r.fingerprint()).collect();

    // --- restored: snapshot the warm cache, then a *fresh* service
    // restores it at startup and re-serves the stream — the storage-tier
    // restart. The warm restart must beat the cold baseline's hit-rate at
    // bit-identical fingerprints.
    let snapshot_path =
        std::env::temp_dir().join(format!("mlir-rl-exp-service-{}.snap", std::process::id()));
    let snapshot_file = snapshot_path.to_string_lossy().into_owned();
    warm_service
        .cache()
        .snapshot_to(&snapshot_file)
        .expect("snapshotting the warm cache");
    let restored_service = OptimizationService::new(
        service_config.clone().with_cache_snapshot(&snapshot_file),
        rl.policy().clone(),
    );
    let restored_entries = restored_service.metrics().cache_restored;
    let start = Instant::now();
    let pending = restored_service.submit_batch(stream.clone());
    let restored_responses = wait_all(&pending);
    let restored = ServiceStreamSummary::from_responses(
        "restored-service",
        &restored_responses,
        start.elapsed().as_secs_f64(),
    );
    let restored_fingerprints_match = restored_responses.len() == reference.len()
        && restored_responses
            .iter()
            .zip(&reference)
            .all(|(r, &want)| r.fingerprint() == want);
    std::fs::remove_file(&snapshot_path).ok();

    // --- tiny cache: the same stream against a deliberately starved
    // capacity, forcing entry-wise eviction on every shard. Responses must
    // stay bit-identical — eviction only re-runs the (deterministic)
    // estimator.
    let tiny_capacity = 32;
    let tiny_service = OptimizationService::new(
        service_config.clone().with_cache_capacity(tiny_capacity),
        rl.policy().clone(),
    );
    let start = Instant::now();
    let pending = tiny_service.submit_batch(stream.clone());
    let tiny_responses = wait_all(&pending);
    let tiny = ServiceStreamSummary::from_responses(
        "tiny-cache-service",
        &tiny_responses,
        start.elapsed().as_secs_f64(),
    );
    let tiny_cache_evictions = tiny_service.metrics().cache_evictions;
    let tiny_fingerprints_match = tiny_responses.len() == reference.len()
        && tiny_responses
            .iter()
            .zip(&reference)
            .all(|(r, &want)| r.fingerprint() == want);

    // --- determinism: worker counts x shuffled submission orders -------
    let mut shuffle_rng = ChaCha8Rng::seed_from_u64(4242);
    let determinism_invariant = [1usize, 2, 4].iter().all(|&check_workers| {
        let service = OptimizationService::new(
            service_config.clone().with_workers(check_workers),
            rl.policy().clone(),
        );
        // Shuffle the submission order; responses map back to stream
        // positions through the submitted index.
        let mut order: Vec<usize> = (0..stream.len()).collect();
        shuffle(&mut order, &mut shuffle_rng);
        let pending: Vec<_> = order
            .iter()
            .map(|&i| service.submit(stream[i].clone()))
            .collect();
        let mut fingerprints = vec![0u64; stream.len()];
        for (&i, p) in order.iter().zip(&pending) {
            fingerprints[i] = p.wait().fingerprint();
        }
        fingerprints == reference
    });

    // Prefer the batched service's snapshot: it carries the same request
    // lifecycle events as the warm one *plus* the aggregator's
    // `batch_formed` instants, so one trace shows requests and the
    // batches their inference rode in.
    let snapshot = batched_service
        .trace_snapshot()
        .or_else(|| warm_service.trace_snapshot());
    (
        ServiceReport {
            modules: workloads.len(),
            rounds,
            workers: workers.max(1),
            batched_workers,
            warm,
            batched,
            restored,
            tiny,
            cold,
            statuses,
            determinism_invariant,
            rows_per_batch,
            batched_fingerprints_match,
            restored_entries,
            restored_fingerprints_match,
            tiny_capacity,
            tiny_cache_evictions,
            tiny_fingerprints_match,
        },
        snapshot,
    )
}

// ---------------------------------------------------------------------------
// exp_load — open-loop traffic hardening: deterministic bursty/heavy-tailed
// arrivals against a bounded-queue hardened service (quotas, weights,
// backpressure) vs an unbounded queue, with tail latency next to speedup.
// ---------------------------------------------------------------------------

/// The `exp_load` report: a deterministic open-loop arrival process — a
/// back-to-back burst followed by heavy-tailed paced arrivals, mixing every
/// [`SearchSpec`] variant across weighted clients — replayed against a
/// hardened bounded-queue service (and, for the memory comparison, against
/// an unbounded-queue service), reporting p50/p99 queue and service
/// latency next to the geomean speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Distinct workload modules in the stream.
    pub modules: usize,
    /// Requests in the replayed arrival stream.
    pub requests: usize,
    /// Arrivals submitted back-to-back at the head of the stream.
    pub burst: usize,
    /// Worker threads.
    pub workers: usize,
    /// Queue bound of the hardened service (deliberately smaller than the
    /// burst, so backpressure engages).
    pub queue_capacity: usize,
    /// Wall-clock seconds replaying the stream against the bounded
    /// service.
    pub wall_s: f64,
    /// Statuses of the bounded run
    /// `(completed, stopped, skipped, rejected)`.
    pub statuses: (usize, usize, usize, usize),
    /// Geometric mean speedup over the bounded run's completed requests.
    pub geomean_speedup: f64,
    /// Bounded-run metrics snapshot: latency quantiles, admission /
    /// overflow / quota counters, queue high-water mark, cache hit-rate.
    pub metrics: ServiceMetrics,
    /// Queue high-water mark of the unbounded service replaying the same
    /// arrivals — the memory the bounded queue refuses to grow.
    pub unbounded_high_water: u64,
}

impl LoadReport {
    /// Requests answered per wall-clock second in the bounded run.
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.wall_s.max(1e-9)
    }

    /// Machine-readable record of the run (one JSON object). The p50/p99
    /// latency fields are surfaced at the top level (in addition to the
    /// nested metrics snapshot) so CI can assert on them directly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json::field(&mut out, 1, "experiment", json::string("exp_load"));
        out.push_str(",\n");
        for (key, value) in [
            ("modules", self.modules as f64),
            ("requests", self.requests as f64),
            ("burst", self.burst as f64),
            ("workers", self.workers as f64),
            ("queue_capacity", self.queue_capacity as f64),
            ("wall_s", self.wall_s),
            ("requests_per_sec", self.requests_per_sec()),
            ("geomean_speedup", self.geomean_speedup),
            ("queue_p50_s", self.metrics.queue_p50_s),
            ("queue_p99_s", self.metrics.queue_p99_s),
            ("service_p50_s", self.metrics.service_p50_s),
            ("service_p99_s", self.metrics.service_p99_s),
            ("bounded_high_water", self.metrics.queue_high_water as f64),
            ("unbounded_high_water", self.unbounded_high_water as f64),
        ] {
            json::field(&mut out, 1, key, json::number(value));
            out.push_str(",\n");
        }
        let (completed, stopped, skipped, rejected) = self.statuses;
        json::field(
            &mut out,
            1,
            "statuses",
            format!(
                "{{\"completed\": {completed}, \"stopped\": {stopped}, \"skipped\": {skipped}, \"rejected\": {rejected}}}"
            ),
        );
        out.push_str(",\n");
        json::field(&mut out, 1, "metrics", self.metrics.to_json());
        out.push_str("\n}");
        out
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== exp_load: open-loop traffic hardening ({} requests over {} modules; burst {}, \
             queue capacity {}, {} workers) ==",
            self.requests, self.modules, self.burst, self.queue_capacity, self.workers
        )?;
        let (completed, stopped, skipped, rejected) = self.statuses;
        writeln!(
            f,
            "throughput         {:>7.2} req/s over {:.3}s  geomean speedup (completed) {:>6.2}x",
            self.requests_per_sec(),
            self.wall_s,
            self.geomean_speedup
        )?;
        writeln!(
            f,
            "statuses           completed {completed}  stopped {stopped}  skipped {skipped}  \
             rejected {rejected}  (overflow rejects {})",
            self.metrics.overflow_rejects
        )?;
        writeln!(
            f,
            "queue latency      p50 {:>9.6}s  p99 {:>9.6}s  mean {:>9.6}s",
            self.metrics.queue_p50_s, self.metrics.queue_p99_s, self.metrics.queue_mean_s
        )?;
        writeln!(
            f,
            "service latency    p50 {:>9.6}s  p99 {:>9.6}s  mean {:>9.6}s",
            self.metrics.service_p50_s, self.metrics.service_p99_s, self.metrics.service_mean_s
        )?;
        writeln!(
            f,
            "fairness           {} client lanes, quota deferrals {}",
            self.metrics.clients, self.metrics.quota_deferrals
        )?;
        writeln!(
            f,
            "queue memory       bounded high-water {} (capacity {})  vs unbounded {} — \
             backpressure keeps the burst flat",
            self.metrics.queue_high_water, self.queue_capacity, self.unbounded_high_water
        )?;
        writeln!(
            f,
            "cache              hit-rate {:>5.1}%  {} entries / capacity {}  \
             insertions {}  evictions {}  promotions {}",
            self.metrics.cache_hit_rate() * 100.0,
            self.metrics.cache_len,
            self.metrics.cache_capacity,
            self.metrics.cache_insertions,
            self.metrics.cache_evictions,
            self.metrics.cache_promotions,
        )
    }
}

/// Builds the deterministic open-loop arrival stream: `burst` back-to-back
/// arrivals, then heavy-tailed (power-of-two microsecond) gaps from a
/// seeded generator; modules, spec variants, weighted clients and
/// priorities all cycle deterministically with the stream position.
fn load_request_stream(
    workloads: &[Module],
    total: usize,
    burst: usize,
    specs: &[SearchSpec],
) -> Vec<(OptimizationRequest, Duration)> {
    use rand::{Rng, SeedableRng};
    let mut rng = ChaCha8Rng::seed_from_u64(90210);
    let clients = [Some("alice"), Some("bob"), None];
    (0..total)
        .map(|i| {
            let module = workloads[i % workloads.len()].clone();
            let spec = specs[i % specs.len()].clone();
            let seed = mlir_rl_agent::episode_seed(3031, i as u64);
            let mut request = OptimizationRequest::new(module, spec)
                .with_seed(seed)
                .with_priority((rng.gen::<u64>() % 3) as i32 - 1);
            if let Some(client) = clients[i % clients.len()] {
                request = request.with_client(client);
            }
            let gap = if i < burst {
                Duration::ZERO
            } else {
                // Heavy-tailed pacing: mostly tight arrivals with
                // occasional power-of-two spikes up to ~128 µs.
                let draw = rng.gen::<u64>() % 100;
                if draw < 70 {
                    Duration::ZERO
                } else {
                    Duration::from_micros(1 << (draw % 8))
                }
            };
            (request, gap)
        })
        .collect()
}

/// Replays the arrival stream open-loop (submission times never wait for
/// completions) and waits for every response.
fn replay_stream(
    service: &OptimizationService,
    stream: &[(OptimizationRequest, Duration)],
) -> Vec<OptimizationResponse> {
    let pending: Vec<_> = stream
        .iter()
        .map(|(request, gap)| {
            if !gap.is_zero() {
                std::thread::sleep(*gap);
            }
            service.submit(request.clone())
        })
        .collect();
    wait_all(&pending)
}

/// Runs the traffic-hardening experiment: trains a quick policy, builds a
/// deterministic open-loop arrival stream (an opening burst deliberately
/// larger than the hardened service's queue bound, then heavy-tailed
/// pacing; every [`SearchSpec`] variant; three client lanes with weights
/// 3/1/1 and an in-flight quota), and replays it against
///
/// 1. the **hardened** service — bounded queue, client quotas and weights:
///    backpressure rejects the overflowing burst tail, the queue
///    high-water mark plateaus at the capacity, and the metrics surface
///    reports p50/p99 queue and service latency; and
/// 2. an **unbounded** service replaying the same arrivals — its
///    high-water mark grows with the burst, the memory-leak mode the
///    bounded queue exists to prevent.
pub fn load_test(scale: &ExperimentScale, workers: usize) -> LoadReport {
    load_test_traced(scale, workers, None).0
}

/// [`load_test`] with optional structured tracing on the hardened bounded
/// service: `trace_capacity` is the per-ring event capacity
/// ([`ServiceConfig::with_tracing`]), and the returned snapshot covers the
/// whole replayed stream — per-request lifecycle spans (including the
/// burst's backpressure rejections) plus searcher phase events. `None`
/// runs exactly [`load_test`].
pub fn load_test_traced(
    scale: &ExperimentScale,
    workers: usize,
    trace_capacity: Option<usize>,
) -> (LoadReport, Option<TraceSnapshot>) {
    let dataset = dl_ops::training_dataset(scale.dataset_scale, 101);
    let rl = train_mlir_rl(EnvConfig::small(), &dataset, scale, 23);
    let workloads: Vec<Module> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();

    let budget = scale.trajectories_per_iteration;
    let specs = vec![
        SearchSpec::Greedy,
        SearchSpec::beam(3),
        SearchSpec::Mcts {
            iterations: budget.max(4),
            branch: 3,
            widening: Some((1.0, 0.6)),
        },
        SearchSpec::random(budget.max(3)),
        SearchSpec::round_robin(vec![SearchSpec::Greedy, SearchSpec::beam(2)]),
        SearchSpec::racing(vec![SearchSpec::Greedy, SearchSpec::beam(2)], 0.0),
    ];
    let rounds = if scale.hidden_size <= 16 { 2 } else { 4 };
    let total = workloads.len() * rounds;
    let burst = (total / 2).max(4);
    let capacity = (burst / 2).max(2);
    let stream = load_request_stream(&workloads, total, burst, &specs);

    // --- hardened: bounded queue + quotas + weighted lanes -------------
    let mut bounded_config = ServiceConfig::quick()
        .with_workers(workers)
        .with_queue_capacity(capacity)
        .with_client_quota(2)
        .with_client_weight("alice", 3)
        .with_client_weight("bob", 1);
    if let Some(ring) = trace_capacity {
        bounded_config = bounded_config.with_tracing(ring);
    }
    let bounded = OptimizationService::new(bounded_config, rl.policy().clone());
    let start = Instant::now();
    let responses = replay_stream(&bounded, &stream);
    let wall_s = start.elapsed().as_secs_f64();
    let metrics = bounded.metrics();
    let statuses = (
        responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Completed)
            .count(),
        responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Stopped)
            .count(),
        responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Skipped)
            .count(),
        responses
            .iter()
            .filter(|r| r.status == ResponseStatus::Rejected)
            .count(),
    );
    let completed: Vec<&OptimizationResponse> = responses
        .iter()
        .filter(|r| r.status == ResponseStatus::Completed)
        .collect();
    let geomean_speedup = if completed.is_empty() {
        1.0
    } else {
        (completed
            .iter()
            .map(|r| r.speedup().max(1e-12).ln())
            .sum::<f64>()
            / completed.len() as f64)
            .exp()
    };

    // --- unbounded: the same arrivals, no queue bound ------------------
    let unbounded = OptimizationService::new(
        ServiceConfig::quick()
            .with_workers(workers)
            .with_unbounded_queue(),
        rl.policy().clone(),
    );
    replay_stream(&unbounded, &stream);
    let unbounded_high_water = unbounded.metrics().queue_high_water;

    let snapshot = bounded.trace_snapshot();
    (
        LoadReport {
            modules: workloads.len(),
            requests: total,
            burst,
            workers: workers.max(1),
            queue_capacity: capacity,
            wall_s,
            statuses,
            geomean_speedup,
            metrics,
            unbounded_high_water,
        },
        snapshot,
    )
}

// ---------------------------------------------------------------------------
// Tracing support shared by the exp_* binaries
// ---------------------------------------------------------------------------

/// Per-ring event capacity the binaries' `--trace` flag uses: large enough
/// to hold every smoke/standard stream without drops, small enough that
/// the rings stay a few MiB.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Writes `snapshot` as Chrome trace-event JSON (load it in
/// `chrome://tracing` or Perfetto) to `path` and prints a one-line
/// summary — event count, drops, ring count, and the measured per-event
/// recorder overhead — to **stderr**, keeping stdout parseable for
/// `--json` reports.
pub fn export_trace(snapshot: &TraceSnapshot, path: &std::path::Path) {
    std::fs::write(path, snapshot.to_chrome_json())
        .unwrap_or_else(|problem| panic!("writing trace to {}: {problem}", path.display()));
    eprintln!(
        "trace: {} events ({} dropped) across {} rings -> {}; recorder overhead \
         ~{:.0} ns/event",
        snapshot.events.len(),
        snapshot.dropped,
        snapshot.writers,
        path.display(),
        recorder_overhead_ns(1 << 16),
    );
}

// ---------------------------------------------------------------------------
// E12 — NN throughput: batched (blocked-matmul) vs per-vector inference and
// training on PPO/beam-realistic layer shapes.
// ---------------------------------------------------------------------------

/// One batch-size row of the NN-throughput experiment. All figures are
/// rows (samples) per second; `*_speedup` is batched over looped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnThroughputRow {
    /// Batch size (rows per batched call; the looped figures process the
    /// same rows one at a time).
    pub batch: usize,
    /// MLP training forward, one `forward` call per row.
    pub forward_looped: f64,
    /// MLP training forward, one `forward_batch` call.
    pub forward_batched: f64,
    /// `forward_batched / forward_looped`.
    pub forward_speedup: f64,
    /// MLP scratch inference, one `infer` call per row.
    pub infer_looped: f64,
    /// MLP scratch inference, one `infer_batch` call.
    pub infer_batched: f64,
    /// `infer_batched / infer_looped`.
    pub infer_speedup: f64,
    /// MLP backward, one `backward` call per row in reverse order.
    pub backward_looped: f64,
    /// MLP backward, one `backward_batch` call.
    pub backward_batched: f64,
    /// `backward_batched / backward_looped`.
    pub backward_speedup: f64,
    /// LSTM scratch inference (sequence length 2, the producer-consumer
    /// embedding shape), one `infer` call per row.
    pub lstm_infer_looped: f64,
    /// LSTM scratch inference, one `infer_batch` call.
    pub lstm_infer_batched: f64,
    /// `lstm_infer_batched / lstm_infer_looped`.
    pub lstm_infer_speedup: f64,
}

/// The `exp_nn_throughput` report: rows/sec for batched vs per-vector
/// forward, inference and backward at PPO/beam-realistic shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct NnThroughputReport {
    /// Input feature count of the measured MLP (equal to the hidden size,
    /// like the paper's backbone).
    pub input: usize,
    /// Hidden width of the measured layers.
    pub hidden: usize,
    /// Number of MLP layers.
    pub layers: usize,
    /// One row per measured batch size.
    pub rows: Vec<NnThroughputRow>,
}

impl NnThroughputRow {
    /// One JSON object per measured batch size.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let fields = [
            ("batch", self.batch as f64),
            ("forward_looped", self.forward_looped),
            ("forward_batched", self.forward_batched),
            ("forward_speedup", self.forward_speedup),
            ("infer_looped", self.infer_looped),
            ("infer_batched", self.infer_batched),
            ("infer_speedup", self.infer_speedup),
            ("backward_looped", self.backward_looped),
            ("backward_batched", self.backward_batched),
            ("backward_speedup", self.backward_speedup),
            ("lstm_infer_looped", self.lstm_infer_looped),
            ("lstm_infer_batched", self.lstm_infer_batched),
            ("lstm_infer_speedup", self.lstm_infer_speedup),
        ];
        let last = fields.len() - 1;
        for (i, (name, value)) in fields.into_iter().enumerate() {
            json::field(&mut out, 2, name, json::number(value));
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push_str("  }");
        out
    }
}

impl NnThroughputReport {
    /// Machine-readable record of the run (one JSON object) for
    /// `BENCH_*.json` trajectories.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json::field(&mut out, 1, "experiment", json::string("exp_nn_throughput"));
        out.push_str(",\n");
        json::field(&mut out, 1, "input", json::number(self.input as f64));
        out.push_str(",\n");
        json::field(&mut out, 1, "hidden", json::number(self.hidden as f64));
        out.push_str(",\n");
        json::field(&mut out, 1, "layers", json::number(self.layers as f64));
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "rows",
            json::array(self.rows.iter().map(NnThroughputRow::to_json)),
        );
        out.push_str("\n}");
        out
    }
}

impl fmt::Display for NnThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== nn throughput (mlp {}x{} x{} layers; rows/sec, batched vs per-vector) ==",
            self.input, self.hidden, self.layers
        )?;
        writeln!(
            f,
            "{:>6}  {:>33}  {:>33}  {:>33}  {:>33}",
            "batch",
            "mlp forward (loop|batch|x)",
            "mlp infer (loop|batch|x)",
            "mlp backward (loop|batch|x)",
            "lstm infer (loop|batch|x)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6}  {:>12.0} {:>12.0} {:>6.2}x  {:>12.0} {:>12.0} {:>6.2}x  {:>12.0} {:>12.0} {:>6.2}x  {:>12.0} {:>12.0} {:>6.2}x",
                r.batch,
                r.forward_looped,
                r.forward_batched,
                r.forward_speedup,
                r.infer_looped,
                r.infer_batched,
                r.infer_speedup,
                r.backward_looped,
                r.backward_batched,
                r.backward_speedup,
                r.lstm_infer_looped,
                r.lstm_infer_batched,
                r.lstm_infer_speedup,
            )?;
        }
        Ok(())
    }
}

/// Repeats `rep` until its self-timed measured region has accumulated at
/// least `budget_s` seconds; returns rows/sec over the measured region.
/// `rep(timer)` must add its measured duration to `timer` and return the
/// rows it processed.
fn measure_rows_per_sec<F: FnMut(&mut f64) -> usize>(budget_s: f64, mut rep: F) -> f64 {
    let mut rows = 0usize;
    let mut timed = 0.0f64;
    while timed < budget_s {
        rows += rep(&mut timed);
    }
    rows as f64 / timed.max(1e-9)
}

/// Measures rows/sec for batched vs per-vector NN execution: MLP training
/// forward, scratch inference and backward, plus LSTM scratch inference at
/// sequence length 2 (the producer-consumer embedding). Shapes follow the
/// scale: the smoke scale uses a 96-unit stack so CI stays fast; every
/// other scale uses the paper's 512-unit PPO shape. Both sides of each
/// comparison compute bit-identical results (the batched kernels fix their
/// accumulation order), so the ratio is pure engine throughput.
pub fn nn_throughput(scale: &ExperimentScale) -> NnThroughputReport {
    use mlir_rl_nn::{Lstm, Mlp, Tensor2};
    use rand::Rng;
    use rand::SeedableRng;

    let hidden = if scale.hidden_size <= 16 { 96 } else { 512 };
    let budget_s = if scale.hidden_size <= 16 { 0.02 } else { 0.25 };
    let layers = 3usize;
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let sizes: Vec<usize> = std::iter::repeat_n(hidden, layers + 1).collect();
    let mlp_template = Mlp::new(&sizes, false, &mut rng);
    let lstm_template = Lstm::new(hidden, hidden, &mut rng);

    let mut rows = Vec::new();
    for batch in [1usize, 16, 32, 64] {
        let data: Vec<Vec<f64>> = (0..batch)
            .map(|_| (0..hidden).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let x = Tensor2::from_rows(hidden, data.iter().map(Vec::as_slice));
        let grad: Vec<Vec<f64>> = (0..batch)
            .map(|_| (0..hidden).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let g = Tensor2::from_rows(hidden, grad.iter().map(Vec::as_slice));

        // --- MLP training forward -------------------------------------
        let mut mlp = mlp_template.clone();
        let forward_looped = measure_rows_per_sec(budget_s, |timer| {
            mlp.zero_grad();
            let start = Instant::now();
            for row in &data {
                std::hint::black_box(mlp.forward(row));
            }
            *timer += start.elapsed().as_secs_f64();
            batch
        });
        let mut mlp = mlp_template.clone();
        let forward_batched = measure_rows_per_sec(budget_s, |timer| {
            mlp.zero_grad();
            let start = Instant::now();
            std::hint::black_box(mlp.forward_batch(&x));
            *timer += start.elapsed().as_secs_f64();
            batch
        });

        // --- MLP scratch inference ------------------------------------
        let mut mlp = mlp_template.clone();
        let infer_looped = measure_rows_per_sec(budget_s, |timer| {
            let start = Instant::now();
            for row in &data {
                std::hint::black_box(mlp.infer(row));
            }
            *timer += start.elapsed().as_secs_f64();
            batch
        });
        let mut mlp = mlp_template.clone();
        let infer_batched = measure_rows_per_sec(budget_s, |timer| {
            let start = Instant::now();
            std::hint::black_box(mlp.infer_batch(&x));
            *timer += start.elapsed().as_secs_f64();
            batch
        });

        // --- MLP backward (forward untimed, backward timed) -----------
        let mut mlp = mlp_template.clone();
        let backward_looped = measure_rows_per_sec(budget_s, |timer| {
            mlp.zero_grad();
            for row in &data {
                mlp.forward(row);
            }
            let start = Instant::now();
            for grow in grad.iter().rev() {
                std::hint::black_box(mlp.backward(grow));
            }
            *timer += start.elapsed().as_secs_f64();
            batch
        });
        let mut mlp = mlp_template.clone();
        let backward_batched = measure_rows_per_sec(budget_s, |timer| {
            mlp.zero_grad();
            mlp.forward_batch(&x);
            let start = Instant::now();
            std::hint::black_box(mlp.backward_batch(&g));
            *timer += start.elapsed().as_secs_f64();
            batch
        });

        // --- LSTM scratch inference (sequence length 2) ---------------
        let mut lstm = lstm_template.clone();
        let lstm_infer_looped = measure_rows_per_sec(budget_s, |timer| {
            let start = Instant::now();
            for row in &data {
                std::hint::black_box(lstm.infer(&[row.as_slice(), row.as_slice()]));
            }
            *timer += start.elapsed().as_secs_f64();
            batch
        });
        let mut lstm = lstm_template.clone();
        let lstm_infer_batched = measure_rows_per_sec(budget_s, |timer| {
            let start = Instant::now();
            std::hint::black_box(lstm.infer_batch(&[&x, &x]));
            *timer += start.elapsed().as_secs_f64();
            batch
        });

        rows.push(NnThroughputRow {
            batch,
            forward_looped,
            forward_batched,
            forward_speedup: forward_batched / forward_looped.max(1e-9),
            infer_looped,
            infer_batched,
            infer_speedup: infer_batched / infer_looped.max(1e-9),
            backward_looped,
            backward_batched,
            backward_speedup: backward_batched / backward_looped.max(1e-9),
            lstm_infer_looped,
            lstm_infer_batched,
            lstm_infer_speedup: lstm_infer_batched / lstm_infer_looped.max(1e-9),
        });
    }

    NnThroughputReport {
        input: hidden,
        hidden,
        layers,
        rows,
    }
}

// ---------------------------------------------------------------------------
// E8 — Tables II and V: dataset and model composition.
// ---------------------------------------------------------------------------

/// Reproduces Table II (training-set composition per DL operator) and
/// Table V (operator composition of the benchmark models).
pub fn datasets() -> (SpeedupTable, SpeedupTable) {
    let mut table2 = SpeedupTable::new(
        "Table II: single-operator training set",
        vec!["training examples".to_string()],
    );
    for (op, count) in dl_ops::dataset_composition(1.0) {
        table2.push_row(op.name(), vec![count as f64]);
    }
    table2.push_row("Total", vec![1135.0]);

    let mut table5 = SpeedupTable::new(
        "Table V: operator composition of the benchmarked models",
        vec![
            "total".to_string(),
            "conv2d".to_string(),
            "pool".to_string(),
            "matmul".to_string(),
            "generic".to_string(),
        ],
    );
    for model in NeuralNetwork::ALL {
        let module = model.module();
        let comp = models::op_composition(&module);
        let get = |k: &str| comp.get(k).copied().unwrap_or(0) as f64;
        table5.push_row(
            model.name(),
            vec![
                get("total"),
                get("conv2d"),
                get("pool"),
                get("matmul"),
                get("generic"),
            ],
        );
    }
    (table2, table5)
}

// ---------------------------------------------------------------------------
// E9 — action-space size accounting (Sec. IV-A).
// ---------------------------------------------------------------------------

/// Reproduces the Sec. IV-A action-space size accounting: the flat action
/// space `|A| = 3 M^N + N! + 2` against the number of multi-discrete
/// decisions, for N = 1..=12 and M = 8.
pub fn action_space_size() -> SpeedupTable {
    let mut table = SpeedupTable::new(
        "Action-space size: flat vs multi-discrete (M = 8)",
        vec![
            "flat |A|".to_string(),
            "multi-discrete (level pointers)".to_string(),
            "multi-discrete (enumerated)".to_string(),
        ],
    );
    for n in 1..=12u32 {
        table.push_row(
            format!("N = {n}"),
            vec![
                flat_action_space_size(n, 8) as f64,
                multi_discrete_decision_count(n, 8, true) as f64,
                multi_discrete_decision_count(n, 8, false) as f64,
            ],
        );
    }
    table
}

// ---------------------------------------------------------------------------
// E16 — exp_online: closed-loop online learning on served traffic.
// ---------------------------------------------------------------------------

/// The `exp_online` report: a served traffic stream feeds the online
/// trainer, the trainer hot-swaps promoted policy versions, and the replay
/// phases lock the per-version determinism contract plus the promotion
/// gate's no-regression guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Distinct modules in the served workload.
    pub modules: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Serving rounds run to feed the trainer before the first swap.
    pub training_rounds: usize,
    /// Policy version of the pre-training replay phase (always 0).
    pub pre_version: u64,
    /// Policy version of the post-training replay phase.
    pub post_version: u64,
    /// Policy snapshots published by the trainer.
    pub swaps: u64,
    /// PPO train steps the trainer ran.
    pub train_steps: u64,
    /// Candidates the promotion gate refused.
    pub gate_rejects: u64,
    /// Experiences accepted into the stream.
    pub experiences_accepted: u64,
    /// Experiences dropped by the bounded stream.
    pub experiences_dropped: u64,
    /// Geomean greedy speedup served at version 0.
    pub pre_geomean: f64,
    /// Geomean greedy speedup served at `post_version`.
    pub post_geomean: f64,
    /// Replaying the stream at version 0 reproduced every fingerprint.
    pub pre_fingerprints_stable: bool,
    /// Replaying the stream at `post_version` reproduced every fingerprint.
    pub post_fingerprints_stable: bool,
    /// Every response reported exactly the version it was admitted with.
    pub versions_pinned: bool,
}

impl fmt::Display for OnlineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== online learning (experience feedback + hot swap) ==")?;
        writeln!(
            f,
            "workload             {} modules, {} workers, {} training rounds",
            self.modules, self.workers, self.training_rounds
        )?;
        writeln!(
            f,
            "trainer              {} train steps, {} swaps published, {} gate rejects",
            self.train_steps, self.swaps, self.gate_rejects
        )?;
        writeln!(
            f,
            "experience stream    {} accepted, {} dropped",
            self.experiences_accepted, self.experiences_dropped
        )?;
        writeln!(
            f,
            "geomean speedup      {:.4}x at v{}  ->  {:.4}x at v{} ({})",
            self.pre_geomean,
            self.pre_version,
            self.post_geomean,
            self.post_version,
            if self.post_geomean >= self.pre_geomean * (1.0 - 1e-9) {
                "no regression"
            } else {
                "REGRESSED"
            }
        )?;
        writeln!(
            f,
            "determinism          v{} replay {}, v{} replay {}, versions {}",
            self.pre_version,
            if self.pre_fingerprints_stable {
                "bit-identical"
            } else {
                "DIVERGED"
            },
            self.post_version,
            if self.post_fingerprints_stable {
                "bit-identical"
            } else {
                "DIVERGED"
            },
            if self.versions_pinned {
                "pinned at admission"
            } else {
                "NOT PINNED"
            }
        )
    }
}

impl OnlineReport {
    /// Machine-readable record of the run (one JSON object) for
    /// `BENCH_*.json` trajectories.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json::field(&mut out, 1, "experiment", json::string("exp_online"));
        out.push_str(",\n");
        let numbers = [
            ("modules", self.modules as f64),
            ("workers", self.workers as f64),
            ("training_rounds", self.training_rounds as f64),
            ("pre_version", self.pre_version as f64),
            ("post_version", self.post_version as f64),
            ("swaps", self.swaps as f64),
            ("train_steps", self.train_steps as f64),
            ("gate_rejects", self.gate_rejects as f64),
            ("experiences_accepted", self.experiences_accepted as f64),
            ("experiences_dropped", self.experiences_dropped as f64),
            ("pre_geomean", self.pre_geomean),
            ("post_geomean", self.post_geomean),
        ];
        for (name, value) in numbers {
            json::field(&mut out, 1, name, json::number(value));
            out.push_str(",\n");
        }
        let flags = [
            ("pre_fingerprints_stable", self.pre_fingerprints_stable),
            ("post_fingerprints_stable", self.post_fingerprints_stable),
            ("versions_pinned", self.versions_pinned),
        ];
        let last = flags.len() - 1;
        for (i, (name, value)) in flags.into_iter().enumerate() {
            json::field(&mut out, 1, name, value.to_string());
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }
}

/// Runs [`online_learning_traced`] without tracing.
pub fn online_learning(scale: &ExperimentScale, workers: usize) -> OnlineReport {
    online_learning_traced(scale, workers, None).0
}

/// The closed online-learning loop, end to end: a fixed module set is
/// served twice at version 0 (replay — per-version determinism), then
/// served in rounds that feed the background trainer until it publishes at
/// least one gate-passing version, then served twice again at the final
/// version. The promotion gate scores candidates with the same noise-free
/// greedy decode the served `Greedy` spec uses, so a published version can
/// never regress the served geomean.
pub fn online_learning_traced(
    scale: &ExperimentScale,
    workers: usize,
    trace_capacity: Option<usize>,
) -> (OnlineReport, Option<TraceSnapshot>) {
    use mlir_rl_ir::ModuleBuilder;
    use rand::SeedableRng;

    let chain = |name: &str, m: u64, n: u64, k: u64| {
        let mut b = ModuleBuilder::new(name);
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    };
    let modules = [
        chain("online_a", 64, 64, 64),
        chain("online_b", 96, 48, 64),
        chain("online_c", 48, 96, 32),
    ];
    let workers = workers.max(1);

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let policy = mlir_rl_agent::PolicyNetwork::new(
        EnvConfig::small(),
        PolicyHyperparams {
            hidden_size: scale.hidden_size,
            backbone_layers: 1,
        },
        &mut rng,
    );
    let online = mlir_rl_agent::OnlineTrainingConfig {
        sample_every: 1,
        capacity: 256,
        // One serving round fills exactly one replay batch, so every train
        // step sees (and probes) the full module set.
        min_batch: modules.len(),
        train_seed: 0xC0DE,
        ppo: PpoConfig {
            trajectories_per_iteration: scale.trajectories_per_iteration.max(2),
            minibatch_size: 4,
            update_epochs: 1,
            ..PpoConfig::paper()
        },
        promotion_gate: true,
        max_probe_modules: 16,
        max_steps: None,
    };
    let mut config = ServiceConfig::quick()
        .with_workers(workers)
        .with_online_training(online);
    if let Some(capacity) = trace_capacity {
        config = config.with_tracing(capacity);
    }
    let service = OptimizationService::new(config, policy);

    // One replay of the workload: greedy requests with fixed seeds.
    // Returns (fingerprints, versions, geomean speedup).
    let replay = |phase_seed: u64| -> (Vec<u64>, Vec<u64>, f64) {
        let requests: Vec<OptimizationRequest> = modules
            .iter()
            .enumerate()
            .map(|(i, module)| {
                OptimizationRequest::new(module.clone(), SearchSpec::Greedy)
                    .with_seed(phase_seed + i as u64)
            })
            .collect();
        let responses = wait_all(&service.submit_batch(requests));
        let mut log_sum = 0.0;
        for response in &responses {
            assert_eq!(response.status, ResponseStatus::Completed);
            let outcome = response.outcome.as_ref().expect("completed");
            log_sum += outcome.speedup.max(f64::MIN_POSITIVE).ln();
        }
        (
            responses.iter().map(|r| r.fingerprint()).collect(),
            responses.iter().map(|r| r.policy_version).collect(),
            (log_sum / responses.len() as f64).exp(),
        )
    };

    // --- pre: two replays at version 0, trainer quiesced ----------------
    service.pause_online_training();
    let (pre_a, pre_versions, pre_geomean) = replay(100);
    let (pre_b, _, _) = replay(100);
    let pre_fingerprints_stable = pre_a == pre_b;
    let mut versions_pinned = pre_versions.iter().all(|&v| v == 0);

    // --- train: serve rounds until the trainer publishes ----------------
    service.resume_online_training();
    let max_rounds = 400usize;
    let mut training_rounds = 0usize;
    while service.policy_swaps() == 0 && training_rounds < max_rounds {
        let requests: Vec<OptimizationRequest> = modules
            .iter()
            .enumerate()
            .map(|(i, module)| {
                OptimizationRequest::new(module.clone(), SearchSpec::Greedy)
                    .with_seed(10_000 + (training_rounds * modules.len() + i) as u64)
            })
            .collect();
        let _ = wait_all(&service.submit_batch(requests));
        training_rounds += 1;
        std::thread::sleep(Duration::from_millis(2));
    }

    // --- post: two replays at the promoted version, trainer quiesced ----
    service.pause_online_training();
    let post_version = service.policy_version();
    let (post_a, post_versions, post_geomean) = replay(100);
    let (post_b, _, _) = replay(100);
    let post_fingerprints_stable = post_a == post_b;
    versions_pinned &= post_versions.iter().all(|&v| v == post_version);

    let stats = service.online_stats().expect("online training is on");
    let metrics = service.metrics();
    let report = OnlineReport {
        modules: modules.len(),
        workers,
        training_rounds,
        pre_version: 0,
        post_version,
        swaps: metrics.policy_swaps,
        train_steps: stats.train_steps,
        gate_rejects: stats.gate_rejects,
        experiences_accepted: metrics.online_experiences_accepted,
        experiences_dropped: metrics.online_experiences_dropped,
        pre_geomean,
        post_geomean,
        pre_fingerprints_stable,
        post_fingerprints_stable,
        versions_pinned,
    };
    let snapshot = service.trace_snapshot();
    (report, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_space_table_matches_formula() {
        let t = action_space_size();
        assert_eq!(t.rows.len(), 12);
        // N = 3: 3*8^3 + 6 + 2 = 1544.
        assert_eq!(t.rows[2].1[0], 1544.0);
        assert!(t.rows[11].1[0] > t.rows[11].1[1]);
    }

    #[test]
    fn dataset_tables_match_the_paper_counts() {
        let (table2, table5) = datasets();
        assert_eq!(table2.rows.last().unwrap().1[0], 1135.0);
        assert_eq!(table5.rows.len(), 3);
        for (_, row) in &table5.rows {
            assert!(row[0] >= row[1], "total >= conv2d");
        }
    }

    #[test]
    fn smoke_fig5_has_all_operators_and_systems() {
        let table = fig5_operators(&ExperimentScale::smoke());
        assert_eq!(table.rows.len(), 5);
        assert_eq!(table.columns.len(), 4);
        for (_, values) in &table.rows {
            assert!(values.iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    #[test]
    fn smoke_table4_runs_and_is_positive() {
        let table = table4_lqcd(&ExperimentScale::smoke());
        assert_eq!(table.rows.len(), 3);
        for (_, values) in &table.rows {
            assert!(values[1] > 1.0, "Mullapudi should beat the baseline");
            assert!(values[0].is_finite());
        }
    }

    #[test]
    fn smoke_rollout_throughput_reports_cache_hits() {
        let report = rollout_throughput(&ExperimentScale::smoke(), 2);
        assert!(report.steps > 0);
        assert!(report.serial_steps_per_sec > 0.0);
        assert!(report.parallel_steps_per_sec > 0.0);
        assert!(
            report.cache_hit_rate > 0.0,
            "repeated baselines must produce cache hits"
        );
        assert!(report.to_string().contains("cache hit-rate"));
    }

    #[test]
    fn smoke_nn_throughput_reports_all_paths() {
        let report = nn_throughput(&ExperimentScale::smoke());
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().any(|r| r.batch >= 16));
        for r in &report.rows {
            for v in [
                r.forward_looped,
                r.forward_batched,
                r.infer_looped,
                r.infer_batched,
                r.backward_looped,
                r.backward_batched,
                r.lstm_infer_looped,
                r.lstm_infer_batched,
            ] {
                assert!(v.is_finite() && v > 0.0);
            }
        }
        let printed = report.to_string();
        assert!(printed.contains("nn throughput"));
        assert!(printed.contains("mlp forward"));
    }

    #[test]
    fn smoke_search_beam_dominates_greedy_on_every_workload() {
        let report = search_speedups(&ExperimentScale::smoke(), 2);
        let greedy_col = report
            .table
            .columns
            .iter()
            .position(|c| c == "greedy-policy")
            .expect("greedy column present");
        let beam_col = report
            .table
            .columns
            .iter()
            .position(|c| c.starts_with("beam-"))
            .expect("beam column present");
        assert!(!report.table.rows.is_empty());
        for (name, values) in &report.table.rows {
            assert!(
                values[beam_col] >= values[greedy_col],
                "beam must be >= greedy on {name}: {} vs {}",
                values[beam_col],
                values[greedy_col]
            );
            assert!(values.iter().all(|v| v.is_finite() && *v > 0.0));
        }
        // The eval budget and the shared-cache hit-rate are reported.
        let printed = report.to_string();
        assert!(printed.contains("shared-cache hit-rate"));
        assert!(printed.contains("evals"));
        for summary in &report.summaries {
            assert!(summary.evaluations <= summary.total_lookups);
        }
    }

    #[test]
    fn smoke_portfolio_reaches_best_of_members_for_less_spend() {
        let report = portfolio_speedups(&ExperimentScale::smoke(), 2);
        assert!(report.modules > 0);
        // The acceptance invariants: the round-robin portfolio reproduces
        // the per-module best of its independently-run members, spends
        // fewer estimator runs doing it (shared warmth), and beats every
        // single member's hit-rate.
        assert_eq!(
            report.best_of_members_matches, report.modules,
            "portfolio must reach the best-of-members speedup on every module"
        );
        assert!(
            report.round_robin.evaluations < report.singles_evaluations,
            "shared warmth must save estimator runs: {} vs {}",
            report.round_robin.evaluations,
            report.singles_evaluations
        );
        assert!(
            report.round_robin.shared_cache_hit_rate > report.singles_hit_rate,
            "portfolio hit-rate {} must beat the members' combined rate {}",
            report.round_robin.shared_cache_hit_rate,
            report.singles_hit_rate
        );
        // Racing determinism: bit-identical outcomes across 1/2/4 workers.
        assert!(report.racing_worker_invariant);
        assert!(report.racing_reached_target > 0);
        assert!(report.racing_mean_winner_lookups > 0.0);
        // Attribution rows cover the whole roster, and every module has a
        // winner in both modes.
        assert_eq!(report.members.len(), 4);
        assert_eq!(
            report.members.iter().map(|m| m.wins).sum::<usize>(),
            report.modules
        );
        assert_eq!(
            report.racing_members.iter().map(|m| m.wins).sum::<usize>(),
            report.modules
        );
        let printed = report.to_string();
        assert!(printed.contains("member attribution"));
        assert!(printed.contains("racing worker-invariance"));
        assert!(printed.contains("bit-identical across 1/2/4 workers"));
        // The machine-readable record behind `exp_portfolio --json`.
        let json = report.to_json();
        assert!(json.contains("\"exp_portfolio\""));
        assert!(json.contains("\"racing_worker_invariant\": true"));
        assert!(json.contains("\"members\""));
    }

    #[test]
    fn smoke_service_warm_beats_cold_and_stays_deterministic() {
        let report = service_throughput(&ExperimentScale::smoke(), 2);
        assert_eq!(report.warm.requests, report.modules * report.rounds);
        assert_eq!(report.cold.requests, report.warm.requests);
        // The acceptance invariants: a warm persistent service amortizes
        // its cache across requests — strictly higher hit-rate and fewer
        // estimator runs than cold per-request services — and responses
        // stay bit-identical across worker counts and submission orders.
        assert!(
            report.warm.hit_rate > report.cold.hit_rate,
            "warm hit-rate {} must beat cold {}",
            report.warm.hit_rate,
            report.cold.hit_rate
        );
        assert!(
            report.warm.evaluations < report.cold.evaluations,
            "cross-request warmth must save estimator runs: {} vs {}",
            report.warm.evaluations,
            report.cold.evaluations
        );
        assert!(report.determinism_invariant);
        let (completed, stopped, skipped, rejected) = report.statuses;
        assert_eq!(completed, report.warm.requests);
        assert_eq!(stopped + skipped + rejected, 0);
        assert!(report.warm.geomean_speedup > 0.0);
        assert_eq!(report.warm.geomean_speedup, report.cold.geomean_speedup);
        // The aggregated-inference stream: same results bit for bit, with
        // real cross-request coalescing (more than one row per batch).
        assert_eq!(report.batched.requests, report.warm.requests);
        assert!(
            report.batched_fingerprints_match,
            "aggregated inference must not move a bit of any response"
        );
        assert_eq!(report.batched.geomean_speedup, report.warm.geomean_speedup);
        assert!(report.batched_workers >= 4);
        assert!(
            report.rows_per_batch > 1.0,
            "the batched stream must pack more than one row per batch, got {}",
            report.rows_per_batch
        );
        let printed = report.to_string();
        assert!(printed.contains("warm-service"));
        assert!(printed.contains("batched-service"));
        assert!(printed.contains("rows/batch"));
        assert!(printed.contains("bit-identical"));
        let json = report.to_json();
        assert!(json.contains("\"exp_service\""));
        assert!(json.contains("\"hit_rate\""));
        assert!(json.contains("\"rows_per_batch\""));
        assert!(json.contains("\"batched_fingerprints_match\": true"));
    }

    #[test]
    fn smoke_load_test_reports_tails_and_keeps_the_bounded_queue_flat() {
        let report = load_test(&ExperimentScale::smoke(), 2);
        assert!(report.requests >= report.burst);
        assert!(report.burst > report.queue_capacity);
        let (completed, stopped, skipped, rejected) = report.statuses;
        assert_eq!(
            completed + stopped + skipped + rejected,
            report.requests,
            "every submitted request must be answered"
        );
        assert!(completed > 0);
        assert!(report.geomean_speedup > 0.0);
        // The tail-latency surface is populated (bucket upper bounds are
        // never zero once a sample lands).
        assert!(report.metrics.queue_p99_s > 0.0);
        assert!(report.metrics.service_p99_s > 0.0);
        assert!(report.metrics.queue_p99_s >= report.metrics.queue_p50_s);
        // Bounded-queue memory stays flat under the burst: the high-water
        // mark never exceeds the capacity, while the unbounded service
        // replaying the same arrivals queues at least as much.
        assert!(report.metrics.queue_high_water <= report.queue_capacity as u64);
        assert!(report.unbounded_high_water >= report.metrics.queue_high_water);
        let printed = report.to_string();
        assert!(printed.contains("queue latency"));
        assert!(printed.contains("p99"));
        assert!(printed.contains("backpressure keeps the burst flat"));
        let json = report.to_json();
        assert!(json.contains("\"exp_load\""));
        assert!(json.contains("\"queue_p99_s\""));
        assert!(json.contains("\"service_p99_s\""));
        assert!(json.contains("\"unbounded_high_water\""));
    }

    #[test]
    fn smoke_online_learning_swaps_and_keeps_per_version_determinism() {
        let report = online_learning(&ExperimentScale::smoke(), 2);
        // The loop must close: the trainer published at least one version
        // from served traffic, and the served version advanced.
        assert!(report.swaps >= 1, "no policy version was ever published");
        assert!(report.post_version >= 1);
        assert!(report.train_steps >= 1);
        assert!(report.experiences_accepted >= 1);
        // Per-version determinism and admission pinning.
        assert!(report.pre_fingerprints_stable);
        assert!(report.post_fingerprints_stable);
        assert!(report.versions_pinned);
        // The promotion gate never lets the served geomean regress.
        assert!(report.post_geomean >= report.pre_geomean * (1.0 - 1e-9));
        let printed = report.to_string();
        assert!(printed.contains("swaps published"));
        assert!(printed.contains("no regression"));
        assert!(printed.contains("bit-identical"));
        assert!(printed.contains("pinned at admission"));
        let json = report.to_json();
        assert!(json.contains("\"exp_online\""));
        assert!(json.contains("\"post_geomean\""));
        assert!(json.contains("\"versions_pinned\": true"));
    }

    #[test]
    fn smoke_overhead_reports_three_measurements() {
        let rows = overhead(&ExperimentScale::smoke());
        assert_eq!(rows.len(), 3);
        for (_, seconds) in &rows {
            assert!(*seconds >= 0.0 && *seconds < 60.0);
        }
    }
}
