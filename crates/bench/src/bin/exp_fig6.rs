//! Regenerates Fig. 6: flat vs multi-discrete action-space training curves.
use mlir_rl_bench::{fig6_action_space, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let figure = fig6_action_space(&scale);
    println!("{figure}");
    println!("{}", figure.to_json());
}
