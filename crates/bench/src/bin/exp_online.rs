//! Prints the online-learning experiment: a served request stream feeds
//! the background trainer through the bounded experience stream, the
//! trainer runs PPO on a private policy clone and hot-swaps gate-passing
//! versions into the registry, and replay phases pin the per-version
//! determinism contract — bit-identical fingerprints when the same
//! (module, spec, seed) stream is replayed at a fixed policy version —
//! plus the promotion gate's no-regression guarantee on the served
//! greedy geomean.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). Pass `--json` for a machine-readable record, and
//! `--trace <path>` to export a Chrome trace of the run (request
//! lifecycles plus `experience_enqueued` / `train_step` / `policy_swap`
//! instants).

use mlir_rl_bench::{cli, export_trace, online_learning_traced, DEFAULT_TRACE_CAPACITY};

fn main() {
    let args = cli::parse(
        "exp_online",
        cli::Accepts {
            json: true,
            trace: true,
        },
    );
    let scale = args.scale();
    let workers = cli::workers_from_env();
    let trace_capacity = args.trace.as_ref().map(|_| DEFAULT_TRACE_CAPACITY);
    let (report, snapshot) = online_learning_traced(&scale, workers, trace_capacity);
    if let (Some(path), Some(snapshot)) = (&args.trace, &snapshot) {
        export_trace(snapshot, path);
    }
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    assert!(
        report.swaps >= 1,
        "the trainer never published a policy version"
    );
    assert!(
        report.post_version >= 1,
        "the served policy version never advanced past 0"
    );
    assert!(
        report.pre_fingerprints_stable,
        "replaying the stream at version 0 changed a response fingerprint"
    );
    assert!(
        report.post_fingerprints_stable,
        "replaying the stream at version {} changed a response fingerprint",
        report.post_version
    );
    assert!(
        report.versions_pinned,
        "a response reported a policy version other than its admission version"
    );
    assert!(
        report.post_geomean >= report.pre_geomean * (1.0 - 1e-9),
        "the promotion gate let a regression through: {} -> {}",
        report.pre_geomean,
        report.post_geomean
    );
}
