//! Prints the batched-inference experiment: rows/sec for batched
//! (blocked-matmul) vs per-vector forward, scratch inference and backward
//! on the MLP backbone and the embedding LSTM, at PPO/beam-realistic layer
//! shapes and batch sizes. Both sides of every comparison compute
//! bit-identical results, so the ratios are pure engine throughput.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`. `--json` prints the machine-readable report instead.

use mlir_rl_bench::{cli, nn_throughput};

fn main() {
    let args = cli::parse(
        "exp_nn_throughput",
        cli::Accepts {
            json: true,
            trace: false,
        },
    );
    let report = nn_throughput(&args.scale());
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
