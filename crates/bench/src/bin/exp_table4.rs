//! Regenerates Table IV: LQCD application speedups (MLIR RL vs Mullapudi).
use mlir_rl_bench::{table4_lqcd, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let table = table4_lqcd(&scale);
    println!("{table}");
    println!("{}", table.to_json());
}
