//! Regenerates the Sec. IV-A action-space size accounting.
use mlir_rl_bench::action_space_size;

fn main() {
    println!("{}", action_space_size());
}
