//! Regenerates Fig. 5: per-operator speedups for MLIR RL, Halide RL,
//! PyTorch and the PyTorch compiler over the MLIR baseline.
use mlir_rl_bench::{fig5_operators, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let table = fig5_operators(&scale);
    println!("{table}");
    println!("{}", table.to_json());
}
