//! Prints the rollout-throughput experiment: serial vs parallel episode
//! collection (steps/sec) and the cost-model cache hit-rate.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) and worker
//! count with `MLIR_RL_WORKERS` (default: available parallelism).

use mlir_rl_bench::{rollout_throughput, ExperimentScale};

fn main() {
    let workers = std::env::var("MLIR_RL_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(mlir_rl_agent::default_rollout_workers)
        .max(1);
    let report = rollout_throughput(&ExperimentScale::from_env(), workers);
    println!("{report}");
}
