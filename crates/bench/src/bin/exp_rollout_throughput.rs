//! Prints the rollout-throughput experiment: serial vs parallel episode
//! collection (steps/sec) and the cost-model cache hit-rate.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). `--json` prints the machine-readable report instead.

use mlir_rl_bench::{cli, rollout_throughput};

fn main() {
    let args = cli::parse(
        "exp_rollout_throughput",
        cli::Accepts {
            json: true,
            trace: false,
        },
    );
    let report = rollout_throughput(&args.scale(), cli::workers_from_env());
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
