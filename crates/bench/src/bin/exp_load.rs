//! Prints the open-loop traffic-hardening experiment: a deterministic
//! arrival process (a back-to-back burst larger than the queue bound, then
//! heavy-tailed pacing, mixing every `SearchSpec` variant across weighted
//! client lanes) replayed against a hardened `OptimizationService`
//! (bounded queue, per-client quotas, weighted fair scheduling) and, for
//! the memory comparison, against an unbounded-queue service. Reports
//! p50/p99 queue and service latency next to the geomean speedup, the
//! overflow/quota counters, and the bounded-vs-unbounded queue high-water
//! marks.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). Pass `--json` for a machine-readable record.

use mlir_rl_bench::{load_test, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::from_env()
    };
    let workers = std::env::var("MLIR_RL_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(mlir_rl_agent::default_rollout_workers)
        .max(1);
    let report = load_test(&scale, workers);
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    assert!(
        report.metrics.queue_p99_s > 0.0 && report.metrics.service_p99_s > 0.0,
        "latency histograms must be populated"
    );
    assert!(
        report.metrics.queue_high_water <= report.queue_capacity as u64,
        "bounded queue must stay flat under the burst"
    );
}
