//! Prints the open-loop traffic-hardening experiment: a deterministic
//! arrival process (a back-to-back burst larger than the queue bound, then
//! heavy-tailed pacing, mixing every `SearchSpec` variant across weighted
//! client lanes) replayed against a hardened `OptimizationService`
//! (bounded queue, per-client quotas, weighted fair scheduling) and, for
//! the memory comparison, against an unbounded-queue service. Reports
//! p50/p99 queue and service latency next to the geomean speedup, the
//! overflow/quota counters, and the bounded-vs-unbounded queue high-water
//! marks.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). Pass `--json` for a machine-readable record, and
//! `--trace <path>` to record a structured trace of the bounded run and
//! export it as Chrome trace-event JSON (a tracing summary with the
//! measured recorder overhead goes to stderr).

use mlir_rl_bench::{cli, export_trace, load_test_traced, DEFAULT_TRACE_CAPACITY};

fn main() {
    let args = cli::parse(
        "exp_load",
        cli::Accepts {
            json: true,
            trace: true,
        },
    );
    let scale = args.scale();
    let workers = cli::workers_from_env();
    let trace_capacity = args.trace.as_ref().map(|_| DEFAULT_TRACE_CAPACITY);
    let (report, snapshot) = load_test_traced(&scale, workers, trace_capacity);
    if let (Some(path), Some(snapshot)) = (&args.trace, &snapshot) {
        export_trace(snapshot, path);
    }
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    assert!(
        report.metrics.queue_p99_s > 0.0 && report.metrics.service_p99_s > 0.0,
        "latency histograms must be populated"
    );
    assert!(
        report.metrics.queue_high_water <= report.queue_capacity as u64,
        "bounded queue must stay flat under the burst"
    );
}
