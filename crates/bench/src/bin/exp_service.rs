//! Prints the request-stream serving experiment: a sustained stream of
//! `OptimizationRequest`s (greedy / beam / widened-MCTS / random specs over
//! the DL-operator evaluation workloads) served by one **warm persistent**
//! `OptimizationService` vs **cold per-request** services, with the
//! cross-request shared-cache hit-rate gap, request throughput, queue and
//! service timings, and the request-level determinism check (response
//! fingerprints bit-identical across 1/2/4 workers and shuffled submission
//! orders).
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). Pass `--json` for a machine-readable record.

use mlir_rl_bench::{service_throughput, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::from_env()
    };
    let workers = std::env::var("MLIR_RL_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(mlir_rl_agent::default_rollout_workers)
        .max(1);
    let report = service_throughput(&scale, workers);
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    assert!(
        report.determinism_invariant,
        "service responses diverged across worker counts / submission orders"
    );
}
