//! Prints the request-stream serving experiment: a sustained stream of
//! `OptimizationRequest`s (greedy / beam / widened-MCTS / random specs over
//! the DL-operator evaluation workloads) served by one **warm persistent**
//! `OptimizationService`, the same service with **cross-request inference
//! batching** (one shared `Tensor2` pipeline under the workers), a fresh
//! service that **restored** the warm cache's snapshot at startup, a
//! **tiny-cache** service under forced entry-wise eviction, and
//! **cold per-request** services — with the cross-request shared-cache
//! hit-rate gap, request throughput, mean aggregator rows-per-batch, queue
//! and service timings, and the determinism checks (response fingerprints
//! bit-identical across 1/2/4 workers and shuffled submission orders, and
//! batched / restored / tiny-cache streams bit-identical to the warm
//! stream response for response).
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). Pass `--json` for a machine-readable record, and
//! `--trace <path>` to record a structured trace of the batched run —
//! request lifecycles plus `batch_formed` instants — and export it as
//! Chrome trace-event JSON.

use mlir_rl_bench::{cli, export_trace, service_throughput_traced, DEFAULT_TRACE_CAPACITY};

fn main() {
    let args = cli::parse(
        "exp_service",
        cli::Accepts {
            json: true,
            trace: true,
        },
    );
    let scale = args.scale();
    let workers = cli::workers_from_env();
    let trace_capacity = args.trace.as_ref().map(|_| DEFAULT_TRACE_CAPACITY);
    let (report, snapshot) = service_throughput_traced(&scale, workers, trace_capacity);
    if let (Some(path), Some(snapshot)) = (&args.trace, &snapshot) {
        export_trace(snapshot, path);
    }
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    assert!(
        report.determinism_invariant,
        "service responses diverged across worker counts / submission orders"
    );
    assert!(
        report.batched_fingerprints_match,
        "aggregated inference changed a response vs the unbatched stream"
    );
    assert!(
        report.rows_per_batch > 1.0,
        "the aggregator failed to coalesce: {} rows per batch",
        report.rows_per_batch
    );
    assert!(
        report.restored_entries > 0,
        "the warm restart restored no cache entries"
    );
    assert!(
        report.restored_fingerprints_match,
        "snapshot/restore changed a response vs the warm stream"
    );
    assert!(
        report.restored.hit_rate > report.cold.hit_rate,
        "warm restart must beat the cold hit-rate: {} vs {}",
        report.restored.hit_rate,
        report.cold.hit_rate
    );
    assert!(
        report.tiny_cache_evictions > 0,
        "the tiny-cache stream never evicted"
    );
    assert!(
        report.tiny_fingerprints_match,
        "entry-wise eviction changed a response vs the warm stream"
    );
}
