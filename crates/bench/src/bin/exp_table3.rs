//! Regenerates Table III: neural-network model speedups.
use mlir_rl_bench::{table3_models, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let table = table3_models(&scale);
    println!("{table}");
    println!("{}", table.to_json());
}
