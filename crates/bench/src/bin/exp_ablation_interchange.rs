//! Regenerates the Sec. VII-D interchange ablation: level pointers vs
//! enumerated candidates.
use mlir_rl_bench::{ablation_interchange, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let table = ablation_interchange(&scale);
    println!("{table}");
    println!("{}", table.to_json());
}
