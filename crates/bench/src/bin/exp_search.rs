//! Prints the schedule-search experiment: speedup per searcher (greedy
//! decode, beam, MCTS, random, and the vendor/Mullapudi comparison systems)
//! on the standard DL-operator workloads, with each searcher's evaluation
//! budget and the batch-wide shared-cache hit-rate.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism).

use mlir_rl_bench::{cli, search_speedups};

fn main() {
    let args = cli::parse("exp_search", cli::Accepts::default());
    let report = search_speedups(&args.scale(), cli::workers_from_env());
    println!("{report}");
}
