//! Prints the schedule-search experiment: speedup per searcher (greedy
//! decode, beam, MCTS, random, and the vendor/Mullapudi comparison systems)
//! on the standard DL-operator workloads, with each searcher's evaluation
//! budget and the batch-wide shared-cache hit-rate.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism).

use mlir_rl_bench::{search_speedups, ExperimentScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::from_env()
    };
    let workers = std::env::var("MLIR_RL_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(mlir_rl_agent::default_rollout_workers)
        .max(1);
    let report = search_speedups(&scale, workers);
    println!("{report}");
}
