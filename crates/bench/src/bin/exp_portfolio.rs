//! Prints the portfolio-search experiment: each roster member (greedy
//! decode, beam, progressively-widened MCTS, random) run independently vs
//! the same roster as a round-robin and a racing [`mlir_rl_search::Portfolio`]
//! on one shared evaluation cache — per-module speedups, per-member win
//! counts and spend, evals-to-target for the racing winner, and the
//! bit-identical-across-worker-counts determinism check.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). Pass `--json` for a machine-readable record.

use mlir_rl_bench::{portfolio_speedups, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::from_env()
    };
    let workers = std::env::var("MLIR_RL_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(mlir_rl_agent::default_rollout_workers)
        .max(1);
    let report = portfolio_speedups(&scale, workers);
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
