//! Prints the portfolio-search experiment: each roster member (greedy
//! decode, beam, progressively-widened MCTS, random) run independently vs
//! the same roster as a round-robin and a racing [`mlir_rl_search::Portfolio`]
//! on one shared evaluation cache — per-module speedups, per-member win
//! counts and spend, evals-to-target for the racing winner, and the
//! bit-identical-across-worker-counts determinism check.
//!
//! Scale with `MLIR_RL_SCALE` (`smoke` / `standard` / `full`) or pass
//! `--smoke`; worker count with `MLIR_RL_WORKERS` (default: available
//! parallelism). Pass `--json` for a machine-readable record.

use mlir_rl_bench::{cli, portfolio_speedups};

fn main() {
    let args = cli::parse(
        "exp_portfolio",
        cli::Accepts {
            json: true,
            trace: false,
        },
    );
    let report = portfolio_speedups(&args.scale(), cli::workers_from_env());
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}
