//! Regenerates the Sec. VII-B compilation-pass overhead measurements.
use mlir_rl_bench::{overhead, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Compilation-pass overhead (Sec. VII-B) ==");
    for (label, seconds) in overhead(&scale) {
        println!("{label:<60} {seconds:>12.6}");
    }
}
