//! Runs every experiment at the configured scale and prints all tables and
//! figures (the analogue of the artifact's `scripts/paper.sh`).
use mlir_rl_bench::*;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("{}", action_space_size());
    let (t2, t5) = datasets();
    println!("{t2}\n{t5}");
    println!("{}", fig5_operators(&scale));
    println!("{}", table3_models(&scale));
    println!("{}", table4_lqcd(&scale));
    println!("{}", ablation_interchange(&scale));
    println!("{}", fig6_action_space(&scale));
    let (f7a, f7b) = fig7_reward_modes(&scale);
    println!("{f7a}\n{f7b}");
    for (label, seconds) in overhead(&scale) {
        println!("{label:<60} {seconds:>12.6}");
    }
}
