//! Regenerates Fig. 7: immediate vs final reward training curves, over
//! iterations and over training cost (code executions).
use mlir_rl_bench::{fig7_reward_modes, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    let (by_iteration, by_time) = fig7_reward_modes(&scale);
    println!("{by_iteration}");
    println!("{by_time}");
    println!("{}", by_iteration.to_json());
    println!("{}", by_time.to_json());
}
