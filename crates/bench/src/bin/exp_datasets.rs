//! Regenerates Table II (dataset composition) and Table V (model
//! composition).
use mlir_rl_bench::datasets;

fn main() {
    let (table2, table5) = datasets();
    println!("{table2}");
    println!("{table5}");
}
