//! Criterion bench behind the Sec. VII-B overhead numbers: policy inference
//! per observation and transformation application per operation.
use criterion::{criterion_group, criterion_main, Criterion};
use mlir_rl_agent::{PolicyHyperparams, PolicyNetwork};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{EnvConfig, OptimizationEnv};
use mlir_rl_ir::OpId;
use mlir_rl_transforms::{ScheduledModule, Transformation};
use mlir_rl_workloads::dl_ops;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_overhead(c: &mut Criterion) {
    let module = dl_ops::matmul_module(256, 256, 1024);
    let config = EnvConfig::small();
    let mut env = OptimizationEnv::new(
        config.clone(),
        CostModel::new(MachineModel::xeon_e5_2680_v4()),
    );
    let obs = env.reset(module.clone()).expect("module has one op");
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut policy = PolicyNetwork::new(config, PolicyHyperparams::default(), &mut rng);

    let mut group = c.benchmark_group("overhead");
    group.bench_function("policy_inference", |b| {
        b.iter(|| policy.select_action(&obs, false, &mut rng).log_prob)
    });
    group.bench_function("transformation_application", |b| {
        b.iter(|| {
            let mut sm = ScheduledModule::new(module.clone());
            sm.apply(
                OpId(0),
                Transformation::TiledParallelization {
                    tile_sizes: vec![32, 32, 64],
                },
            )
            .unwrap();
            sm.apply(OpId(0), Transformation::Vectorization).unwrap();
            sm.lower_all().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
