//! Criterion bench behind Figs. 6 and 7: one PPO training iteration under
//! the multi-discrete/flat action spaces and the final/immediate reward
//! modes.
use criterion::{criterion_group, criterion_main, Criterion};
use mlir_rl_agent::{PolicyHyperparams, PpoConfig, PpoTrainer};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{EnvConfig, OptimizationEnv, RewardMode};
use mlir_rl_workloads::dl_ops;

fn bench_training(c: &mut Criterion) {
    let dataset = dl_ops::training_dataset(0.005, 3);
    let hyper = PolicyHyperparams {
        hidden_size: 16,
        backbone_layers: 1,
    };
    let ppo = PpoConfig {
        trajectories_per_iteration: 2,
        minibatch_size: 4,
        update_epochs: 1,
        ..PpoConfig::paper()
    };

    let mut group = c.benchmark_group("training_iteration");
    group.sample_size(10);
    for (name, mode) in [
        ("final_reward", RewardMode::Final),
        ("immediate_reward", RewardMode::Immediate),
    ] {
        group.bench_function(name, |b| {
            let mut config = EnvConfig::small();
            config.reward_mode = mode;
            let mut env = OptimizationEnv::new(
                config.clone(),
                CostModel::new(MachineModel::xeon_e5_2680_v4()),
            );
            let mut trainer = PpoTrainer::new(&config, hyper, ppo, 0);
            b.iter(|| trainer.train_iteration(&mut env, &dataset).mean_speedup)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
