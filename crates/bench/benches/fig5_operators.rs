//! Criterion bench behind Fig. 5: scheduling and evaluating each DL operator
//! family with the baselines and with one greedy pass of the RL policy.
use criterion::{criterion_group, criterion_main, Criterion};
use mlir_rl_baselines::{Baseline, HalideRl, VendorLibrary, VendorMode};
use mlir_rl_bench::{train_mlir_rl, ExperimentScale};
use mlir_rl_costmodel::MachineModel;
use mlir_rl_env::EnvConfig;
use mlir_rl_workloads::dl_ops;

fn bench_fig5(c: &mut Criterion) {
    let machine = MachineModel::xeon_e5_2680_v4();
    let matmul = dl_ops::matmul_module(512, 512, 1024);
    let conv = dl_ops::conv2d_module(1, 64, 56, 56, 64, 3, 1);

    let mut group = c.benchmark_group("fig5_operators");
    group.sample_size(10);
    group.bench_function("vendor_schedule_matmul", |b| {
        let vendor = VendorLibrary::new(VendorMode::Compiled);
        b.iter(|| mlir_rl_baselines::evaluate(&vendor.optimize(&matmul), &machine))
    });
    group.bench_function("halide_rl_schedule_conv2d", |b| {
        let halide = HalideRl::new();
        b.iter(|| mlir_rl_baselines::evaluate(&halide.optimize(&conv), &machine))
    });
    group.bench_function("mlir_rl_greedy_optimize_matmul", |b| {
        let scale = ExperimentScale::smoke();
        let mut rl = train_mlir_rl(EnvConfig::small(), std::slice::from_ref(&matmul), &scale, 1);
        b.iter(|| rl.optimize(&matmul).speedup)
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
