//! Criterion bench behind Table IV: scheduling and evaluating the LQCD
//! correlator applications.
use criterion::{criterion_group, criterion_main, Criterion};
use mlir_rl_baselines::{Baseline, MullapudiAutoscheduler};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_workloads::LqcdApplication;

fn bench_table4(c: &mut Criterion) {
    let machine = MachineModel::xeon_e5_2680_v4();
    let mut group = c.benchmark_group("table4_lqcd");
    group.sample_size(10);
    for app in LqcdApplication::ALL {
        let module = app.module();
        group.bench_function(format!("baseline_estimate_{}", app.name()), |b| {
            let cm = CostModel::new(machine.clone());
            b.iter(|| cm.estimate_baseline(&module).total_s)
        });
        group.bench_function(format!("mullapudi_schedule_{}", app.name()), |b| {
            let mullapudi = MullapudiAutoscheduler::new();
            b.iter(|| mlir_rl_baselines::evaluate(&mullapudi.optimize(&module), &machine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
