//! Criterion bench behind the interchange ablation: level-pointer
//! (Plackett-Luce) permutation sampling against enumerated-candidate
//! selection.
use criterion::{criterion_group, criterion_main, Criterion};
use mlir_rl_agent::{permutation_log_prob, sample_permutation};
use mlir_rl_env::enumerated_candidates;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_interchange(c: &mut Criterion) {
    let logits: Vec<f64> = (0..12).map(|i| (i as f64) * 0.1 - 0.5).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let mut group = c.benchmark_group("interchange");
    group.bench_function("level_pointers_sample_n12", |b| {
        b.iter(|| sample_permutation(&logits, false, &mut rng).1)
    });
    group.bench_function("level_pointers_log_prob_n12", |b| {
        let perm: Vec<usize> = (0..12).rev().collect();
        b.iter(|| permutation_log_prob(&logits, &perm).0)
    });
    group.bench_function("enumerate_candidates_n12", |b| {
        b.iter(|| enumerated_candidates(12).len())
    });
    group.finish();
}

criterion_group!(benches, bench_interchange);
criterion_main!(benches);
