//! Criterion bench behind Table III: scheduling and evaluating whole neural
//! network models.
use criterion::{criterion_group, criterion_main, Criterion};
use mlir_rl_baselines::{Baseline, VendorLibrary, VendorMode};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_workloads::NeuralNetwork;

fn bench_table3(c: &mut Criterion) {
    let machine = MachineModel::xeon_e5_2680_v4();
    let mut group = c.benchmark_group("table3_models");
    group.sample_size(10);
    for model in NeuralNetwork::ALL {
        let module = model.module();
        group.bench_function(format!("baseline_estimate_{}", model.name()), |b| {
            let cm = CostModel::new(machine.clone());
            b.iter(|| cm.estimate_baseline(&module).total_s)
        });
        group.bench_function(format!("pytorch_compiler_schedule_{}", model.name()), |b| {
            let vendor = VendorLibrary::new(VendorMode::Compiled);
            b.iter(|| mlir_rl_baselines::evaluate(&vendor.optimize(&module), &machine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
