//! Criterion bench for the rollout engine: serial vs parallel episode
//! collection on the seed DL-operator workloads, with the schedule-keyed
//! cost-model cache enabled. The printed report also carries the cache
//! hit-rate and the parallel speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use mlir_rl_agent::default_rollout_workers;
use mlir_rl_bench::{rollout_throughput, ExperimentScale};

fn bench_rollout_throughput(c: &mut Criterion) {
    let scale = ExperimentScale::from_env();
    let workers = default_rollout_workers().max(4);

    let mut group = c.benchmark_group("rollout_throughput");
    group.sample_size(10);
    group.bench_function("serial_vs_parallel", |b| {
        b.iter(|| {
            let report = rollout_throughput(&scale, workers);
            eprintln!("{report}");
            report.parallel_steps_per_sec
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rollout_throughput);
criterion_main!(benches);
