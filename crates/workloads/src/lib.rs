//! # mlir-rl-workloads
//!
//! Workload and dataset generators for the MLIR RL reproduction:
//!
//! * single deep-learning operators with random shapes (Table II),
//! * random operator sequences of length 5 (Sec. VI-A),
//! * LQCD correlator kernels and the three benchmark applications of
//!   Table IV (Sec. VI-B),
//! * the ResNet-18 / MobileNetV2 / VGG model graphs of Table III and V,
//! * the combined training dataset (3959 examples at full scale).

#![warn(missing_docs)]

pub mod dl_ops;
pub mod lqcd;
pub mod models;
pub mod sequences;

use mlir_rl_ir::Module;

pub use dl_ops::{evaluation_benchmark, DlOperator};
pub use lqcd::LqcdApplication;
pub use models::NeuralNetwork;

/// Assembles the combined training dataset: single DL operators, random DL
/// operator sequences and LQCD kernels. At `scale = 1.0` this matches the
/// paper's 3959 examples (1135 single operators + 2133 sequences + 691 LQCD
/// kernels); smaller scales shrink every part proportionally so the harness
/// can train on one machine.
///
/// # Panics
///
/// Panics if `scale` is not in `(0, 1]`.
pub fn full_training_dataset(scale: f64, seed: u64) -> Vec<Module> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let mut out = dl_ops::training_dataset(scale, seed);
    let sequences_full = 3959 - 1135 - 691;
    let seq_count = ((sequences_full as f64 * scale).round() as usize).max(1);
    out.extend(sequences::sequence_dataset(seq_count, seed.wrapping_add(1)));
    out.extend(lqcd::training_dataset(scale, seed.wrapping_add(2)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_dataset_scales_to_the_paper_size() {
        // Count without generating everything: the composition adds up.
        let dl: usize = dl_ops::DlOperator::ALL
            .iter()
            .map(|k| k.paper_training_count())
            .sum();
        assert_eq!(dl + 2133 + 691, 3959);
        // A tiny scale still produces a usable mixed dataset.
        let ds = full_training_dataset(0.005, 1);
        assert!(ds.len() >= 8);
        for m in &ds {
            m.validate().unwrap();
        }
    }
}
