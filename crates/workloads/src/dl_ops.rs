//! Deep-learning single-operator workloads (Sec. VI-A, Table II).
//!
//! The paper collects the most frequent operators from 121 TensorFlow Hub /
//! Hugging Face models and generates shape variants of each: matrix
//! multiplication, 2-D convolution, max pooling, matrix addition and ReLU.
//! This module generates the same operator families with seeded random
//! shapes for training, plus a fixed set of ResNet-style evaluation shapes
//! that are *not* drawn from the training distribution (Sec. VII-A-2).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use mlir_rl_ir::{Module, ModuleBuilder};

/// The operator families of the single-operator dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DlOperator {
    /// Matrix multiplication.
    Matmul,
    /// 2-D convolution.
    Conv2D,
    /// Max pooling.
    MaxPooling,
    /// Elementwise matrix addition.
    MatrixAddition,
    /// ReLU activation.
    Relu,
}

impl DlOperator {
    /// All families, in the order of Table II.
    pub const ALL: [DlOperator; 5] = [
        DlOperator::Matmul,
        DlOperator::Conv2D,
        DlOperator::MaxPooling,
        DlOperator::MatrixAddition,
        DlOperator::Relu,
    ];

    /// Number of training examples of this family in the paper's dataset
    /// (Table II).
    pub fn paper_training_count(self) -> usize {
        match self {
            DlOperator::Matmul => 187,
            DlOperator::Conv2D => 278,
            DlOperator::MaxPooling => 250,
            DlOperator::MatrixAddition => 271,
            DlOperator::Relu => 149,
        }
    }

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            DlOperator::Matmul => "Matmul",
            DlOperator::Conv2D => "Conv2D",
            DlOperator::MaxPooling => "Maxpooling",
            DlOperator::MatrixAddition => "Add",
            DlOperator::Relu => "ReLU",
        }
    }
}

fn pick(rng: &mut ChaCha8Rng, choices: &[u64]) -> u64 {
    choices[rng.gen_range(0..choices.len())]
}

/// Generates one random training example of the given operator family.
pub fn random_operator(kind: DlOperator, rng: &mut ChaCha8Rng) -> Module {
    match kind {
        DlOperator::Matmul => {
            let m = pick(rng, &[32, 64, 128, 256, 512, 768, 1024]);
            let k = pick(rng, &[64, 128, 256, 512, 768, 1024]);
            let n = pick(rng, &[32, 64, 128, 256, 512, 1024]);
            matmul_module(m, n, k)
        }
        DlOperator::Conv2D => {
            let c = pick(rng, &[3, 16, 32, 64, 128]);
            let f = pick(rng, &[16, 32, 64, 128, 256]);
            let hw = pick(rng, &[14, 28, 56, 112]);
            let k = pick(rng, &[1, 3, 5]);
            let stride = pick(rng, &[1, 2]);
            conv2d_module(1, c, hw, hw, f, k, stride)
        }
        DlOperator::MaxPooling => {
            let c = pick(rng, &[16, 32, 64, 128, 256]);
            let hw = pick(rng, &[14, 28, 56, 112]);
            let w = pick(rng, &[2, 3]);
            maxpool_module(1, c, hw, hw, w, 2)
        }
        DlOperator::MatrixAddition => {
            let rows = pick(rng, &[64, 128, 256, 512, 1024]);
            let cols = pick(rng, &[64, 128, 256, 512, 1024, 2048]);
            add_module(rows, cols)
        }
        DlOperator::Relu => {
            let rows = pick(rng, &[64, 128, 256, 512, 1024]);
            let cols = pick(rng, &[64, 128, 256, 512, 1024, 4096]);
            relu_module(rows, cols)
        }
    }
}

/// A single matmul module `C[MxN] = A[MxK] * B[KxN]`.
pub fn matmul_module(m: u64, n: u64, k: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("matmul_{m}x{n}x{k}"));
    let a = b.argument("A", vec![m, k]);
    let w = b.argument("B", vec![k, n]);
    b.matmul(a, w);
    b.finish()
}

/// A single NCHW conv2d module.
pub fn conv2d_module(n: u64, c: u64, h: u64, w: u64, f: u64, kernel: u64, stride: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("conv2d_{c}x{h}x{w}_f{f}k{kernel}s{stride}"));
    let x = b.argument("x", vec![n, c, h, w]);
    let filt = b.argument("w", vec![f, c, kernel, kernel]);
    b.conv2d(x, filt, stride);
    b.finish()
}

/// A single max-pooling module.
pub fn maxpool_module(n: u64, c: u64, h: u64, w: u64, window: u64, stride: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("maxpool_{c}x{h}x{w}_w{window}s{stride}"));
    let x = b.argument("x", vec![n, c, h, w]);
    b.max_pool(x, window, stride);
    b.finish()
}

/// A single elementwise-addition module.
pub fn add_module(rows: u64, cols: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("add_{rows}x{cols}"));
    let x = b.argument("x", vec![rows, cols]);
    let y = b.argument("y", vec![rows, cols]);
    b.add(x, y);
    b.finish()
}

/// A single ReLU module.
pub fn relu_module(rows: u64, cols: u64) -> Module {
    let mut b = ModuleBuilder::new(format!("relu_{rows}x{cols}"));
    let x = b.argument("x", vec![rows, cols]);
    b.relu(x);
    b.finish()
}

/// Generates the single-operator training dataset.
///
/// `scale` in `(0, 1]` shrinks every family count proportionally so that the
/// harness can train on a laptop; `scale = 1.0` reproduces the Table II
/// counts (1135 examples).
///
/// # Panics
///
/// Panics if `scale` is not in `(0, 1]`.
pub fn training_dataset(scale: f64, seed: u64) -> Vec<Module> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for kind in DlOperator::ALL {
        let count = ((kind.paper_training_count() as f64 * scale).round() as usize).max(1);
        for _ in 0..count {
            out.push(random_operator(kind, &mut rng));
        }
    }
    out
}

/// Per-family counts of a dataset generated by [`training_dataset`]
/// (reproduces Table II when `scale = 1.0`).
pub fn dataset_composition(scale: f64) -> Vec<(DlOperator, usize)> {
    DlOperator::ALL
        .iter()
        .map(|k| {
            (
                *k,
                ((k.paper_training_count() as f64 * scale).round() as usize).max(1),
            )
        })
        .collect()
}

/// The evaluation benchmark of Sec. VII-A-2: operator shapes taken from
/// widely used models (ResNet-style), not seen during training. Returns
/// `(family, module)` pairs.
pub fn evaluation_benchmark() -> Vec<(DlOperator, Module)> {
    let mut out = Vec::new();
    // Matmul: classifier and transformer-style projections.
    for (m, n, k) in [(1, 1000, 512), (64, 4096, 1024), (512, 512, 2048)] {
        out.push((DlOperator::Matmul, matmul_module(m, n, k)));
    }
    // Conv2D: ResNet stage shapes.
    for (c, hw, f, k, s) in [(3, 224, 64, 7, 2), (64, 56, 64, 3, 1), (256, 14, 512, 3, 2)] {
        out.push((DlOperator::Conv2D, conv2d_module(1, c, hw, hw, f, k, s)));
    }
    // Max pooling.
    for (c, hw, w, s) in [(64, 112, 3, 2), (256, 28, 2, 2), (512, 14, 2, 2)] {
        out.push((DlOperator::MaxPooling, maxpool_module(1, c, hw, hw, w, s)));
    }
    // Add (residual connections flattened to 2-D).
    for (r, c) in [(256, 3136), (512, 784), (1024, 196)] {
        out.push((DlOperator::MatrixAddition, add_module(r, c)));
    }
    // ReLU.
    for (r, c) in [(64, 12544), (256, 3136), (1024, 196)] {
        out.push((DlOperator::Relu, relu_module(r, c)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_table_ii() {
        let total: usize = DlOperator::ALL
            .iter()
            .map(|k| k.paper_training_count())
            .sum();
        assert_eq!(total, 1135);
        assert_eq!(DlOperator::Matmul.paper_training_count(), 187);
        assert_eq!(DlOperator::Conv2D.paper_training_count(), 278);
    }

    #[test]
    fn generated_modules_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for kind in DlOperator::ALL {
            for _ in 0..5 {
                let m = random_operator(kind, &mut rng);
                m.validate().unwrap();
                assert_eq!(m.ops().len(), 1);
            }
        }
    }

    #[test]
    fn training_dataset_scales() {
        let small = training_dataset(0.01, 3);
        assert!(small.len() >= 5 && small.len() < 30);
        for m in &small {
            m.validate().unwrap();
        }
        let composition = dataset_composition(1.0);
        let total: usize = composition.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 1135);
    }

    #[test]
    fn training_dataset_is_reproducible() {
        let a = training_dataset(0.02, 9);
        let b = training_dataset(0.02, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
        }
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        training_dataset(0.0, 0);
    }

    #[test]
    fn evaluation_benchmark_covers_all_families() {
        let bench = evaluation_benchmark();
        for kind in DlOperator::ALL {
            assert!(
                bench.iter().filter(|(k, _)| *k == kind).count() >= 3,
                "family {kind:?} needs at least 3 evaluation shapes"
            );
        }
        for (_, m) in &bench {
            m.validate().unwrap();
        }
    }
}
