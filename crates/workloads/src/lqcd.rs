//! LQCD (Lattice Quantum Chromodynamics) workloads (Sec. VI-B, VII-A-2).
//!
//! LQCD correlator codes are long sequences of deep loop nests (often more
//! than 12 levels) that read and write tensors, with parallel outer loops
//! and reductions in the inner levels (sums over color and spin indices).
//! The paper integrates MLIR RL as a backend of an LQCD DSL compiler and
//! evaluates on three correlator applications of increasing complexity:
//! dibaryon–dibaryon, dibaryon–hexaquark and hexaquark–hexaquark.
//!
//! This module generates structurally equivalent contraction kernels: deep
//! generic operations over a spacetime extent `S`, color extent 3 and spin
//! extent 4, with inner reductions and multiple tensor operands.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mlir_rl_ir::{AffineMap, ArithCounts, IteratorType, Module, ModuleBuilder};

/// Color extent of QCD tensors.
pub const COLOR: u64 = 3;
/// Spin extent of QCD tensors.
pub const SPIN: u64 = 4;

/// Builds one correlator-style contraction: `depth` loops of which the first
/// `parallel_levels` are parallel (spacetime/source indices of extent
/// `spatial_extent`) and the rest are reductions over color/spin indices.
/// The operation reads `num_inputs` tensors, each indexed by a distinct
/// subset of the iterators, and accumulates into a tensor indexed by the
/// parallel iterators.
///
/// # Panics
///
/// Panics if `parallel_levels == 0` or `parallel_levels >= depth`.
pub fn contraction_kernel(
    builder: &mut ModuleBuilder,
    spatial_extent: u64,
    depth: usize,
    parallel_levels: usize,
    num_inputs: usize,
) {
    assert!(parallel_levels > 0, "need at least one parallel level");
    assert!(parallel_levels < depth, "need at least one reduction level");

    // Loop extents: parallel spacetime loops of extent `spatial_extent`,
    // then alternating color/spin reduction loops.
    let mut bounds = Vec::with_capacity(depth);
    let mut iterator_types = Vec::with_capacity(depth);
    for i in 0..depth {
        if i < parallel_levels {
            bounds.push(spatial_extent);
            iterator_types.push(IteratorType::Parallel);
        } else {
            bounds.push(if (i - parallel_levels).is_multiple_of(2) {
                COLOR
            } else {
                SPIN
            });
            iterator_types.push(IteratorType::Reduction);
        }
    }

    // Each input tensor is indexed by a sliding window of iterators so that
    // different inputs share some iterators (creating reuse) but not all.
    let mut inputs = Vec::new();
    let mut maps = Vec::new();
    let rank = (depth / 2).clamp(2, 6);
    for t in 0..num_inputs {
        let start = (t * 2) % (depth - rank + 1);
        let dims: Vec<usize> = (start..start + rank).collect();
        let shape: Vec<u64> = dims.iter().map(|d| bounds[*d]).collect();
        let arg = builder.argument(&format!("prop{t}"), shape);
        inputs.push(arg);
        maps.push(AffineMap::projection(depth, &dims));
    }
    // Output indexed by the parallel iterators.
    let out_dims: Vec<usize> = (0..parallel_levels).collect();
    let out_shape: Vec<u64> = out_dims.iter().map(|d| bounds[*d]).collect();
    maps.push(AffineMap::projection(depth, &out_dims));

    builder.generic(
        inputs,
        bounds,
        iterator_types,
        maps,
        out_shape,
        ArithCounts {
            add: 1,
            mul: num_inputs.max(1) as u32,
            ..Default::default()
        },
    );
}

/// One standalone LQCD training kernel: a module holding a single deep
/// contraction.
pub fn lqcd_kernel(
    spatial_extent: u64,
    depth: usize,
    parallel_levels: usize,
    num_inputs: usize,
) -> Module {
    let mut b = ModuleBuilder::new(format!(
        "lqcd_kernel_s{spatial_extent}_d{depth}_p{parallel_levels}"
    ));
    contraction_kernel(&mut b, spatial_extent, depth, parallel_levels, num_inputs);
    b.finish()
}

/// Generates the LQCD training dataset: shape variants of the seven
/// compiler-test loop-nest patterns (the paper extracts 691 variants).
///
/// `scale` in `(0, 1]` shrinks the count for laptop-scale training.
///
/// # Panics
///
/// Panics if `scale` is not in `(0, 1]`.
pub fn training_dataset(scale: f64, seed: u64) -> Vec<Module> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let count = ((691.0 * scale).round() as usize).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // The seven structural patterns (depth, parallel levels, inputs).
    let patterns: [(usize, usize, usize); 7] = [
        (6, 2, 2),
        (8, 2, 3),
        (8, 3, 2),
        (10, 3, 3),
        (10, 4, 4),
        (12, 4, 3),
        (12, 5, 4),
    ];
    (0..count)
        .map(|i| {
            let (depth, parallel, inputs) = patterns[i % patterns.len()];
            let s = [8u64, 12, 16, 24, 32][rng.gen_range(0..5usize)];
            lqcd_kernel(s, depth, parallel, inputs)
        })
        .collect()
}

/// The three LQCD benchmark applications of Table IV. Each is a sequence of
/// correlator contractions of increasing depth and operand count; `S` is the
/// input (spacetime) size used in the paper's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LqcdApplication {
    /// Two two-baryon (six-quark) systems, S = 24.
    DibaryonDibaryon,
    /// A two-baryon system against a six-quark exotic, S = 32.
    DibaryonHexaquark,
    /// Two six-quark states (the heaviest correlators), S = 12.
    HexaquarkHexaquark,
}

impl LqcdApplication {
    /// All applications in the order of Table IV.
    pub const ALL: [LqcdApplication; 3] = [
        LqcdApplication::HexaquarkHexaquark,
        LqcdApplication::DibaryonDibaryon,
        LqcdApplication::DibaryonHexaquark,
    ];

    /// The input size `S` used by the paper.
    pub fn input_size(self) -> u64 {
        match self {
            LqcdApplication::DibaryonDibaryon => 24,
            LqcdApplication::DibaryonHexaquark => 32,
            LqcdApplication::HexaquarkHexaquark => 12,
        }
    }

    /// Display name matching Table IV.
    pub fn name(self) -> &'static str {
        match self {
            LqcdApplication::DibaryonDibaryon => "dibaryon-dibaryon",
            LqcdApplication::DibaryonHexaquark => "dibaryon-hexaquark",
            LqcdApplication::HexaquarkHexaquark => "hexaquark-hexaquark",
        }
    }

    /// Builds the application's module: a sequence of contraction kernels of
    /// increasing depth (the heaviest application has the deepest nests and
    /// the most operands).
    pub fn module(self) -> Module {
        let s = self.input_size();
        let (kernels, max_depth, inputs): (usize, usize, usize) = match self {
            LqcdApplication::DibaryonDibaryon => (6, 10, 3),
            LqcdApplication::DibaryonHexaquark => (8, 11, 4),
            LqcdApplication::HexaquarkHexaquark => (10, 12, 5),
        };
        let mut b = ModuleBuilder::new(self.name());
        for k in 0..kernels {
            let depth = (max_depth - (k % 3)).max(6);
            let parallel = (depth / 3).max(2);
            contraction_kernel(&mut b, s, depth, parallel, inputs);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_deep_with_inner_reductions() {
        let m = lqcd_kernel(16, 12, 4, 4);
        m.validate().unwrap();
        let op = &m.ops()[0];
        assert_eq!(op.num_loops(), 12);
        assert_eq!(op.parallel_loops().len(), 4);
        assert_eq!(op.reduction_loops().len(), 8);
        // Reductions are in the inner levels.
        assert!(op.reduction_loops().iter().all(|l| *l >= 4));
    }

    #[test]
    fn training_dataset_has_variants_of_the_seven_patterns() {
        let ds = training_dataset(0.02, 11);
        assert!(ds.len() >= 7);
        for m in &ds {
            m.validate().unwrap();
            assert!(m.ops()[0].num_loops() >= 6);
        }
        let full_count = ((691.0f64 * 1.0).round()) as usize;
        assert_eq!(full_count, 691);
    }

    #[test]
    fn applications_match_table_iv_inputs() {
        assert_eq!(LqcdApplication::DibaryonDibaryon.input_size(), 24);
        assert_eq!(LqcdApplication::DibaryonHexaquark.input_size(), 32);
        assert_eq!(LqcdApplication::HexaquarkHexaquark.input_size(), 12);
        assert_eq!(LqcdApplication::ALL.len(), 3);
    }

    #[test]
    fn application_modules_are_valid_and_ordered_by_complexity() {
        let dd = LqcdApplication::DibaryonDibaryon.module();
        let dh = LqcdApplication::DibaryonHexaquark.module();
        let hh = LqcdApplication::HexaquarkHexaquark.module();
        for m in [&dd, &dh, &hh] {
            m.validate().unwrap();
            assert!(m.max_loop_depth() >= 8);
        }
        // The hexaquark-hexaquark correlators are the heaviest (most
        // kernels, deepest nests).
        assert!(hh.ops().len() > dd.ops().len());
        assert!(hh.max_loop_depth() >= dd.max_loop_depth());
        // The paper reports these applications span 1000-8000 lines of
        // MLIR; our miniature IR is more compact but still substantial.
        assert!(hh.printed_lines() > 50);
    }
}
