//! Neural-network model graphs (Sec. VII-A-2, Table III and Table V).
//!
//! The paper exports ResNet-18, VGG and MobileNetV2 from PyTorch through
//! Torch-MLIR. Here the three architectures are built operator by operator
//! with the miniature IR builder: convolutions, pooling, elementwise
//! residual additions, ReLU activations (lowered as `linalg.generic` in
//! MLIR, hence counted under "generic" in Table V) and the final
//! classification matmul. Convolutions use valid padding (the builder does
//! not model zero padding), and MobileNetV2's depthwise convolutions are
//! approximated by dense 3x3 convolutions with the same channel count —
//! both substitutions keep the operator mix and shapes representative.

use std::collections::BTreeMap;

use mlir_rl_ir::{Module, ModuleBuilder, OpKind, ValueId};

/// The three benchmark models of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeuralNetwork {
    /// ResNet-18 (residual blocks).
    ResNet18,
    /// MobileNetV2 (inverted residual blocks).
    MobileNetV2,
    /// VGG-16 (plain stacked convolutions).
    Vgg,
}

impl NeuralNetwork {
    /// All models, in the order of Table III.
    pub const ALL: [NeuralNetwork; 3] = [
        NeuralNetwork::ResNet18,
        NeuralNetwork::MobileNetV2,
        NeuralNetwork::Vgg,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            NeuralNetwork::ResNet18 => "ResNet-18",
            NeuralNetwork::MobileNetV2 => "MobileNetV2",
            NeuralNetwork::Vgg => "VGG",
        }
    }

    /// Builds the model graph as a module.
    pub fn module(self) -> Module {
        match self {
            NeuralNetwork::ResNet18 => resnet18(),
            NeuralNetwork::MobileNetV2 => mobilenet_v2(),
            NeuralNetwork::Vgg => vgg16(),
        }
    }
}

struct GraphBuilder {
    b: ModuleBuilder,
    h: u64,
    w: u64,
    c: u64,
    act: ValueId,
    conv_count: usize,
}

impl GraphBuilder {
    fn new(name: &str, h: u64, w: u64, c: u64) -> Self {
        let mut b = ModuleBuilder::new(name);
        let act = b.argument("input", vec![1, c, h, w]);
        Self {
            b,
            h,
            w,
            c,
            act,
            conv_count: 0,
        }
    }

    fn conv(&mut self, filters: u64, kernel: u64, stride: u64) {
        // Convolutions shrink the image (valid padding); guard against
        // degenerate shapes on small feature maps.
        if self.h <= kernel || self.w <= kernel {
            return;
        }
        let name = format!("w{}", self.conv_count);
        self.conv_count += 1;
        let wgt = self
            .b
            .argument(&name, vec![filters, self.c, kernel, kernel]);
        self.act = self.b.conv2d(self.act, wgt, stride);
        self.h = (self.h - kernel) / stride + 1;
        self.w = (self.w - kernel) / stride + 1;
        self.c = filters;
    }

    fn relu(&mut self) {
        self.act = self.b.relu(self.act);
    }

    fn max_pool(&mut self, window: u64, stride: u64) {
        if self.h < window || self.w < window {
            return;
        }
        self.act = self.b.max_pool(self.act, window, stride);
        self.h = (self.h - window) / stride + 1;
        self.w = (self.w - window) / stride + 1;
    }

    fn residual_add(&mut self, other: ValueId, other_shape: (u64, u64, u64)) {
        // Residual connections require identical shapes; skip the skip
        // connection when the block changed the spatial shape (the paper's
        // models use projection shortcuts there, which show up as extra
        // convolutions instead).
        if other_shape == (self.c, self.h, self.w) {
            self.act = self.b.add(self.act, other);
        }
    }

    fn classifier(&mut self, hidden: &[u64], classes: u64) {
        // Global average pool to 1x1 and flatten into a [1, C] activation.
        if self.h > 1 {
            self.act = self
                .b
                .avg_pool(self.act, self.h.min(self.w), self.h.min(self.w));
        }
        // Flatten is a metadata operation in MLIR; model it by introducing a
        // [1, C] view as a fresh argument chain via matmul weights.
        let mut features = self.c;
        let mut x = self.b.argument("flattened", vec![1, features]);
        for (i, h) in hidden.iter().enumerate() {
            let w = self.b.argument(&format!("fc{i}"), vec![features, *h]);
            x = self.b.matmul(x, w);
            x = self.b.relu(x);
            features = *h;
        }
        let w = self.b.argument("fc_out", vec![features, classes]);
        let logits = self.b.matmul(x, w);
        self.b.softmax_2d(logits);
    }

    fn finish(self) -> Module {
        self.b.finish()
    }
}

/// ResNet-18: a 7x7 stem, four stages of two residual basic blocks each, and
/// a fully connected classifier.
pub fn resnet18() -> Module {
    let mut g = GraphBuilder::new("resnet18", 224, 224, 3);
    g.conv(64, 7, 2);
    g.relu();
    g.max_pool(3, 2);
    let stage_channels = [64u64, 128, 256, 512];
    for (stage, channels) in stage_channels.iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let skip = g.act;
            let skip_shape = (g.c, g.h, g.w);
            g.conv(*channels, 3, stride);
            g.relu();
            g.conv(*channels, 3, 1);
            g.residual_add(skip, skip_shape);
            g.relu();
        }
    }
    g.classifier(&[], 1000);
    g.finish()
}

/// MobileNetV2: a stem convolution followed by inverted residual blocks
/// (1x1 expansion, 3x3 "depthwise" stand-in, 1x1 projection) and the
/// classifier.
pub fn mobilenet_v2() -> Module {
    let mut g = GraphBuilder::new("mobilenet_v2", 224, 224, 3);
    g.conv(32, 3, 2);
    g.relu();
    // (expansion factor, output channels, repeats, stride)
    let blocks = [
        (1u64, 16u64, 1usize, 1u64),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (expand, out_c, repeats, first_stride) in blocks {
        for r in 0..repeats {
            let stride = if r == 0 { first_stride } else { 1 };
            let skip = g.act;
            let skip_shape = (g.c, g.h, g.w);
            let expanded = g.c * expand;
            g.conv(expanded, 1, 1);
            g.relu();
            g.conv(expanded, 3, stride);
            g.relu();
            g.conv(out_c, 1, 1);
            g.residual_add(skip, skip_shape);
        }
    }
    g.conv(1280, 1, 1);
    g.relu();
    g.classifier(&[], 1000);
    g.finish()
}

/// VGG-16: five blocks of 3x3 convolutions with max pooling, followed by
/// three fully connected layers.
pub fn vgg16() -> Module {
    let mut g = GraphBuilder::new("vgg16", 224, 224, 3);
    let blocks = [(64u64, 2usize), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (channels, convs) in blocks {
        for _ in 0..convs {
            g.conv(channels, 3, 1);
            g.relu();
        }
        g.max_pool(2, 2);
    }
    g.classifier(&[4096, 4096], 1000);
    g.finish()
}

/// Operator composition of a model, in the categories of Table V:
/// `conv2d`, `pool`, `matmul`, `generic` (elementwise and softmax ops,
/// which MLIR lowers to `linalg.generic`), and `other`.
pub fn op_composition(module: &Module) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for op in module.ops() {
        let key = match op.kind {
            OpKind::Conv2D => "conv2d",
            OpKind::MaxPool | OpKind::AvgPool => "pool",
            OpKind::Matmul | OpKind::BatchMatmul => "matmul",
            OpKind::Relu | OpKind::Sigmoid | OpKind::Softmax2D | OpKind::Add | OpKind::Generic => {
                "generic"
            }
            _ => "other",
        };
        *counts.entry(key).or_insert(0) += 1;
        *counts.entry("total").or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_and_validate() {
        for model in NeuralNetwork::ALL {
            let m = model.module();
            m.validate()
                .unwrap_or_else(|e| panic!("{} failed validation: {e}", model.name()));
            assert!(m.ops().len() > 20, "{} is too small", model.name());
        }
    }

    #[test]
    fn resnet_has_residual_structure() {
        let m = resnet18();
        let comp = op_composition(&m);
        // Roughly 17 convolutions (stem + 16 in blocks, minus any skipped on
        // tiny feature maps).
        assert!(comp["conv2d"] >= 12, "composition: {comp:?}");
        assert!(comp["generic"] > comp["conv2d"], "ReLU/adds dominate");
        assert!(comp["matmul"] >= 1);
        assert!(comp["pool"] >= 1);
    }

    #[test]
    fn vgg_has_more_matmuls_than_resnet() {
        // Table V: VGG has 3 matmuls (the fully connected head), ResNet 1.
        let vgg = op_composition(&vgg16());
        let resnet = op_composition(&resnet18());
        assert!(vgg["matmul"] > resnet["matmul"]);
        assert!(vgg["conv2d"] >= 10);
        assert!(vgg["pool"] >= 4);
    }

    #[test]
    fn mobilenet_is_convolution_heavy() {
        let mobilenet = mobilenet_v2();
        let resnet = resnet18();
        let comp = op_composition(&mobilenet);
        assert!(comp["conv2d"] >= 20, "composition: {comp:?}");
        // MobileNetV2 has more (smaller) operations than ResNet-18, as in
        // Table V (524 vs 510 ops in the Torch-MLIR export).
        assert!(mobilenet.ops().len() >= resnet.ops().len());
    }

    #[test]
    fn composition_totals_are_consistent() {
        for model in NeuralNetwork::ALL {
            let m = model.module();
            let comp = op_composition(&m);
            let sum: usize = comp
                .iter()
                .filter(|(k, _)| **k != "total")
                .map(|(_, v)| *v)
                .sum();
            assert_eq!(sum, comp["total"]);
            assert_eq!(comp["total"], m.ops().len());
        }
    }
}
