//! Random deep-learning operator sequences (Sec. VI-A).
//!
//! The second half of the DL training data consists of randomly synthesized
//! sequences of `L = 5` operations, where each operation consumes the output
//! of the previous one, drawn from `{add, matmul, relu, conv_2d, pooling,
//! sigmoid, softmax_2d}` with random shapes. These teach the agent to handle
//! multiple operations (and fusion opportunities) in one code sample.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mlir_rl_ir::{Module, ModuleBuilder, ValueId};

/// The operator set used by the random-sequence generator.
const SEQUENCE_OPS: [&str; 7] = [
    "add",
    "matmul",
    "relu",
    "conv_2d",
    "pooling",
    "sigmoid",
    "softmax_2d",
];

/// The paper's sequence length.
pub const SEQUENCE_LENGTH: usize = 5;

/// Generates one random operator sequence of length `length`.
///
/// Each operation takes the output of the previous operation as input; 4-D
/// activations are produced by convolutions/pooling, 2-D activations by the
/// rest, and the generator inserts the operators that fit the current
/// activation rank.
pub fn random_sequence(length: usize, rng: &mut ChaCha8Rng) -> Module {
    let mut b = ModuleBuilder::new(format!("seq_{}", rng.gen::<u32>()));

    // Start from a random 4-D or 2-D activation.
    let start_4d = rng.gen_bool(0.5);
    let mut current: ValueId;
    let mut current_shape: Vec<u64>;
    if start_4d {
        let c = [16u64, 32, 64][rng.gen_range(0..3usize)];
        let hw = [28u64, 56, 112][rng.gen_range(0..3usize)];
        current_shape = vec![1, c, hw, hw];
    } else {
        let r = [64u64, 128, 256][rng.gen_range(0..3usize)];
        let c = [128u64, 256, 512][rng.gen_range(0..3usize)];
        current_shape = vec![r, c];
    }
    current = b.argument("input", current_shape.clone());

    for step in 0..length {
        let op = SEQUENCE_OPS[rng.gen_range(0..SEQUENCE_OPS.len())];
        match (op, current_shape.len()) {
            ("conv_2d", 4) => {
                let c = current_shape[1];
                let f = [16u64, 32, 64][rng.gen_range(0..3usize)];
                let k = [1u64, 3][rng.gen_range(0..2usize)];
                if current_shape[2] > k {
                    let w = b.argument(&format!("w{step}"), vec![f, c, k, k]);
                    current = b.conv2d(current, w, 1);
                    let out_hw = current_shape[2] - k + 1;
                    current_shape = vec![1, f, out_hw, out_hw];
                }
            }
            ("pooling", 4) => {
                if current_shape[2] >= 4 {
                    current = b.max_pool(current, 2, 2);
                    let out_hw = (current_shape[2] - 2) / 2 + 1;
                    current_shape = vec![1, current_shape[1], out_hw, out_hw];
                }
            }
            ("matmul", 2) => {
                let n = [64u64, 128, 256][rng.gen_range(0..3usize)];
                let w = b.argument(&format!("w{step}"), vec![current_shape[1], n]);
                current = b.matmul(current, w);
                current_shape = vec![current_shape[0], n];
            }
            ("add", _) => {
                let other = b.argument(&format!("b{step}"), current_shape.clone());
                current = b.add(current, other);
            }
            ("relu", _) => {
                current = b.relu(current);
            }
            ("sigmoid", _) => {
                current = b.sigmoid(current);
            }
            ("softmax_2d", 2) => {
                current = b.softmax_2d(current);
            }
            // Operator does not fit the current activation rank: fall back to
            // a rank-agnostic elementwise op so the sequence keeps its length.
            _ => {
                current = b.relu(current);
            }
        }
    }
    b.finish()
}

/// Generates a dataset of `count` random sequences of the paper's length
/// (L = 5).
pub fn sequence_dataset(count: usize, seed: u64) -> Vec<Module> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_sequence(SEQUENCE_LENGTH, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_have_the_requested_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..20 {
            let m = random_sequence(SEQUENCE_LENGTH, &mut rng);
            m.validate().unwrap();
            assert_eq!(m.ops().len(), SEQUENCE_LENGTH);
        }
    }

    #[test]
    fn sequences_form_a_chain_of_producers() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let m = random_sequence(SEQUENCE_LENGTH, &mut rng);
        // Every operation after the first consumes the result of an earlier
        // operation (the chain structure that creates fusion opportunities).
        for op in &m.ops()[1..] {
            assert!(
                !m.producers(op.id).is_empty(),
                "operation {} has no producer",
                op.id
            );
        }
    }

    #[test]
    fn dataset_generation_is_reproducible_and_valid() {
        let a = sequence_dataset(10, 42);
        let b = sequence_dataset(10, 42);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops().len(), y.ops().len());
            x.validate().unwrap();
        }
    }

    #[test]
    fn sequences_are_diverse() {
        let ds = sequence_dataset(20, 7);
        let kinds: std::collections::HashSet<_> = ds
            .iter()
            .flat_map(|m| m.ops().iter().map(|o| o.kind))
            .collect();
        assert!(kinds.len() >= 4, "expected several distinct operator kinds");
    }
}
