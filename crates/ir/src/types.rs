//! Element and tensor types.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IrError;

/// Scalar element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ElementType {
    /// 32-bit IEEE-754 floating point.
    #[default]
    F32,
    /// 64-bit IEEE-754 floating point.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 8-bit signed integer (quantized workloads).
    I8,
}

impl ElementType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            ElementType::F32 | ElementType::I32 => 4,
            ElementType::F64 | ElementType::I64 => 8,
            ElementType::I8 => 1,
        }
    }

    /// MLIR-style spelling of the type.
    pub fn name(self) -> &'static str {
        match self {
            ElementType::F32 => "f32",
            ElementType::F64 => "f64",
            ElementType::I32 => "i32",
            ElementType::I64 => "i64",
            ElementType::I8 => "i8",
        }
    }

    /// Parses an MLIR-style element-type spelling.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Parse`] for unknown spellings.
    pub fn parse(s: &str) -> Result<Self, IrError> {
        match s {
            "f32" => Ok(ElementType::F32),
            "f64" => Ok(ElementType::F64),
            "i32" => Ok(ElementType::I32),
            "i64" => Ok(ElementType::I64),
            "i8" => Ok(ElementType::I8),
            other => Err(IrError::Parse {
                line: 0,
                message: format!("unknown element type `{other}`"),
            }),
        }
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A ranked tensor type, e.g. `tensor<256x1024xf32>`.
///
/// # Examples
///
/// ```
/// use mlir_rl_ir::types::{ElementType, TensorType};
///
/// let t = TensorType::new(vec![256, 1024], ElementType::F32).unwrap();
/// assert_eq!(t.num_elements(), 256 * 1024);
/// assert_eq!(t.size_bytes(), 256 * 1024 * 4);
/// assert_eq!(t.to_string(), "tensor<256x1024xf32>");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorType {
    shape: Vec<u64>,
    element: ElementType,
}

impl TensorType {
    /// Creates a tensor type from a shape and element type.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidTensorType`] if any dimension is zero.
    pub fn new(shape: Vec<u64>, element: ElementType) -> Result<Self, IrError> {
        if shape.contains(&0) {
            return Err(IrError::InvalidTensorType {
                message: format!("zero-sized dimension in shape {shape:?}"),
            });
        }
        Ok(Self { shape, element })
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(element: ElementType) -> Self {
        Self {
            shape: Vec::new(),
            element,
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[u64] {
        &self.shape
    }

    /// The element type.
    pub fn element(&self) -> ElementType {
        self.element
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_elements() * self.element.size_bytes() as u64
    }

    /// Parses a type of the form `tensor<256x1024xf32>`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Parse`] if the string is not a valid tensor type.
    pub fn parse(s: &str) -> Result<Self, IrError> {
        let inner = s
            .trim()
            .strip_prefix("tensor<")
            .and_then(|r| r.strip_suffix('>'))
            .ok_or_else(|| IrError::Parse {
                line: 0,
                message: format!("expected `tensor<...>`, got `{s}`"),
            })?;
        let parts: Vec<&str> = inner.split('x').collect();
        if parts.is_empty() {
            return Err(IrError::Parse {
                line: 0,
                message: "empty tensor type".into(),
            });
        }
        let element = ElementType::parse(parts[parts.len() - 1])?;
        let mut shape = Vec::new();
        for p in &parts[..parts.len() - 1] {
            let d: u64 = p.parse().map_err(|_| IrError::Parse {
                line: 0,
                message: format!("invalid dimension `{p}` in tensor type"),
            })?;
            shape.push(d);
        }
        TensorType::new(shape, element)
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tensor<")?;
        for d in &self.shape {
            write!(f, "{d}x")?;
        }
        write!(f, "{}>", self.element)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(ElementType::F32.size_bytes(), 4);
        assert_eq!(ElementType::F64.size_bytes(), 8);
        assert_eq!(ElementType::I8.size_bytes(), 1);
        assert_eq!(ElementType::I64.size_bytes(), 8);
        assert_eq!(ElementType::I32.size_bytes(), 4);
    }

    #[test]
    fn element_parse_roundtrip() {
        for t in [
            ElementType::F32,
            ElementType::F64,
            ElementType::I32,
            ElementType::I64,
            ElementType::I8,
        ] {
            assert_eq!(ElementType::parse(t.name()).unwrap(), t);
        }
        assert!(ElementType::parse("f16").is_err());
    }

    #[test]
    fn tensor_type_basics() {
        let t = TensorType::new(vec![256, 1024], ElementType::F32).unwrap();
        assert_eq!(t.rank(), 2);
        assert_eq!(t.num_elements(), 256 * 1024);
        assert_eq!(t.size_bytes(), 256 * 1024 * 4);
        assert_eq!(t.shape(), &[256, 1024]);
    }

    #[test]
    fn tensor_type_rejects_zero_dim() {
        assert!(TensorType::new(vec![4, 0], ElementType::F32).is_err());
    }

    #[test]
    fn tensor_type_display_and_parse_roundtrip() {
        let t = TensorType::new(vec![8, 512, 7], ElementType::F64).unwrap();
        let printed = t.to_string();
        assert_eq!(printed, "tensor<8x512x7xf64>");
        assert_eq!(TensorType::parse(&printed).unwrap(), t);
    }

    #[test]
    fn scalar_tensor() {
        let t = TensorType::scalar(ElementType::F32);
        assert_eq!(t.rank(), 0);
        assert_eq!(t.num_elements(), 1);
        assert_eq!(t.to_string(), "tensor<f32>");
        assert_eq!(TensorType::parse("tensor<f32>").unwrap(), t);
    }

    #[test]
    fn tensor_parse_errors() {
        assert!(TensorType::parse("memref<4xf32>").is_err());
        assert!(TensorType::parse("tensor<axf32>").is_err());
        assert!(TensorType::parse("tensor<4x5>").is_err());
    }
}
