//! Affine expressions and affine maps.
//!
//! MLIR Linalg operations carry *indexing maps*: affine maps from loop
//! iterators `(d0, d1, ..., dN-1)` to tensor indices. This module provides a
//! small affine-expression language sufficient to express the maps that
//! appear in Linalg named operations and in the LQCD kernels the paper
//! targets (affine combinations of iterators plus constants), together with
//! the polyhedral *access matrix* encoding used by the feature extractor
//! (Fig. 2 in the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IrError;

/// An affine expression over loop iterators `d0..dN-1`.
///
/// Expressions are kept in a small tree form; [`AffineExpr::coefficients`]
/// flattens an affine expression into per-dimension coefficients plus a
/// constant, which is what both the transformation legality checks and the
/// RL feature extractor consume.
///
/// # Examples
///
/// ```
/// use mlir_rl_ir::affine::AffineExpr;
///
/// // d0 + 2*d1 - 3
/// let e = AffineExpr::dim(0) + AffineExpr::dim(1) * 2 - AffineExpr::constant(3);
/// let (coeffs, cst) = e.coefficients(2).unwrap();
/// assert_eq!(coeffs, vec![1, 2]);
/// assert_eq!(cst, -3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AffineExpr {
    /// A loop iterator `d<i>`.
    Dim(usize),
    /// An integer constant.
    Constant(i64),
    /// Sum of two affine expressions.
    Add(Box<AffineExpr>, Box<AffineExpr>),
    /// Product of an affine expression and a constant factor.
    Mul(Box<AffineExpr>, i64),
}

impl AffineExpr {
    /// Creates the iterator expression `d<index>`.
    pub fn dim(index: usize) -> Self {
        AffineExpr::Dim(index)
    }

    /// Creates a constant expression.
    pub fn constant(value: i64) -> Self {
        AffineExpr::Constant(value)
    }

    /// Returns `true` if the expression is a bare iterator.
    pub fn is_dim(&self) -> bool {
        matches!(self, AffineExpr::Dim(_))
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        matches!(self, AffineExpr::Constant(_))
    }

    /// Returns the iterator index if the expression is a bare iterator.
    pub fn as_dim(&self) -> Option<usize> {
        match self {
            AffineExpr::Dim(d) => Some(*d),
            _ => None,
        }
    }

    /// Largest iterator index referenced, if any.
    pub fn max_dim(&self) -> Option<usize> {
        match self {
            AffineExpr::Dim(d) => Some(*d),
            AffineExpr::Constant(_) => None,
            AffineExpr::Add(a, b) => match (a.max_dim(), b.max_dim()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            },
            AffineExpr::Mul(a, _) => a.max_dim(),
        }
    }

    /// Evaluates the expression for the given iterator values.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimOutOfRange`] if the expression references an
    /// iterator index not covered by `dims`.
    pub fn evaluate(&self, dims: &[i64]) -> Result<i64, IrError> {
        match self {
            AffineExpr::Dim(d) => dims.get(*d).copied().ok_or(IrError::DimOutOfRange {
                dim: *d,
                num_dims: dims.len(),
            }),
            AffineExpr::Constant(c) => Ok(*c),
            AffineExpr::Add(a, b) => Ok(a.evaluate(dims)? + b.evaluate(dims)?),
            AffineExpr::Mul(a, f) => Ok(a.evaluate(dims)? * f),
        }
    }

    /// Flattens the expression into `(per-dimension coefficients, constant)`.
    ///
    /// The returned coefficient vector has length `num_dims`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimOutOfRange`] if the expression references an
    /// iterator outside `0..num_dims`.
    pub fn coefficients(&self, num_dims: usize) -> Result<(Vec<i64>, i64), IrError> {
        let mut coeffs = vec![0i64; num_dims];
        let mut constant = 0i64;
        self.accumulate(1, &mut coeffs, &mut constant)?;
        Ok((coeffs, constant))
    }

    fn accumulate(
        &self,
        factor: i64,
        coeffs: &mut [i64],
        constant: &mut i64,
    ) -> Result<(), IrError> {
        match self {
            AffineExpr::Dim(d) => {
                if *d >= coeffs.len() {
                    return Err(IrError::DimOutOfRange {
                        dim: *d,
                        num_dims: coeffs.len(),
                    });
                }
                coeffs[*d] += factor;
                Ok(())
            }
            AffineExpr::Constant(c) => {
                *constant += factor * c;
                Ok(())
            }
            AffineExpr::Add(a, b) => {
                a.accumulate(factor, coeffs, constant)?;
                b.accumulate(factor, coeffs, constant)
            }
            AffineExpr::Mul(a, f) => a.accumulate(factor * f, coeffs, constant),
        }
    }

    /// Rewrites every iterator index through `mapping` (old index -> new index).
    ///
    /// Used by loop interchange: permuting loops renames the iterators that
    /// the indexing maps refer to.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimOutOfRange`] if an iterator is not covered by
    /// the mapping.
    pub fn remap_dims(&self, mapping: &[usize]) -> Result<AffineExpr, IrError> {
        match self {
            AffineExpr::Dim(d) => {
                mapping
                    .get(*d)
                    .map(|nd| AffineExpr::Dim(*nd))
                    .ok_or(IrError::DimOutOfRange {
                        dim: *d,
                        num_dims: mapping.len(),
                    })
            }
            AffineExpr::Constant(c) => Ok(AffineExpr::Constant(*c)),
            AffineExpr::Add(a, b) => Ok(AffineExpr::Add(
                Box::new(a.remap_dims(mapping)?),
                Box::new(b.remap_dims(mapping)?),
            )),
            AffineExpr::Mul(a, f) => Ok(AffineExpr::Mul(Box::new(a.remap_dims(mapping)?), *f)),
        }
    }
}

impl std::ops::Add for AffineExpr {
    type Output = AffineExpr;

    fn add(self, rhs: AffineExpr) -> AffineExpr {
        AffineExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for AffineExpr {
    type Output = AffineExpr;

    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        AffineExpr::Add(Box::new(self), Box::new(AffineExpr::Mul(Box::new(rhs), -1)))
    }
}

impl std::ops::Mul<i64> for AffineExpr {
    type Output = AffineExpr;

    fn mul(self, rhs: i64) -> AffineExpr {
        AffineExpr::Mul(Box::new(self), rhs)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineExpr::Dim(d) => write!(f, "d{d}"),
            AffineExpr::Constant(c) => write!(f, "{c}"),
            AffineExpr::Add(a, b) => {
                // Print `a + (-1 * b)` as `a - b` for readability.
                if let AffineExpr::Mul(inner, -1) = b.as_ref() {
                    write!(f, "{a} - {inner}")
                } else {
                    write!(f, "{a} + {b}")
                }
            }
            AffineExpr::Mul(a, c) => {
                if a.is_dim() {
                    write!(f, "{c} * {a}")
                } else {
                    write!(f, "{c} * ({a})")
                }
            }
        }
    }
}

/// An affine map `(d0, ..., dN-1) -> (e0, ..., eD-1)`.
///
/// Linalg indexing maps associate every operand of an operation with one
/// affine map describing which tensor element each iteration reads or
/// writes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineMap {
    num_dims: usize,
    results: Vec<AffineExpr>,
}

impl AffineMap {
    /// Creates an affine map with `num_dims` input iterators and the given
    /// result expressions.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimOutOfRange`] if any result references an
    /// iterator outside `0..num_dims`.
    pub fn new(num_dims: usize, results: Vec<AffineExpr>) -> Result<Self, IrError> {
        for r in &results {
            if let Some(max) = r.max_dim() {
                if max >= num_dims {
                    return Err(IrError::DimOutOfRange { dim: max, num_dims });
                }
            }
        }
        Ok(Self { num_dims, results })
    }

    /// The identity map `(d0, ..., dN-1) -> (d0, ..., dN-1)`.
    pub fn identity(num_dims: usize) -> Self {
        Self {
            num_dims,
            results: (0..num_dims).map(AffineExpr::Dim).collect(),
        }
    }

    /// A projection map selecting the listed dimensions, e.g.
    /// `projection(3, &[0, 2])` is `(d0, d1, d2) -> (d0, d2)`.
    ///
    /// # Panics
    ///
    /// Panics if any selected dimension is `>= num_dims`.
    pub fn projection(num_dims: usize, dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|d| *d < num_dims),
            "projection dimension out of range"
        );
        Self {
            num_dims,
            results: dims.iter().map(|d| AffineExpr::Dim(*d)).collect(),
        }
    }

    /// Number of input iterators.
    pub fn num_dims(&self) -> usize {
        self.num_dims
    }

    /// Number of result expressions (the rank of the accessed tensor).
    pub fn num_results(&self) -> usize {
        self.results.len()
    }

    /// The result expressions.
    pub fn results(&self) -> &[AffineExpr] {
        &self.results
    }

    /// Evaluates the map for concrete iterator values, returning the tensor
    /// indices accessed.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimOutOfRange`] if `dims.len() != num_dims`.
    pub fn evaluate(&self, dims: &[i64]) -> Result<Vec<i64>, IrError> {
        if dims.len() != self.num_dims {
            return Err(IrError::DimOutOfRange {
                dim: dims.len(),
                num_dims: self.num_dims,
            });
        }
        self.results.iter().map(|r| r.evaluate(dims)).collect()
    }

    /// Builds the polyhedral access matrix of shape `num_results x num_dims`
    /// plus a constant column, as in Fig. 2 of the paper.
    ///
    /// Row `i`, column `j` holds the coefficient of iterator `d_j` in the
    /// `i`-th tensor index expression.
    ///
    /// # Errors
    ///
    /// Propagates [`IrError::DimOutOfRange`] from malformed expressions.
    pub fn access_matrix(&self) -> Result<AccessMatrix, IrError> {
        let mut rows = Vec::with_capacity(self.results.len());
        let mut constants = Vec::with_capacity(self.results.len());
        for r in &self.results {
            let (coeffs, constant) = r.coefficients(self.num_dims)?;
            rows.push(coeffs);
            constants.push(constant);
        }
        Ok(AccessMatrix {
            coefficients: rows,
            constants,
        })
    }

    /// Returns true if the map is a permutation of a subset of the iterators
    /// (i.e. every result is a distinct bare iterator).
    pub fn is_projected_permutation(&self) -> bool {
        let mut seen = vec![false; self.num_dims];
        for r in &self.results {
            match r.as_dim() {
                Some(d) if !seen[d] => seen[d] = true,
                _ => return false,
            }
        }
        true
    }

    /// Returns the iterator index used by the last (fastest-varying) result
    /// dimension, if it is a bare iterator.
    pub fn innermost_access_dim(&self) -> Option<usize> {
        self.results.last().and_then(AffineExpr::as_dim)
    }

    /// Returns true if iterator `dim` appears (with non-zero coefficient) in
    /// any result of the map.
    pub fn uses_dim(&self, dim: usize) -> bool {
        self.results.iter().any(|r| {
            r.coefficients(self.num_dims)
                .map(|(c, _)| c.get(dim).copied().unwrap_or(0) != 0)
                .unwrap_or(false)
        })
    }

    /// Rewrites the map's iterators through a permutation produced by loop
    /// interchange. `mapping[old] = new`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DimOutOfRange`] if the mapping does not cover all
    /// iterators.
    pub fn remap_dims(&self, mapping: &[usize]) -> Result<AffineMap, IrError> {
        if mapping.len() != self.num_dims {
            return Err(IrError::DimOutOfRange {
                dim: mapping.len(),
                num_dims: self.num_dims,
            });
        }
        let results = self
            .results
            .iter()
            .map(|r| r.remap_dims(mapping))
            .collect::<Result<Vec<_>, _>>()?;
        AffineMap::new(self.num_dims, results)
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "affine_map<(")?;
        for i in 0..self.num_dims {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{i}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")>")
    }
}

/// The polyhedral access matrix of an indexing map (Fig. 2 of the paper).
///
/// `coefficients[i][j]` is the coefficient of iterator `d_j` in the `i`-th
/// tensor dimension; `constants[i]` is the constant offset of that dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessMatrix {
    /// Per-tensor-dimension iterator coefficients.
    pub coefficients: Vec<Vec<i64>>,
    /// Per-tensor-dimension constant offsets.
    pub constants: Vec<i64>,
}

impl AccessMatrix {
    /// Number of tensor dimensions (rows).
    pub fn rank(&self) -> usize {
        self.coefficients.len()
    }

    /// Number of loop iterators (columns).
    pub fn num_dims(&self) -> usize {
        self.coefficients.first().map_or(0, Vec::len)
    }

    /// Flattens the matrix (row-major) into an `f64` feature vector padded
    /// or truncated to `max_rank x max_dims` entries.
    pub fn to_padded_features(&self, max_rank: usize, max_dims: usize) -> Vec<f64> {
        let mut out = vec![0.0; max_rank * max_dims];
        for (i, row) in self.coefficients.iter().take(max_rank).enumerate() {
            for (j, c) in row.iter().take(max_dims).enumerate() {
                out[i * max_dims + j] = *c as f64;
            }
        }
        out
    }

    /// Returns true if the access along the fastest-varying (last) tensor
    /// dimension is unit-stride in iterator `dim` (coefficient 1 and the
    /// dimension is only driven by that iterator).
    pub fn unit_stride_in(&self, dim: usize) -> bool {
        match self.coefficients.last() {
            Some(row) => {
                row.get(dim).copied().unwrap_or(0) == 1
                    && row.iter().enumerate().all(|(j, c)| j == dim || *c == 0)
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_and_constant_constructors() {
        assert!(AffineExpr::dim(3).is_dim());
        assert!(AffineExpr::constant(5).is_constant());
        assert_eq!(AffineExpr::dim(3).as_dim(), Some(3));
        assert_eq!(AffineExpr::constant(5).as_dim(), None);
    }

    #[test]
    fn expr_evaluation() {
        // d0 + 2*d1 - 3
        let e = AffineExpr::dim(0) + AffineExpr::dim(1) * 2 - AffineExpr::constant(3);
        assert_eq!(e.evaluate(&[10, 4]).unwrap(), 10 + 8 - 3);
    }

    #[test]
    fn expr_evaluation_out_of_range() {
        let e = AffineExpr::dim(2);
        assert!(e.evaluate(&[1, 2]).is_err());
    }

    #[test]
    fn expr_coefficients() {
        // d0 + 2*d1 - 3*d2 => [1, 2, -3], constant 0
        let e = AffineExpr::dim(0) + AffineExpr::dim(1) * 2 - AffineExpr::dim(2) * 3;
        let (coeffs, cst) = e.coefficients(3).unwrap();
        assert_eq!(coeffs, vec![1, 2, -3]);
        assert_eq!(cst, 0);
    }

    #[test]
    fn expr_coefficients_with_constant() {
        // 1 - d1 => [0, -1], constant 1
        let e = AffineExpr::constant(1) - AffineExpr::dim(1);
        let (coeffs, cst) = e.coefficients(2).unwrap();
        assert_eq!(coeffs, vec![0, -1]);
        assert_eq!(cst, 1);
    }

    #[test]
    fn expr_display() {
        let e = AffineExpr::dim(0) + AffineExpr::dim(2) * 3;
        assert_eq!(e.to_string(), "d0 + 3 * d2");
        let s = AffineExpr::dim(1) - AffineExpr::dim(0);
        assert_eq!(s.to_string(), "d1 - d0");
    }

    #[test]
    fn expr_remap_dims() {
        let e = AffineExpr::dim(0) + AffineExpr::dim(2) * 2;
        let remapped = e.remap_dims(&[2, 1, 0]).unwrap();
        let (coeffs, _) = remapped.coefficients(3).unwrap();
        assert_eq!(coeffs, vec![2, 0, 1]);
    }

    #[test]
    fn map_identity_and_projection() {
        let id = AffineMap::identity(3);
        assert_eq!(id.num_dims(), 3);
        assert_eq!(id.num_results(), 3);
        assert!(id.is_projected_permutation());

        let proj = AffineMap::projection(3, &[0, 2]);
        assert_eq!(proj.num_results(), 2);
        assert!(proj.is_projected_permutation());
        assert_eq!(proj.evaluate(&[7, 8, 9]).unwrap(), vec![7, 9]);
    }

    #[test]
    fn map_new_rejects_out_of_range_dims() {
        let res = AffineMap::new(2, vec![AffineExpr::dim(2)]);
        assert!(res.is_err());
    }

    #[test]
    fn matmul_maps_access_matrices() {
        // C[d0, d1] += A[d0, d2] * B[d2, d1]
        let a = AffineMap::projection(3, &[0, 2]);
        let b = AffineMap::projection(3, &[2, 1]);
        let c = AffineMap::projection(3, &[0, 1]);

        let am = a.access_matrix().unwrap();
        assert_eq!(am.coefficients, vec![vec![1, 0, 0], vec![0, 0, 1]]);
        let bm = b.access_matrix().unwrap();
        assert_eq!(bm.coefficients, vec![vec![0, 0, 1], vec![0, 1, 0]]);
        let cm = c.access_matrix().unwrap();
        assert_eq!(cm.coefficients, vec![vec![1, 0, 0], vec![0, 1, 0]]);
        assert!(cm.unit_stride_in(1));
        assert!(!cm.unit_stride_in(0));
    }

    #[test]
    fn access_matrix_from_paper_figure2() {
        // array[d0, d0 + 2*d1 - 3*d2, 1 - d1]
        let map = AffineMap::new(
            3,
            vec![
                AffineExpr::dim(0),
                AffineExpr::dim(0) + AffineExpr::dim(1) * 2 - AffineExpr::dim(2) * 3,
                AffineExpr::constant(1) - AffineExpr::dim(1),
            ],
        )
        .unwrap();
        let m = map.access_matrix().unwrap();
        assert_eq!(
            m.coefficients,
            vec![vec![1, 0, 0], vec![1, 2, -3], vec![0, -1, 0]]
        );
        assert_eq!(m.constants, vec![0, 0, 1]);
        assert_eq!(m.rank(), 3);
        assert_eq!(m.num_dims(), 3);
    }

    #[test]
    fn access_matrix_padded_features() {
        let map = AffineMap::projection(3, &[0, 2]);
        let m = map.access_matrix().unwrap();
        let feats = m.to_padded_features(3, 4);
        assert_eq!(feats.len(), 12);
        assert_eq!(feats[0], 1.0); // row 0, d0
        assert_eq!(feats[4 + 2], 1.0); // row 1, d2
        assert!(feats[8..].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn map_uses_dim() {
        let map = AffineMap::projection(4, &[0, 2]);
        assert!(map.uses_dim(0));
        assert!(!map.uses_dim(1));
        assert!(map.uses_dim(2));
        assert!(!map.uses_dim(3));
    }

    #[test]
    fn map_remap_dims_permutation() {
        // (d0, d1, d2) -> (d0, d2) remapped by [2, 0, 1] becomes (d2, d1).
        let map = AffineMap::projection(3, &[0, 2]);
        let remapped = map.remap_dims(&[2, 0, 1]).unwrap();
        assert_eq!(
            remapped.results()[0].as_dim(),
            Some(2),
            "d0 should become d2"
        );
        assert_eq!(remapped.results()[1].as_dim(), Some(1));
    }

    #[test]
    fn map_display() {
        let map = AffineMap::projection(3, &[0, 2]);
        assert_eq!(map.to_string(), "affine_map<(d0, d1, d2) -> (d0, d2)>");
    }

    #[test]
    fn non_permutation_map_detected() {
        let map = AffineMap::new(
            2,
            vec![AffineExpr::dim(0), AffineExpr::dim(0) + AffineExpr::dim(1)],
        )
        .unwrap();
        assert!(!map.is_projected_permutation());
    }

    #[test]
    fn innermost_access_dim() {
        let map = AffineMap::projection(3, &[0, 2]);
        assert_eq!(map.innermost_access_dim(), Some(2));
        let map2 = AffineMap::new(2, vec![AffineExpr::constant(0)]).unwrap();
        assert_eq!(map2.innermost_access_dim(), None);
    }
}
