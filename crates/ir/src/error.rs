//! Error types for the IR crate.

use std::fmt;

/// Errors produced while constructing or validating IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An affine expression or map referenced an iterator outside the
    /// declared iteration space.
    DimOutOfRange {
        /// The offending iterator index (or length, for arity mismatches).
        dim: usize,
        /// The declared number of iterators.
        num_dims: usize,
    },
    /// Operand count does not match the number of indexing maps.
    OperandMapMismatch {
        /// Number of operands (inputs + outputs).
        operands: usize,
        /// Number of indexing maps.
        maps: usize,
    },
    /// An indexing map's result rank does not match the operand tensor rank.
    RankMismatch {
        /// Operand position.
        operand: usize,
        /// Rank implied by the indexing map.
        map_rank: usize,
        /// Rank of the tensor type.
        tensor_rank: usize,
    },
    /// An indexing map declares a different number of iterators than the
    /// operation.
    IteratorArityMismatch {
        /// Operand position.
        operand: usize,
        /// Iterators declared by the map.
        map_dims: usize,
        /// Iterators declared by the operation.
        op_dims: usize,
    },
    /// The loop bounds inferred from two operands disagree.
    InconsistentLoopBounds {
        /// Iterator index with conflicting bounds.
        dim: usize,
        /// First bound.
        first: u64,
        /// Conflicting bound.
        second: u64,
    },
    /// A loop bound could not be inferred for an iterator.
    UnboundedIterator {
        /// The iterator with no bound.
        dim: usize,
    },
    /// An operation references a value that is not defined in the module.
    UnknownValue {
        /// The missing value identifier.
        value: usize,
    },
    /// An operation identifier was not found in the module.
    UnknownOperation {
        /// The missing operation identifier.
        op: usize,
    },
    /// Parse error with a human-readable description.
    Parse {
        /// Line at which parsing failed (1-based), 0 if unknown.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// A tensor type was malformed (e.g. zero-sized dimension).
    InvalidTensorType {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DimOutOfRange { dim, num_dims } => {
                write!(f, "iterator d{dim} out of range for {num_dims} iterators")
            }
            IrError::OperandMapMismatch { operands, maps } => write!(
                f,
                "operation has {operands} operands but {maps} indexing maps"
            ),
            IrError::RankMismatch {
                operand,
                map_rank,
                tensor_rank,
            } => write!(
                f,
                "operand {operand}: indexing map produces rank {map_rank} but tensor has rank {tensor_rank}"
            ),
            IrError::IteratorArityMismatch {
                operand,
                map_dims,
                op_dims,
            } => write!(
                f,
                "operand {operand}: indexing map declares {map_dims} iterators but operation declares {op_dims}"
            ),
            IrError::InconsistentLoopBounds { dim, first, second } => write!(
                f,
                "iterator d{dim} has inconsistent bounds {first} and {second}"
            ),
            IrError::UnboundedIterator { dim } => {
                write!(f, "no loop bound could be inferred for iterator d{dim}")
            }
            IrError::UnknownValue { value } => write!(f, "unknown value %{value}"),
            IrError::UnknownOperation { op } => write!(f, "unknown operation #{op}"),
            IrError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            IrError::InvalidTensorType { message } => write!(f, "invalid tensor type: {message}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::DimOutOfRange {
            dim: 3,
            num_dims: 2,
        };
        assert_eq!(e.to_string(), "iterator d3 out of range for 2 iterators");

        let e = IrError::Parse {
            line: 4,
            message: "expected `->`".into(),
        };
        assert!(e.to_string().contains("line 4"));

        let e = IrError::Parse {
            line: 0,
            message: "unexpected end of input".into(),
        };
        assert_eq!(e.to_string(), "parse error: unexpected end of input");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
