//! Textual printer for modules, in an MLIR-flavoured syntax.
//!
//! The format round-trips through [`crate::parser::parse_module`] and is the
//! on-disk representation used by the dataset generators.

use std::fmt::Write as _;

use crate::module::{Module, ValueDef};
use crate::op::LinalgOp;

/// Prints a whole module.
///
/// # Examples
///
/// ```
/// use mlir_rl_ir::builder::ModuleBuilder;
/// use mlir_rl_ir::printer::print_module;
///
/// let mut b = ModuleBuilder::new("f");
/// let a = b.argument("A", vec![4, 8]);
/// let w = b.argument("B", vec![8, 2]);
/// b.matmul(a, w);
/// let text = print_module(&b.finish());
/// assert!(text.contains("linalg.matmul"));
/// ```
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    write!(out, "func @{}(", module.name()).expect("write to string");
    let args = module.arguments();
    for (i, arg) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "%{}: {}", arg.name, arg.ty).expect("write to string");
    }
    out.push_str(") {\n");
    for op in module.ops() {
        print_op(module, op, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Prints one operation (used by [`print_module`] and by debugging output).
pub fn print_op_to_string(module: &Module, op: &LinalgOp) -> String {
    let mut out = String::new();
    print_op(module, op, &mut out);
    out
}

fn value_name(module: &Module, id: crate::op::ValueId) -> String {
    match module.value(id) {
        Ok(v) => format!("%{}", v.name),
        Err(_) => format!("%<unknown:{}>", id.0),
    }
}

fn print_op(module: &Module, op: &LinalgOp, out: &mut String) {
    let result_name = value_name(module, op.result);
    writeln!(out, "  {} = {}", result_name, op.kind).expect("write to string");

    // Iterator types.
    out.push_str("    iterators = [");
    for (i, it) in op.iterator_types.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "\"{it}\"").expect("write to string");
    }
    out.push_str("]\n");

    // Loop bounds.
    out.push_str("    bounds = [");
    for (i, bnd) in op.loop_bounds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{bnd}").expect("write to string");
    }
    out.push_str("]\n");

    // Indexing maps.
    out.push_str("    maps = [");
    for (i, map) in op.indexing_maps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{map}").expect("write to string");
    }
    out.push_str("]\n");

    // Arithmetic counts (only the non-zero ones).
    out.push_str("    arith = {");
    let mut first = true;
    let field = |name: &str, value: u32, out: &mut String, first: &mut bool| {
        if value > 0 {
            if !*first {
                out.push_str(", ");
            }
            write!(out, "{name} = {value}").expect("write to string");
            *first = false;
        }
    };
    field("add", op.arith.add, out, &mut first);
    field("sub", op.arith.sub, out, &mut first);
    field("mul", op.arith.mul, out, &mut first);
    field("div", op.arith.div, out, &mut first);
    field("exp", op.arith.exp, out, &mut first);
    field("max", op.arith.max, out, &mut first);
    out.push_str("}\n");

    // Operands.
    out.push_str("    ins(");
    for (i, (input, ty)) in op.inputs.iter().zip(&op.input_types).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{} : {}", value_name(module, *input), ty).expect("write to string");
    }
    out.push_str(")\n");
    writeln!(out, "    outs({})", op.result_type).expect("write to string");
}

/// Prints the argument list of a module in a compact single-line form, used
/// in logs and example output.
pub fn summarize_module(module: &Module) -> String {
    let ops: Vec<String> = module
        .ops()
        .iter()
        .map(|o| {
            format!(
                "{}[{}]",
                o.kind,
                o.loop_bounds
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("x")
            )
        })
        .collect();
    let num_args = module
        .values()
        .iter()
        .filter(|v| v.def == ValueDef::Argument)
        .count();
    format!(
        "module `{}`: {} args, {} ops: {}",
        module.name(),
        num_args,
        module.ops().len(),
        ops.join(" -> ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn sample() -> Module {
        let mut b = ModuleBuilder::new("sample");
        let a = b.argument("A", vec![256, 1024]);
        let w = b.argument("B", vec![1024, 512]);
        let c = b.matmul(a, w);
        b.relu(c);
        b.finish()
    }

    #[test]
    fn printed_module_contains_all_sections() {
        let text = print_module(&sample());
        assert!(text.starts_with("func @sample(%A: tensor<256x1024xf32>"));
        assert!(text.contains("linalg.matmul"));
        assert!(text.contains("linalg.relu"));
        assert!(text.contains("iterators = [\"parallel\", \"parallel\", \"reduction\"]"));
        assert!(text.contains("bounds = [256, 512, 1024]"));
        assert!(text.contains("affine_map<(d0, d1, d2) -> (d0, d2)>"));
        assert!(text.contains("arith = {add = 1, mul = 1}"));
        assert!(text.contains("ins(%A : tensor<256x1024xf32>, %B : tensor<1024x512xf32>)"));
        assert!(text.contains("outs(tensor<256x512xf32>)"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn print_single_op() {
        let m = sample();
        let text = print_op_to_string(&m, &m.ops()[0]);
        assert!(text.contains("%t0 = linalg.matmul"));
    }

    #[test]
    fn summary_is_compact() {
        let s = summarize_module(&sample());
        assert!(s.contains("2 ops"));
        assert!(s.contains("linalg.matmul[256x512x1024]"));
        assert!(s.contains("2 args"));
    }
}
