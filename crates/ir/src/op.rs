//! Linalg-style structured operations.
//!
//! A [`LinalgOp`] models one `linalg.*` operation: an iteration domain
//! (loop bounds + iterator types), a set of tensor operands with affine
//! indexing maps, and a scalar body summarized by its arithmetic-operation
//! counts. This is the unit the RL environment optimizes, one at a time.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::affine::{AccessMatrix, AffineMap};
use crate::error::IrError;
use crate::types::TensorType;

/// Identifier of an operation inside a [`crate::module::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Identifier of an SSA value (function argument or operation result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub usize);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Kind of a loop iterator in the iteration domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IteratorType {
    /// Iterations are independent; the loop may be parallelized.
    Parallel,
    /// The loop carries a reduction; parallelizing it requires special care
    /// and is treated as illegal by the environment.
    Reduction,
}

impl IteratorType {
    /// MLIR spelling of the iterator type.
    pub fn name(self) -> &'static str {
        match self {
            IteratorType::Parallel => "parallel",
            IteratorType::Reduction => "reduction",
        }
    }

    /// Parses the MLIR spelling.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Parse`] for unknown spellings.
    pub fn parse(s: &str) -> Result<Self, IrError> {
        match s.trim().trim_matches('"') {
            "parallel" => Ok(IteratorType::Parallel),
            "reduction" => Ok(IteratorType::Reduction),
            other => Err(IrError::Parse {
                line: 0,
                message: format!("unknown iterator type `{other}`"),
            }),
        }
    }
}

impl fmt::Display for IteratorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The operation category used by the state representation (Sec. IV-B).
///
/// The paper's one-hot encoding distinguishes `generic`, `matmul`, `conv`,
/// `pooling`, `add` and `other`; we keep the richer set of named operations
/// the workload generators produce and map them onto the paper's categories
/// via [`OpKind::feature_category`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `linalg.matmul`.
    Matmul,
    /// Batched matrix multiplication.
    BatchMatmul,
    /// 2-D convolution (NCHW x FCHW).
    Conv2D,
    /// Max pooling.
    MaxPool,
    /// Average pooling.
    AvgPool,
    /// Elementwise addition.
    Add,
    /// Elementwise ReLU (expressed as `linalg.generic` in MLIR).
    Relu,
    /// Elementwise sigmoid.
    Sigmoid,
    /// Row-wise softmax over a 2-D tensor.
    Softmax2D,
    /// A general `linalg.generic` loop nest.
    Generic,
    /// Any operation kind not seen during training.
    Unknown,
}

/// Feature-space category (the paper's one-hot operation types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpCategory {
    /// `linalg.generic` loop nests and elementwise ops coded as generic.
    Generic,
    /// Matrix multiplications.
    Matmul,
    /// Convolutions.
    Conv,
    /// Pooling operators.
    Pooling,
    /// Elementwise additions.
    Add,
    /// Anything else.
    Other,
}

impl OpCategory {
    /// All categories, in the one-hot encoding order used by the feature
    /// extractor.
    pub const ALL: [OpCategory; 6] = [
        OpCategory::Generic,
        OpCategory::Matmul,
        OpCategory::Conv,
        OpCategory::Pooling,
        OpCategory::Add,
        OpCategory::Other,
    ];

    /// Index of the category within [`OpCategory::ALL`].
    pub fn index(self) -> usize {
        OpCategory::ALL
            .iter()
            .position(|c| *c == self)
            .expect("category present in ALL")
    }
}

impl OpKind {
    /// MLIR-like operation name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Matmul => "linalg.matmul",
            OpKind::BatchMatmul => "linalg.batch_matmul",
            OpKind::Conv2D => "linalg.conv_2d_nchw_fchw",
            OpKind::MaxPool => "linalg.pooling_nchw_max",
            OpKind::AvgPool => "linalg.pooling_nchw_sum",
            OpKind::Add => "linalg.add",
            OpKind::Relu => "linalg.relu",
            OpKind::Sigmoid => "linalg.sigmoid",
            OpKind::Softmax2D => "linalg.softmax",
            OpKind::Generic => "linalg.generic",
            OpKind::Unknown => "linalg.unknown",
        }
    }

    /// Parses an operation name produced by [`OpKind::name`].
    ///
    /// Unrecognized `linalg.` names map to [`OpKind::Unknown`].
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Parse`] if the name is not a `linalg.` operation.
    pub fn parse(s: &str) -> Result<Self, IrError> {
        let s = s.trim();
        if !s.starts_with("linalg.") {
            return Err(IrError::Parse {
                line: 0,
                message: format!("expected a linalg operation name, got `{s}`"),
            });
        }
        Ok(match s {
            "linalg.matmul" => OpKind::Matmul,
            "linalg.batch_matmul" => OpKind::BatchMatmul,
            "linalg.conv_2d_nchw_fchw" => OpKind::Conv2D,
            "linalg.pooling_nchw_max" => OpKind::MaxPool,
            "linalg.pooling_nchw_sum" => OpKind::AvgPool,
            "linalg.add" => OpKind::Add,
            "linalg.relu" => OpKind::Relu,
            "linalg.sigmoid" => OpKind::Sigmoid,
            "linalg.softmax" => OpKind::Softmax2D,
            "linalg.generic" => OpKind::Generic,
            _ => OpKind::Unknown,
        })
    }

    /// The paper's feature-space category for this operation kind.
    pub fn feature_category(self) -> OpCategory {
        match self {
            OpKind::Matmul | OpKind::BatchMatmul => OpCategory::Matmul,
            OpKind::Conv2D => OpCategory::Conv,
            OpKind::MaxPool | OpKind::AvgPool => OpCategory::Pooling,
            OpKind::Add => OpCategory::Add,
            // ReLU, sigmoid and softmax do not exist as named Linalg ops in
            // MLIR; the paper codes them as `linalg.generic`.
            OpKind::Relu | OpKind::Sigmoid | OpKind::Softmax2D | OpKind::Generic => {
                OpCategory::Generic
            }
            OpKind::Unknown => OpCategory::Other,
        }
    }

    /// Returns true for purely elementwise operations (all-parallel iteration
    /// space, identity indexing maps).
    pub fn is_elementwise(self) -> bool {
        matches!(self, OpKind::Add | OpKind::Relu | OpKind::Sigmoid)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts of scalar arithmetic operations in the body of a Linalg op
/// (the "Operations Count" feature of Sec. IV-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArithCounts {
    /// Number of additions per iteration.
    pub add: u32,
    /// Number of subtractions per iteration.
    pub sub: u32,
    /// Number of multiplications per iteration.
    pub mul: u32,
    /// Number of divisions per iteration.
    pub div: u32,
    /// Number of exponentials per iteration.
    pub exp: u32,
    /// Number of comparison/max operations per iteration (pooling, ReLU).
    pub max: u32,
}

impl ArithCounts {
    /// Total scalar operations per iteration point.
    pub fn total(&self) -> u32 {
        self.add + self.sub + self.mul + self.div + self.exp + self.max
    }

    /// Weighted FLOP-equivalent cost per iteration point; divisions and
    /// exponentials cost more than additions on real hardware.
    pub fn weighted_cost(&self) -> f64 {
        f64::from(self.add)
            + f64::from(self.sub)
            + f64::from(self.mul)
            + 4.0 * f64::from(self.div)
            + 10.0 * f64::from(self.exp)
            + f64::from(self.max)
    }

    /// Feature-vector encoding `[add, sub, mul, div, exp]` as in the paper.
    pub fn to_features(&self) -> [f64; 5] {
        [
            f64::from(self.add),
            f64::from(self.sub),
            f64::from(self.mul),
            f64::from(self.div),
            f64::from(self.exp),
        ]
    }
}

/// One structured Linalg operation.
///
/// Invariants (checked by [`LinalgOp::validate`]):
/// * there is exactly one indexing map per operand (inputs then output);
/// * every indexing map declares `loop_bounds.len()` iterators;
/// * every map's result rank equals the rank of the corresponding operand;
/// * `iterator_types.len() == loop_bounds.len()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinalgOp {
    /// Operation identifier (assigned by the owning module).
    pub id: OpId,
    /// Operation kind.
    pub kind: OpKind,
    /// Iterator type of each loop level, outermost first.
    pub iterator_types: Vec<IteratorType>,
    /// Upper bound of each loop level (lower bound 0, step 1 as in Linalg).
    pub loop_bounds: Vec<u64>,
    /// SSA values read by the operation.
    pub inputs: Vec<ValueId>,
    /// Tensor types of the input operands (parallel to `inputs`).
    pub input_types: Vec<TensorType>,
    /// SSA value produced by the operation.
    pub result: ValueId,
    /// Tensor type of the result.
    pub result_type: TensorType,
    /// Indexing maps: one per input, followed by one for the output.
    pub indexing_maps: Vec<AffineMap>,
    /// Arithmetic operation counts of the scalar body.
    pub arith: ArithCounts,
}

impl LinalgOp {
    /// Number of loop levels `N`.
    pub fn num_loops(&self) -> usize {
        self.loop_bounds.len()
    }

    /// Number of accessed tensors `L` (inputs + output).
    pub fn num_operands(&self) -> usize {
        self.inputs.len() + 1
    }

    /// Total number of iteration points of the loop nest.
    pub fn iteration_points(&self) -> u64 {
        self.loop_bounds.iter().product()
    }

    /// Returns the iterator type of loop `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_loops()`.
    pub fn iterator_type(&self, level: usize) -> IteratorType {
        self.iterator_types[level]
    }

    /// Indices of the reduction loops.
    pub fn reduction_loops(&self) -> Vec<usize> {
        self.iterator_types
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (*t == IteratorType::Reduction).then_some(i))
            .collect()
    }

    /// Indices of the parallel loops.
    pub fn parallel_loops(&self) -> Vec<usize> {
        self.iterator_types
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (*t == IteratorType::Parallel).then_some(i))
            .collect()
    }

    /// Indexing map of input operand `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= inputs.len()`.
    pub fn input_map(&self, i: usize) -> &AffineMap {
        &self.indexing_maps[i]
    }

    /// Indexing map of the output operand.
    pub fn output_map(&self) -> &AffineMap {
        &self.indexing_maps[self.indexing_maps.len() - 1]
    }

    /// Tensor types of all operands, inputs first then the output.
    pub fn operand_types(&self) -> Vec<&TensorType> {
        self.input_types
            .iter()
            .chain(std::iter::once(&self.result_type))
            .collect()
    }

    /// Polyhedral access matrices of all operands (inputs then output).
    ///
    /// # Errors
    ///
    /// Propagates [`IrError`] from malformed indexing maps.
    pub fn access_matrices(&self) -> Result<Vec<AccessMatrix>, IrError> {
        self.indexing_maps
            .iter()
            .map(AffineMap::access_matrix)
            .collect()
    }

    /// Bytes touched by one full execution of the operation assuming each
    /// operand is read/written once (a lower bound on memory traffic).
    pub fn footprint_bytes(&self) -> u64 {
        self.input_types
            .iter()
            .map(TensorType::size_bytes)
            .sum::<u64>()
            + self.result_type.size_bytes()
    }

    /// Total scalar arithmetic operations of one full execution.
    pub fn total_flops(&self) -> f64 {
        self.iteration_points() as f64 * f64::from(self.arith.total())
    }

    /// Static vectorization pre-conditions (the "Vectorization
    /// Pre-conditions" feature): all indexing maps must be projected
    /// permutations (no strided/gathered accesses) and the op must have at
    /// least one loop.
    ///
    /// The *dynamic* restriction from the paper's action mask — the innermost
    /// loop must not exceed 512 iterations after tiling — is checked by the
    /// environment, because it depends on the current schedule.
    pub fn vectorization_precondition(&self) -> bool {
        !self.loop_bounds.is_empty()
            && self
                .indexing_maps
                .iter()
                .all(AffineMap::is_projected_permutation)
    }

    /// Checks the structural invariants listed on the type.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`IrError`].
    pub fn validate(&self) -> Result<(), IrError> {
        let operands = self.num_operands();
        if self.indexing_maps.len() != operands {
            return Err(IrError::OperandMapMismatch {
                operands,
                maps: self.indexing_maps.len(),
            });
        }
        if self.input_types.len() != self.inputs.len() {
            return Err(IrError::OperandMapMismatch {
                operands: self.inputs.len(),
                maps: self.input_types.len(),
            });
        }
        if self.iterator_types.len() != self.loop_bounds.len() {
            return Err(IrError::IteratorArityMismatch {
                operand: 0,
                map_dims: self.iterator_types.len(),
                op_dims: self.loop_bounds.len(),
            });
        }
        let num_dims = self.loop_bounds.len();
        for (i, map) in self.indexing_maps.iter().enumerate() {
            if map.num_dims() != num_dims {
                return Err(IrError::IteratorArityMismatch {
                    operand: i,
                    map_dims: map.num_dims(),
                    op_dims: num_dims,
                });
            }
            let tensor_rank = if i < self.inputs.len() {
                self.input_types[i].rank()
            } else {
                self.result_type.rank()
            };
            if map.num_results() != tensor_rank {
                return Err(IrError::RankMismatch {
                    operand: i,
                    map_rank: map.num_results(),
                    tensor_rank,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ElementType;

    fn matmul_op() -> LinalgOp {
        // C[256x512] = A[256x1024] * B[1024x512]
        LinalgOp {
            id: OpId(0),
            kind: OpKind::Matmul,
            iterator_types: vec![
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Reduction,
            ],
            loop_bounds: vec![256, 512, 1024],
            inputs: vec![ValueId(0), ValueId(1)],
            input_types: vec![
                TensorType::new(vec![256, 1024], ElementType::F32).unwrap(),
                TensorType::new(vec![1024, 512], ElementType::F32).unwrap(),
            ],
            result: ValueId(2),
            result_type: TensorType::new(vec![256, 512], ElementType::F32).unwrap(),
            indexing_maps: vec![
                AffineMap::projection(3, &[0, 2]),
                AffineMap::projection(3, &[2, 1]),
                AffineMap::projection(3, &[0, 1]),
            ],
            arith: ArithCounts {
                add: 1,
                mul: 1,
                ..Default::default()
            },
        }
    }

    #[test]
    fn iterator_type_parse() {
        assert_eq!(
            IteratorType::parse("\"parallel\"").unwrap(),
            IteratorType::Parallel
        );
        assert_eq!(
            IteratorType::parse("reduction").unwrap(),
            IteratorType::Reduction
        );
        assert!(IteratorType::parse("window").is_err());
    }

    #[test]
    fn op_kind_categories() {
        assert_eq!(OpKind::Matmul.feature_category(), OpCategory::Matmul);
        assert_eq!(OpKind::Relu.feature_category(), OpCategory::Generic);
        assert_eq!(OpKind::MaxPool.feature_category(), OpCategory::Pooling);
        assert_eq!(OpKind::Unknown.feature_category(), OpCategory::Other);
        assert_eq!(OpCategory::Matmul.index(), 1);
        assert_eq!(OpCategory::Other.index(), 5);
    }

    #[test]
    fn op_kind_parse_roundtrip() {
        for kind in [
            OpKind::Matmul,
            OpKind::BatchMatmul,
            OpKind::Conv2D,
            OpKind::MaxPool,
            OpKind::AvgPool,
            OpKind::Add,
            OpKind::Relu,
            OpKind::Sigmoid,
            OpKind::Softmax2D,
            OpKind::Generic,
        ] {
            assert_eq!(OpKind::parse(kind.name()).unwrap(), kind);
        }
        assert_eq!(
            OpKind::parse("linalg.something_new").unwrap(),
            OpKind::Unknown
        );
        assert!(OpKind::parse("arith.addf").is_err());
    }

    #[test]
    fn arith_counts() {
        let c = ArithCounts {
            add: 1,
            mul: 1,
            exp: 1,
            ..Default::default()
        };
        assert_eq!(c.total(), 3);
        assert!(c.weighted_cost() > 3.0);
        assert_eq!(c.to_features(), [1.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn matmul_structure() {
        let op = matmul_op();
        op.validate().unwrap();
        assert_eq!(op.num_loops(), 3);
        assert_eq!(op.num_operands(), 3);
        assert_eq!(op.iteration_points(), 256 * 512 * 1024);
        assert_eq!(op.reduction_loops(), vec![2]);
        assert_eq!(op.parallel_loops(), vec![0, 1]);
        assert_eq!(op.total_flops(), (256 * 512 * 1024) as f64 * 2.0);
        assert!(op.vectorization_precondition());
        assert_eq!(
            op.footprint_bytes(),
            (256 * 1024 + 1024 * 512 + 256 * 512) * 4
        );
    }

    #[test]
    fn validation_catches_map_count_mismatch() {
        let mut op = matmul_op();
        op.indexing_maps.pop();
        assert!(matches!(
            op.validate(),
            Err(IrError::OperandMapMismatch { .. })
        ));
    }

    #[test]
    fn validation_catches_rank_mismatch() {
        let mut op = matmul_op();
        op.indexing_maps[0] = AffineMap::projection(3, &[0]);
        assert!(matches!(op.validate(), Err(IrError::RankMismatch { .. })));
    }

    #[test]
    fn validation_catches_iterator_arity_mismatch() {
        let mut op = matmul_op();
        op.indexing_maps[0] = AffineMap::projection(4, &[0, 2]);
        assert!(matches!(
            op.validate(),
            Err(IrError::IteratorArityMismatch { .. })
        ));
    }

    #[test]
    fn vectorization_precondition_fails_on_strided_access() {
        use crate::affine::AffineExpr;
        let mut op = matmul_op();
        op.indexing_maps[0] =
            AffineMap::new(3, vec![AffineExpr::dim(0) * 2, AffineExpr::dim(2)]).unwrap();
        assert!(!op.vectorization_precondition());
    }
}
