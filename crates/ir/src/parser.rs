//! Parser for the textual module format produced by [`crate::printer`].
//!
//! The grammar is a small, line-oriented subset of MLIR syntax sufficient to
//! round-trip the modules this project generates. Parsing is intentionally
//! strict: malformed input produces an [`IrError::Parse`] with the offending
//! line number.

use crate::affine::{AffineExpr, AffineMap};
use crate::error::IrError;
use crate::module::{Module, ValueDef};
use crate::op::{ArithCounts, IteratorType, LinalgOp, OpId, OpKind, ValueId};
use crate::types::TensorType;

/// Parses a module printed by [`crate::printer::print_module`].
///
/// # Errors
///
/// Returns [`IrError::Parse`] (with a line number) on malformed input, or
/// other [`IrError`] variants if the parsed module fails validation.
///
/// # Examples
///
/// ```
/// use mlir_rl_ir::builder::ModuleBuilder;
/// use mlir_rl_ir::{parser::parse_module, printer::print_module};
///
/// let mut b = ModuleBuilder::new("f");
/// let a = b.argument("A", vec![4, 8]);
/// let w = b.argument("B", vec![8, 2]);
/// b.matmul(a, w);
/// let original = b.finish();
/// let reparsed = parse_module(&print_module(&original)).unwrap();
/// assert_eq!(reparsed.ops().len(), 1);
/// ```
pub fn parse_module(text: &str) -> Result<Module, IrError> {
    let mut parser = Parser::new(text);
    let module = parser.parse_module()?;
    module.validate()?;
    Ok(module)
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"))
            .collect();
        Self { lines, pos: 0 }
    }

    fn err(&self, line: usize, message: impl Into<String>) -> IrError {
        IrError::Parse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn expect_line_starting(&mut self, prefix: &str) -> Result<(usize, &'a str), IrError> {
        match self.next_line() {
            Some((n, l)) if l.starts_with(prefix) => Ok((n, l)),
            Some((n, l)) => Err(self.err(n, format!("expected `{prefix}...`, got `{l}`"))),
            None => Err(self.err(0, format!("unexpected end of input, expected `{prefix}`"))),
        }
    }

    fn parse_module(&mut self) -> Result<Module, IrError> {
        let (line_no, header) = self.expect_line_starting("func @")?;
        let rest = &header["func @".len()..];
        let open = rest
            .find('(')
            .ok_or_else(|| self.err(line_no, "expected `(` after function name"))?;
        let name = &rest[..open];
        let close = rest
            .rfind(')')
            .ok_or_else(|| self.err(line_no, "expected `)` closing the argument list"))?;
        let args_text = &rest[open + 1..close];
        if !rest[close..].contains('{') {
            return Err(self.err(line_no, "expected `{` opening the function body"));
        }

        let mut module = Module::new(name);
        // name -> ValueId environment for operand references.
        let mut env: Vec<(String, ValueId)> = Vec::new();

        for arg in split_top_level(args_text, ',') {
            let arg = arg.trim();
            if arg.is_empty() {
                continue;
            }
            let (argname, ty) = arg
                .split_once(':')
                .ok_or_else(|| self.err(line_no, format!("malformed argument `{arg}`")))?;
            let argname = argname
                .trim()
                .strip_prefix('%')
                .ok_or_else(|| self.err(line_no, format!("argument `{arg}` must start with %")))?;
            let ty = TensorType::parse(ty.trim())?;
            let id = module.add_value(ty, ValueDef::Argument, argname);
            env.push((argname.to_string(), id));
        }

        loop {
            match self.peek() {
                None => return Err(self.err(0, "unexpected end of input, expected `}`")),
                Some((_, "}")) => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let (result_name, op) = self.parse_op(&module, &env)?;
                    let id = module.add_op(op, result_name.clone());
                    let result = module.op(id).expect("op just added").result;
                    env.push((result_name, result));
                }
            }
        }
        Ok(module)
    }

    fn lookup(
        &self,
        env: &[(String, ValueId)],
        line: usize,
        name: &str,
    ) -> Result<ValueId, IrError> {
        env.iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .ok_or_else(|| self.err(line, format!("use of undefined value %{name}")))
    }

    fn parse_op(
        &mut self,
        module: &Module,
        env: &[(String, ValueId)],
    ) -> Result<(String, LinalgOp), IrError> {
        // Header: `%t0 = linalg.matmul`
        let (line_no, header) = self
            .next_line()
            .ok_or_else(|| self.err(0, "unexpected end of input, expected operation"))?;
        let (result, kind_text) = header.split_once('=').ok_or_else(|| {
            self.err(
                line_no,
                format!("expected `%result = linalg...`, got `{header}`"),
            )
        })?;
        let result_name = result
            .trim()
            .strip_prefix('%')
            .ok_or_else(|| self.err(line_no, "operation result must start with %"))?
            .to_string();
        let kind = OpKind::parse(kind_text.trim()).map_err(|e| match e {
            IrError::Parse { message, .. } => self.err(line_no, message),
            other => other,
        })?;

        // iterators = [...]
        let (itl, iter_line) = self.expect_line_starting("iterators = [")?;
        let iterators = bracket_contents(iter_line)
            .ok_or_else(|| self.err(itl, "malformed iterator list"))?
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(IteratorType::parse)
            .collect::<Result<Vec<_>, _>>()?;

        // bounds = [...]
        let (bl, bounds_line) = self.expect_line_starting("bounds = [")?;
        let loop_bounds = bracket_contents(bounds_line)
            .ok_or_else(|| self.err(bl, "malformed bounds list"))?
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| self.err(bl, format!("invalid loop bound `{s}`")))
            })
            .collect::<Result<Vec<_>, _>>()?;

        // maps = [...]
        let (ml, maps_line) = self.expect_line_starting("maps = [")?;
        let maps_inner =
            bracket_contents(maps_line).ok_or_else(|| self.err(ml, "malformed maps list"))?;
        let mut indexing_maps = Vec::new();
        for map_text in split_top_level(maps_inner, ',') {
            let map_text = map_text.trim();
            if map_text.is_empty() {
                continue;
            }
            indexing_maps.push(parse_affine_map(map_text).map_err(|e| match e {
                IrError::Parse { message, .. } => self.err(ml, message),
                other => other,
            })?);
        }

        // arith = {...}
        let (al, arith_line) = self.expect_line_starting("arith = {")?;
        let arith_inner = arith_line
            .strip_prefix("arith = {")
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| self.err(al, "malformed arith block"))?;
        let mut arith = ArithCounts::default();
        for entry in arith_inner.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (k, v) = entry
                .split_once('=')
                .ok_or_else(|| self.err(al, format!("malformed arith entry `{entry}`")))?;
            let v: u32 = v
                .trim()
                .parse()
                .map_err(|_| self.err(al, format!("invalid arith count `{entry}`")))?;
            match k.trim() {
                "add" => arith.add = v,
                "sub" => arith.sub = v,
                "mul" => arith.mul = v,
                "div" => arith.div = v,
                "exp" => arith.exp = v,
                "max" => arith.max = v,
                other => return Err(self.err(al, format!("unknown arith op `{other}`"))),
            }
        }

        // ins(...)
        let (il, ins_line) = self.expect_line_starting("ins(")?;
        let ins_inner = ins_line
            .strip_prefix("ins(")
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| self.err(il, "malformed ins(...) clause"))?;
        let mut inputs = Vec::new();
        let mut input_types = Vec::new();
        for operand in split_top_level(ins_inner, ',') {
            let operand = operand.trim();
            if operand.is_empty() {
                continue;
            }
            let (name, ty) = operand
                .split_once(':')
                .ok_or_else(|| self.err(il, format!("malformed operand `{operand}`")))?;
            let name = name
                .trim()
                .strip_prefix('%')
                .ok_or_else(|| self.err(il, format!("operand `{operand}` must start with %")))?;
            inputs.push(self.lookup(env, il, name)?);
            input_types.push(TensorType::parse(ty.trim())?);
        }

        // outs(...)
        let (ol, outs_line) = self.expect_line_starting("outs(")?;
        let outs_inner = outs_line
            .strip_prefix("outs(")
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| self.err(ol, "malformed outs(...) clause"))?;
        let result_type = TensorType::parse(outs_inner.trim())?;

        let _ = module; // reserved for future cross-checking against the module
        let op = LinalgOp {
            id: OpId(0),
            kind,
            iterator_types: iterators,
            loop_bounds,
            inputs,
            input_types,
            result: ValueId(0),
            result_type,
            indexing_maps,
            arith,
        };
        Ok((result_name, op))
    }
}

/// Extracts the contents between the first `[` and the last `]`.
fn bracket_contents(line: &str) -> Option<&str> {
    let start = line.find('[')?;
    let end = line.rfind(']')?;
    if end < start {
        return None;
    }
    Some(&line[start + 1..end])
}

/// Splits on `sep` but ignores separators nested inside `(`, `<` or `[`.
/// The arrow token `->` is not treated as a closing bracket.
fn split_top_level(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut prev = '\0';
    for (i, c) in text.char_indices() {
        match c {
            '(' | '<' | '[' | '{' => depth += 1,
            '>' if prev == '-' => {} // the `->` arrow, not a bracket
            ')' | '>' | ']' | '}' => depth -= 1,
            c if c == sep && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev = c;
    }
    parts.push(&text[start..]);
    parts
}

/// Parses `affine_map<(d0, d1) -> (d0 + 1, 3 * d1)>`.
///
/// # Errors
///
/// Returns [`IrError::Parse`] on malformed maps.
pub fn parse_affine_map(text: &str) -> Result<AffineMap, IrError> {
    let inner = text
        .trim()
        .strip_prefix("affine_map<")
        .and_then(|s| s.strip_suffix('>'))
        .ok_or_else(|| IrError::Parse {
            line: 0,
            message: format!("expected `affine_map<...>`, got `{text}`"),
        })?;
    let (dims_part, results_part) = inner.split_once("->").ok_or_else(|| IrError::Parse {
        line: 0,
        message: format!("expected `->` in affine map `{text}`"),
    })?;
    let dims_part = dims_part.trim();
    let dims_inner = dims_part
        .strip_prefix('(')
        .and_then(|s| s.trim_end().strip_suffix(')'))
        .ok_or_else(|| IrError::Parse {
            line: 0,
            message: format!("malformed dimension list in `{text}`"),
        })?;
    let num_dims = dims_inner
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .count();
    let results_part = results_part.trim();
    let results_inner = results_part
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| IrError::Parse {
            line: 0,
            message: format!("malformed result list in `{text}`"),
        })?;
    let mut results = Vec::new();
    for expr_text in split_top_level(results_inner, ',') {
        let expr_text = expr_text.trim();
        if expr_text.is_empty() {
            continue;
        }
        results.push(parse_affine_expr(expr_text)?);
    }
    AffineMap::new(num_dims, results)
}

/// Parses a single affine expression: a sum/difference of terms, each either
/// a constant, `dN`, or `C * dN`.
///
/// # Errors
///
/// Returns [`IrError::Parse`] on malformed expressions.
pub fn parse_affine_expr(text: &str) -> Result<AffineExpr, IrError> {
    // Tokenize into signed terms.
    let text = text.trim();
    if text.is_empty() {
        return Err(IrError::Parse {
            line: 0,
            message: "empty affine expression".into(),
        });
    }
    let mut terms: Vec<(i64, &str)> = Vec::new(); // (sign, term text)
    let mut current_start = 0usize;
    let mut sign = 1i64;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let mut pending_sign = 1i64;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if (c == '+' || c == '-') && i > current_start {
            let term = text[current_start..i].trim();
            if !term.is_empty() {
                terms.push((sign * pending_sign, term));
            }
            sign = if c == '-' { -1 } else { 1 };
            pending_sign = 1;
            current_start = i + 1;
        } else if (c == '-') && i == current_start {
            // Leading minus of the very first term.
            pending_sign = -1;
            current_start = i + 1;
        }
        i += 1;
    }
    let last = text[current_start..].trim();
    if !last.is_empty() {
        terms.push((sign * pending_sign, last));
    }

    let mut expr: Option<AffineExpr> = None;
    for (term_sign, term) in terms {
        let parsed = parse_affine_term(term)?;
        let signed = if term_sign < 0 {
            AffineExpr::Mul(Box::new(parsed), -1)
        } else {
            parsed
        };
        expr = Some(match expr {
            None => signed,
            Some(e) => AffineExpr::Add(Box::new(e), Box::new(signed)),
        });
    }
    expr.ok_or_else(|| IrError::Parse {
        line: 0,
        message: format!("could not parse affine expression `{text}`"),
    })
}

fn parse_affine_term(term: &str) -> Result<AffineExpr, IrError> {
    let term = term.trim();
    if let Some((lhs, rhs)) = term.split_once('*') {
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        // Either `C * dN` or `dN * C`.
        if let Some(d) = parse_dim(lhs) {
            let c: i64 = rhs.parse().map_err(|_| IrError::Parse {
                line: 0,
                message: format!("invalid multiplier `{rhs}`"),
            })?;
            return Ok(AffineExpr::Mul(Box::new(AffineExpr::Dim(d)), c));
        }
        if let Some(d) = parse_dim(rhs) {
            let c: i64 = lhs.parse().map_err(|_| IrError::Parse {
                line: 0,
                message: format!("invalid multiplier `{lhs}`"),
            })?;
            return Ok(AffineExpr::Mul(Box::new(AffineExpr::Dim(d)), c));
        }
        return Err(IrError::Parse {
            line: 0,
            message: format!("malformed affine term `{term}`"),
        });
    }
    if let Some(d) = parse_dim(term) {
        return Ok(AffineExpr::Dim(d));
    }
    term.parse::<i64>()
        .map(AffineExpr::Constant)
        .map_err(|_| IrError::Parse {
            line: 0,
            message: format!("malformed affine term `{term}`"),
        })
}

fn parse_dim(s: &str) -> Option<usize> {
    s.strip_prefix('d').and_then(|n| n.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::printer::print_module;

    #[test]
    fn parse_simple_affine_exprs() {
        assert_eq!(parse_affine_expr("d0").unwrap(), AffineExpr::Dim(0));
        assert_eq!(parse_affine_expr("7").unwrap(), AffineExpr::Constant(7));
        let e = parse_affine_expr("d0 + 1").unwrap();
        assert_eq!(e.coefficients(1).unwrap(), (vec![1], 1));
        let e = parse_affine_expr("2 * d1 - 3").unwrap();
        assert_eq!(e.coefficients(2).unwrap(), (vec![0, 2], -3));
        let e = parse_affine_expr("d0 - d1").unwrap();
        assert_eq!(e.coefficients(2).unwrap(), (vec![1, -1], 0));
    }

    #[test]
    fn parse_affine_expr_errors() {
        assert!(parse_affine_expr("").is_err());
        assert!(parse_affine_expr("x0").is_err());
        assert!(parse_affine_expr("d0 * d1").is_err());
    }

    #[test]
    fn parse_affine_map_roundtrip() {
        let map = AffineMap::new(
            3,
            vec![
                AffineExpr::dim(0) + AffineExpr::constant(1),
                AffineExpr::dim(2) * 3,
            ],
        )
        .unwrap();
        let printed = map.to_string();
        let reparsed = parse_affine_map(&printed).unwrap();
        assert_eq!(reparsed.num_dims(), 3);
        assert_eq!(
            reparsed.access_matrix().unwrap(),
            map.access_matrix().unwrap()
        );
    }

    #[test]
    fn module_roundtrip_matmul_chain() {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 32]);
        let mm = b.matmul(a, w);
        let r = b.relu(mm);
        let bias = b.argument("bias", vec![64, 32]);
        b.add(r, bias);
        let original = b.finish();

        let text = print_module(&original);
        let reparsed = parse_module(&text).unwrap();
        assert_eq!(reparsed.name(), "chain");
        assert_eq!(reparsed.ops().len(), original.ops().len());
        for (o, r) in original.ops().iter().zip(reparsed.ops()) {
            assert_eq!(o.kind, r.kind);
            assert_eq!(o.loop_bounds, r.loop_bounds);
            assert_eq!(o.iterator_types, r.iterator_types);
            assert_eq!(o.arith, r.arith);
            assert_eq!(o.indexing_maps.len(), r.indexing_maps.len());
        }
        // Dataflow must be preserved: the relu consumes the matmul.
        let order = reparsed.op_order();
        assert_eq!(reparsed.producers(order[1]), vec![order[0]]);
    }

    #[test]
    fn module_roundtrip_conv() {
        let mut b = ModuleBuilder::new("convnet");
        let x = b.argument("x", vec![1, 3, 32, 32]);
        let w = b.argument("w", vec![16, 3, 3, 3]);
        let y = b.conv2d(x, w, 2);
        b.max_pool(y, 2, 2);
        let original = b.finish();
        let reparsed = parse_module(&print_module(&original)).unwrap();
        assert_eq!(reparsed.ops()[0].loop_bounds, original.ops()[0].loop_bounds);
        // The strided access expression must survive the roundtrip.
        assert_eq!(
            reparsed.ops()[0].indexing_maps[0].access_matrix().unwrap(),
            original.ops()[0].indexing_maps[0].access_matrix().unwrap()
        );
    }

    #[test]
    fn parse_rejects_undefined_value() {
        let text = "func @f(%A: tensor<4x4xf32>) {\n  %t0 = linalg.relu\n    iterators = [\"parallel\", \"parallel\"]\n    bounds = [4, 4]\n    maps = [affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d0, d1)>]\n    arith = {max = 1}\n    ins(%missing : tensor<4x4xf32>)\n    outs(tensor<4x4xf32>)\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.to_string().contains("undefined value"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_module("not a module").is_err());
        assert!(parse_module("func @f() {").is_err());
        assert!(parse_module("").is_err());
    }

    #[test]
    fn split_top_level_respects_nesting() {
        let parts = split_top_level("a<b,c>, d(e,f), g", ',');
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].trim(), "a<b,c>");
        assert_eq!(parts[1].trim(), "d(e,f)");
        assert_eq!(parts[2].trim(), "g");
    }
}
