//! # mlir-rl-ir
//!
//! A miniature, self-contained re-implementation of the MLIR **Linalg**
//! dialect structures that the MLIR RL paper's environment operates on:
//! affine indexing maps, ranked tensor types, structured operations with
//! iteration domains and iterator types, and modules (sequences of
//! operations connected by SSA values), plus a textual printer/parser.
//!
//! This crate is the substrate on which the rest of the reproduction is
//! built: the `mlir-rl-transforms` crate applies loop transformations to
//! these operations, `mlir-rl-costmodel` estimates their execution time, and
//! `mlir-rl-env` exposes them to a reinforcement-learning agent.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_ir::builder::ModuleBuilder;
//! use mlir_rl_ir::printer::print_module;
//!
//! // Build the paper's running example: a 256x1024 by 1024x512 matmul.
//! let mut b = ModuleBuilder::new("main");
//! let a = b.argument("A", vec![256, 1024]);
//! let w = b.argument("B", vec![1024, 512]);
//! let _c = b.matmul(a, w);
//! let module = b.finish();
//!
//! module.validate()?;
//! assert!(print_module(&module).contains("linalg.matmul"));
//! # Ok::<(), mlir_rl_ir::IrError>(())
//! ```

#![warn(missing_docs)]

pub mod affine;
pub mod builder;
pub mod error;
pub mod module;
pub mod op;
pub mod parser;
pub mod printer;
pub mod types;

pub use affine::{AccessMatrix, AffineExpr, AffineMap};
pub use builder::ModuleBuilder;
pub use error::IrError;
pub use module::{Module, Value, ValueDef};
pub use op::{ArithCounts, IteratorType, LinalgOp, OpCategory, OpId, OpKind, ValueId};
pub use types::{ElementType, TensorType};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_reexports_are_usable() {
        let mut b = ModuleBuilder::new("smoke");
        let x = b.argument("x", vec![8, 8]);
        let y = b.argument("y", vec![8, 8]);
        b.add(x, y);
        let m = b.finish();
        assert!(m.validate().is_ok());
        assert_eq!(m.ops()[0].kind, OpKind::Add);
    }
}
