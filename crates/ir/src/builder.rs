//! Convenience builder for modules of named Linalg operations.
//!
//! The builder knows the iteration domain, iterator types, indexing maps and
//! body arithmetic of each named operation the workload generators need
//! (matmul, conv2d, pooling, elementwise ops, softmax, and free-form
//! generics), mirroring how Torch-MLIR lowers PyTorch models into Linalg.

use crate::affine::{AffineExpr, AffineMap};
use crate::module::{Module, ValueDef};
use crate::op::{ArithCounts, IteratorType, LinalgOp, OpId, OpKind, ValueId};
use crate::types::{ElementType, TensorType};

/// Builder for [`Module`]s.
///
/// Methods that create operations take the SSA values of their inputs and
/// return the SSA value of the result, so operation chains read naturally:
///
/// ```
/// use mlir_rl_ir::builder::ModuleBuilder;
///
/// let mut b = ModuleBuilder::new("mlp_layer");
/// let x = b.argument("x", vec![32, 256]);
/// let w = b.argument("w", vec![256, 128]);
/// let y = b.matmul(x, w);
/// let _a = b.relu(y);
/// let module = b.finish();
/// module.validate().unwrap();
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
    element: ElementType,
    next_temp: usize,
}

impl ModuleBuilder {
    /// Creates a builder for a module with the given name, using `f32`
    /// elements.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            module: Module::new(name),
            element: ElementType::F32,
            next_temp: 0,
        }
    }

    /// Creates a builder producing tensors of the given element type.
    pub fn with_element_type(name: impl Into<String>, element: ElementType) -> Self {
        Self {
            module: Module::new(name),
            element,
            next_temp: 0,
        }
    }

    /// Finishes construction and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// The element type used for new tensors.
    pub fn element_type(&self) -> ElementType {
        self.element
    }

    /// Declares a function argument with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape contains a zero-sized dimension.
    pub fn argument(&mut self, name: &str, shape: Vec<u64>) -> ValueId {
        let ty = TensorType::new(shape, self.element).expect("valid argument shape");
        self.module.add_value(ty, ValueDef::Argument, name)
    }

    fn temp_name(&mut self) -> String {
        let name = format!("t{}", self.next_temp);
        self.next_temp += 1;
        name
    }

    fn value_shape(&self, v: ValueId) -> Vec<u64> {
        self.module
            .value(v)
            .expect("value defined in this module")
            .ty
            .shape()
            .to_vec()
    }

    fn tensor(&self, shape: Vec<u64>) -> TensorType {
        TensorType::new(shape, self.element).expect("valid shape")
    }

    fn push(&mut self, op: LinalgOp) -> ValueId {
        let name = self.temp_name();
        let id = self.module.add_op(op, name);
        self.module.op(id).expect("op just inserted").result
    }

    /// Matrix multiplication `C[MxN] = A[MxK] * B[KxN]`.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not 2-D or their inner dimensions disagree.
    pub fn matmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let sa = self.value_shape(a);
        let sb = self.value_shape(b);
        assert_eq!(sa.len(), 2, "matmul lhs must be 2-D, got {sa:?}");
        assert_eq!(sb.len(), 2, "matmul rhs must be 2-D, got {sb:?}");
        assert_eq!(sa[1], sb[0], "matmul inner dimensions must agree");
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let op = LinalgOp {
            id: OpId(0),
            kind: OpKind::Matmul,
            iterator_types: vec![
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Reduction,
            ],
            loop_bounds: vec![m, n, k],
            inputs: vec![a, b],
            input_types: vec![self.tensor(vec![m, k]), self.tensor(vec![k, n])],
            result: ValueId(0),
            result_type: self.tensor(vec![m, n]),
            indexing_maps: vec![
                AffineMap::projection(3, &[0, 2]),
                AffineMap::projection(3, &[2, 1]),
                AffineMap::projection(3, &[0, 1]),
            ],
            arith: ArithCounts {
                add: 1,
                mul: 1,
                ..Default::default()
            },
        };
        self.push(op)
    }

    /// Batched matrix multiplication `C[BxMxN] = A[BxMxK] * B[BxKxN]`.
    ///
    /// # Panics
    ///
    /// Panics if operands are not 3-D or shapes disagree.
    pub fn batch_matmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let sa = self.value_shape(a);
        let sb = self.value_shape(b);
        assert_eq!(sa.len(), 3, "batch_matmul lhs must be 3-D");
        assert_eq!(sb.len(), 3, "batch_matmul rhs must be 3-D");
        assert_eq!(sa[0], sb[0], "batch dimensions must agree");
        assert_eq!(sa[2], sb[1], "inner dimensions must agree");
        let (bsz, m, k, n) = (sa[0], sa[1], sa[2], sb[2]);
        let op = LinalgOp {
            id: OpId(0),
            kind: OpKind::BatchMatmul,
            iterator_types: vec![
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Reduction,
            ],
            loop_bounds: vec![bsz, m, n, k],
            inputs: vec![a, b],
            input_types: vec![self.tensor(vec![bsz, m, k]), self.tensor(vec![bsz, k, n])],
            result: ValueId(0),
            result_type: self.tensor(vec![bsz, m, n]),
            indexing_maps: vec![
                AffineMap::projection(4, &[0, 1, 3]),
                AffineMap::projection(4, &[0, 3, 2]),
                AffineMap::projection(4, &[0, 1, 2]),
            ],
            arith: ArithCounts {
                add: 1,
                mul: 1,
                ..Default::default()
            },
        };
        self.push(op)
    }

    /// 2-D convolution in NCHW/FCHW layout with the given stride.
    ///
    /// Input `[N, C, H, W]`, filter `[F, C, KH, KW]`, output
    /// `[N, F, OH, OW]` with `OH = (H - KH) / stride + 1`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches or if the kernel does not fit.
    pub fn conv2d(&mut self, input: ValueId, filter: ValueId, stride: u64) -> ValueId {
        assert!(stride >= 1, "stride must be at least 1");
        let si = self.value_shape(input);
        let sf = self.value_shape(filter);
        assert_eq!(si.len(), 4, "conv2d input must be 4-D (NCHW)");
        assert_eq!(sf.len(), 4, "conv2d filter must be 4-D (FCHW)");
        assert_eq!(si[1], sf[1], "channel dimensions must agree");
        let (n, c, h, w) = (si[0], si[1], si[2], si[3]);
        let (f, kh, kw) = (sf[0], sf[2], sf[3]);
        assert!(h >= kh && w >= kw, "kernel larger than input");
        let oh = (h - kh) / stride + 1;
        let ow = (w - kw) / stride + 1;
        // Loops: (d0=n, d1=f, d2=oh, d3=ow, d4=c, d5=kh, d6=kw)
        let s = stride as i64;
        let input_map = AffineMap::new(
            7,
            vec![
                AffineExpr::dim(0),
                AffineExpr::dim(4),
                AffineExpr::dim(2) * s + AffineExpr::dim(5),
                AffineExpr::dim(3) * s + AffineExpr::dim(6),
            ],
        )
        .expect("valid conv input map");
        let filter_map = AffineMap::projection(7, &[1, 4, 5, 6]);
        let output_map = AffineMap::projection(7, &[0, 1, 2, 3]);
        let op = LinalgOp {
            id: OpId(0),
            kind: OpKind::Conv2D,
            iterator_types: vec![
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Reduction,
                IteratorType::Reduction,
                IteratorType::Reduction,
            ],
            loop_bounds: vec![n, f, oh, ow, c, kh, kw],
            inputs: vec![input, filter],
            input_types: vec![
                self.tensor(vec![n, c, h, w]),
                self.tensor(vec![f, c, kh, kw]),
            ],
            result: ValueId(0),
            result_type: self.tensor(vec![n, f, oh, ow]),
            indexing_maps: vec![input_map, filter_map, output_map],
            arith: ArithCounts {
                add: 1,
                mul: 1,
                ..Default::default()
            },
        };
        self.push(op)
    }

    fn pooling(&mut self, input: ValueId, window: u64, stride: u64, kind: OpKind) -> ValueId {
        assert!(stride >= 1, "stride must be at least 1");
        let si = self.value_shape(input);
        assert_eq!(si.len(), 4, "pooling input must be 4-D (NCHW)");
        let (n, c, h, w) = (si[0], si[1], si[2], si[3]);
        assert!(h >= window && w >= window, "window larger than input");
        let oh = (h - window) / stride + 1;
        let ow = (w - window) / stride + 1;
        // Loops: (d0=n, d1=c, d2=oh, d3=ow, d4=kh, d5=kw)
        let s = stride as i64;
        let input_map = AffineMap::new(
            6,
            vec![
                AffineExpr::dim(0),
                AffineExpr::dim(1),
                AffineExpr::dim(2) * s + AffineExpr::dim(4),
                AffineExpr::dim(3) * s + AffineExpr::dim(5),
            ],
        )
        .expect("valid pooling input map");
        let output_map = AffineMap::projection(6, &[0, 1, 2, 3]);
        let arith = if kind == OpKind::MaxPool {
            ArithCounts {
                max: 1,
                ..Default::default()
            }
        } else {
            ArithCounts {
                add: 1,
                ..Default::default()
            }
        };
        let op = LinalgOp {
            id: OpId(0),
            kind,
            iterator_types: vec![
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Reduction,
                IteratorType::Reduction,
            ],
            loop_bounds: vec![n, c, oh, ow, window, window],
            inputs: vec![input],
            input_types: vec![self.tensor(vec![n, c, h, w])],
            result: ValueId(0),
            result_type: self.tensor(vec![n, c, oh, ow]),
            indexing_maps: vec![input_map, output_map],
            arith,
        };
        self.push(op)
    }

    /// Max pooling over `window x window` with the given stride (NCHW).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn max_pool(&mut self, input: ValueId, window: u64, stride: u64) -> ValueId {
        self.pooling(input, window, stride, OpKind::MaxPool)
    }

    /// Average (sum) pooling over `window x window` (NCHW).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn avg_pool(&mut self, input: ValueId, window: u64, stride: u64) -> ValueId {
        self.pooling(input, window, stride, OpKind::AvgPool)
    }

    fn elementwise_unary(&mut self, input: ValueId, kind: OpKind, arith: ArithCounts) -> ValueId {
        let shape = self.value_shape(input);
        let rank = shape.len();
        assert!(rank >= 1, "elementwise op needs a ranked tensor");
        let map = AffineMap::identity(rank);
        let op = LinalgOp {
            id: OpId(0),
            kind,
            iterator_types: vec![IteratorType::Parallel; rank],
            loop_bounds: shape.clone(),
            inputs: vec![input],
            input_types: vec![self.tensor(shape.clone())],
            result: ValueId(0),
            result_type: self.tensor(shape),
            indexing_maps: vec![map.clone(), map],
            arith,
        };
        self.push(op)
    }

    /// Elementwise ReLU.
    ///
    /// # Panics
    ///
    /// Panics if the input is rank 0.
    pub fn relu(&mut self, input: ValueId) -> ValueId {
        self.elementwise_unary(
            input,
            OpKind::Relu,
            ArithCounts {
                max: 1,
                ..Default::default()
            },
        )
    }

    /// Elementwise sigmoid `1 / (1 + exp(-x))`.
    ///
    /// # Panics
    ///
    /// Panics if the input is rank 0.
    pub fn sigmoid(&mut self, input: ValueId) -> ValueId {
        self.elementwise_unary(
            input,
            OpKind::Sigmoid,
            ArithCounts {
                add: 1,
                div: 1,
                exp: 1,
                ..Default::default()
            },
        )
    }

    /// Elementwise addition of two tensors with identical shapes.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let sa = self.value_shape(a);
        let sb = self.value_shape(b);
        assert_eq!(sa, sb, "elementwise add requires identical shapes");
        let rank = sa.len();
        let map = AffineMap::identity(rank);
        let op = LinalgOp {
            id: OpId(0),
            kind: OpKind::Add,
            iterator_types: vec![IteratorType::Parallel; rank],
            loop_bounds: sa.clone(),
            inputs: vec![a, b],
            input_types: vec![self.tensor(sa.clone()), self.tensor(sa.clone())],
            result: ValueId(0),
            result_type: self.tensor(sa),
            indexing_maps: vec![map.clone(), map.clone(), map],
            arith: ArithCounts {
                add: 1,
                ..Default::default()
            },
        };
        self.push(op)
    }

    /// Row-wise softmax of a 2-D tensor, expressed as a single generic op
    /// with a reduction over the columns (the normalization pass).
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D.
    pub fn softmax_2d(&mut self, input: ValueId) -> ValueId {
        let s = self.value_shape(input);
        assert_eq!(s.len(), 2, "softmax_2d input must be 2-D");
        let (rows, cols) = (s[0], s[1]);
        let op = LinalgOp {
            id: OpId(0),
            kind: OpKind::Softmax2D,
            iterator_types: vec![IteratorType::Parallel, IteratorType::Reduction],
            loop_bounds: vec![rows, cols],
            inputs: vec![input],
            input_types: vec![self.tensor(vec![rows, cols])],
            result: ValueId(0),
            result_type: self.tensor(vec![rows, cols]),
            indexing_maps: vec![AffineMap::identity(2), AffineMap::identity(2)],
            arith: ArithCounts {
                add: 1,
                div: 1,
                exp: 1,
                max: 1,
                ..Default::default()
            },
        };
        self.push(op)
    }

    /// A free-form `linalg.generic` operation.
    ///
    /// `inputs` are existing SSA values; `indexing_maps` must contain one map
    /// per input followed by the output map; `loop_bounds` and
    /// `iterator_types` define the iteration domain; `result_shape` is the
    /// shape of the produced tensor.
    ///
    /// # Panics
    ///
    /// Panics if the resulting operation fails validation.
    #[allow(clippy::too_many_arguments)]
    pub fn generic(
        &mut self,
        inputs: Vec<ValueId>,
        loop_bounds: Vec<u64>,
        iterator_types: Vec<IteratorType>,
        indexing_maps: Vec<AffineMap>,
        result_shape: Vec<u64>,
        arith: ArithCounts,
    ) -> ValueId {
        let input_types = inputs
            .iter()
            .map(|v| self.tensor(self.value_shape(*v)))
            .collect();
        let op = LinalgOp {
            id: OpId(0),
            kind: OpKind::Generic,
            iterator_types,
            loop_bounds,
            inputs,
            input_types,
            result: ValueId(0),
            result_type: self.tensor(result_shape),
            indexing_maps,
            arith,
        };
        op.validate().expect("generic op must be well-formed");
        self.push(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpCategory;

    #[test]
    fn matmul_shapes_and_maps() {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![256, 1024]);
        let w = b.argument("B", vec![1024, 512]);
        let c = b.matmul(a, w);
        let m = b.finish();
        m.validate().unwrap();
        let op = &m.ops()[0];
        assert_eq!(op.loop_bounds, vec![256, 512, 1024]);
        assert_eq!(op.kind.feature_category(), OpCategory::Matmul);
        assert_eq!(m.value(c).unwrap().ty.shape(), &[256, 512]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatched_shapes() {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![4, 8]);
        let w = b.argument("B", vec![9, 3]);
        b.matmul(a, w);
    }

    #[test]
    fn conv2d_output_shape_and_loops() {
        let mut b = ModuleBuilder::new("c");
        let x = b.argument("x", vec![1, 64, 56, 56]);
        let w = b.argument("w", vec![128, 64, 3, 3]);
        let y = b.conv2d(x, w, 1);
        let m = b.finish();
        m.validate().unwrap();
        let op = &m.ops()[0];
        assert_eq!(op.loop_bounds, vec![1, 128, 54, 54, 64, 3, 3]);
        assert_eq!(op.num_loops(), 7);
        assert_eq!(op.reduction_loops(), vec![4, 5, 6]);
        assert_eq!(m.value(y).unwrap().ty.shape(), &[1, 128, 54, 54]);
    }

    #[test]
    fn conv2d_with_stride() {
        let mut b = ModuleBuilder::new("c");
        let x = b.argument("x", vec![1, 3, 224, 224]);
        let w = b.argument("w", vec![64, 3, 7, 7]);
        let y = b.conv2d(x, w, 2);
        let m = b.finish();
        assert_eq!(m.value(y).unwrap().ty.shape(), &[1, 64, 109, 109]);
        // Strided conv has a non-permutation input map, so vectorization
        // preconditions fail.
        assert!(!m.ops()[0].vectorization_precondition());
    }

    #[test]
    fn max_pool_structure() {
        let mut b = ModuleBuilder::new("p");
        let x = b.argument("x", vec![1, 64, 112, 112]);
        let y = b.max_pool(x, 2, 2);
        let m = b.finish();
        m.validate().unwrap();
        assert_eq!(m.value(y).unwrap().ty.shape(), &[1, 64, 56, 56]);
        assert_eq!(m.ops()[0].num_loops(), 6);
        assert_eq!(m.ops()[0].arith.max, 1);
    }

    #[test]
    fn elementwise_ops() {
        let mut b = ModuleBuilder::new("e");
        let x = b.argument("x", vec![32, 1000]);
        let y = b.argument("y", vec![32, 1000]);
        let s = b.add(x, y);
        let r = b.relu(s);
        let g = b.sigmoid(r);
        let _sm = b.softmax_2d(g);
        let m = b.finish();
        m.validate().unwrap();
        assert_eq!(m.ops().len(), 4);
        assert!(m.ops()[0].kind.is_elementwise());
        assert!(m.ops()[1].kind.is_elementwise());
        // Softmax has a reduction loop.
        assert_eq!(m.ops()[3].reduction_loops(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn add_rejects_shape_mismatch() {
        let mut b = ModuleBuilder::new("e");
        let x = b.argument("x", vec![4, 4]);
        let y = b.argument("y", vec![4, 5]);
        b.add(x, y);
    }

    #[test]
    fn generic_op_construction() {
        let mut b = ModuleBuilder::new("g");
        let x = b.argument("x", vec![16, 16, 16]);
        let _y = b.generic(
            vec![x],
            vec![16, 16, 16],
            vec![
                IteratorType::Parallel,
                IteratorType::Parallel,
                IteratorType::Reduction,
            ],
            vec![AffineMap::identity(3), AffineMap::projection(3, &[0, 1])],
            vec![16, 16],
            ArithCounts {
                add: 1,
                mul: 2,
                ..Default::default()
            },
        );
        let m = b.finish();
        m.validate().unwrap();
        assert_eq!(m.ops()[0].kind, OpKind::Generic);
    }

    #[test]
    fn element_type_propagates() {
        let mut b = ModuleBuilder::with_element_type("d", ElementType::F64);
        assert_eq!(b.element_type(), ElementType::F64);
        let x = b.argument("x", vec![8, 8]);
        let y = b.argument("y", vec![8, 8]);
        let z = b.add(x, y);
        let m = b.finish();
        assert_eq!(m.value(z).unwrap().ty.element(), ElementType::F64);
    }
}
