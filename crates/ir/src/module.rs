//! Modules: ordered sequences of Linalg operations connected by SSA values.
//!
//! A [`Module`] corresponds to one MLIR function body: an ordered list of
//! Linalg operations whose operands are either function arguments or results
//! of earlier operations. The RL environment walks the module *in reverse
//! order* (consumers before producers, Sec. III of the paper), so the module
//! exposes producer/consumer queries.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::IrError;
use crate::op::{LinalgOp, OpId, ValueId};
use crate::types::TensorType;

/// Where an SSA value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueDef {
    /// A function argument (an input tensor of the whole module).
    Argument,
    /// The result of an operation in the module.
    OpResult(OpId),
}

/// An SSA value: a tensor flowing between operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Value {
    /// Identifier of the value.
    pub id: ValueId,
    /// Tensor type of the value.
    pub ty: TensorType,
    /// Definition site.
    pub def: ValueDef,
    /// Human-readable name used by the printer (e.g. `arg0`, `t3`).
    pub name: String,
}

/// A function body: arguments, values, and Linalg operations in program
/// order.
///
/// # Examples
///
/// ```
/// use mlir_rl_ir::builder::ModuleBuilder;
///
/// let mut b = ModuleBuilder::new("matmul_relu");
/// let a = b.argument("A", vec![64, 128]);
/// let w = b.argument("B", vec![128, 32]);
/// let mm = b.matmul(a, w);
/// let _r = b.relu(mm);
/// let module = b.finish();
/// assert_eq!(module.ops().len(), 2);
/// assert_eq!(module.consumers(module.op_order()[0]).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    name: String,
    values: Vec<Value>,
    ops: Vec<LinalgOp>,
}

impl Module {
    /// Creates an empty module. Prefer [`crate::builder::ModuleBuilder`].
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            values: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All SSA values, including arguments.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// All operations in program order.
    pub fn ops(&self) -> &[LinalgOp] {
        &self.ops
    }

    /// Mutable access to operations (used by transformation passes that
    /// rewrite operations in place).
    pub fn ops_mut(&mut self) -> &mut [LinalgOp] {
        &mut self.ops
    }

    /// The module's function arguments.
    pub fn arguments(&self) -> Vec<&Value> {
        self.values
            .iter()
            .filter(|v| v.def == ValueDef::Argument)
            .collect()
    }

    /// Operation identifiers in program order.
    pub fn op_order(&self) -> Vec<OpId> {
        self.ops.iter().map(|o| o.id).collect()
    }

    /// Looks up an operation by id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownOperation`] if the id is not present.
    pub fn op(&self, id: OpId) -> Result<&LinalgOp, IrError> {
        self.ops
            .iter()
            .find(|o| o.id == id)
            .ok_or(IrError::UnknownOperation { op: id.0 })
    }

    /// Looks up a value by id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownValue`] if the id is not present.
    pub fn value(&self, id: ValueId) -> Result<&Value, IrError> {
        self.values
            .iter()
            .find(|v| v.id == id)
            .ok_or(IrError::UnknownValue { value: id.0 })
    }

    /// Adds a value to the module, returning its id. Used by the builder and
    /// the parser.
    pub fn add_value(&mut self, ty: TensorType, def: ValueDef, name: impl Into<String>) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(Value {
            id,
            ty,
            def,
            name: name.into(),
        });
        id
    }

    /// Appends an operation, assigning it the next [`OpId`]. The operation's
    /// `id` and `result` fields are overwritten with fresh identifiers.
    pub fn add_op(&mut self, mut op: LinalgOp, result_name: impl Into<String>) -> OpId {
        let id = OpId(self.ops.len());
        op.id = id;
        let result = self.add_value(op.result_type.clone(), ValueDef::OpResult(id), result_name);
        op.result = result;
        self.ops.push(op);
        id
    }

    /// Producers of the given operation: operations whose result is read by
    /// `op`, in program order.
    pub fn producers(&self, op: OpId) -> Vec<OpId> {
        let Ok(op) = self.op(op) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for input in &op.inputs {
            if let Ok(v) = self.value(*input) {
                if let ValueDef::OpResult(producer) = v.def {
                    if !out.contains(&producer) {
                        out.push(producer);
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// The producer the environment fuses next: the one textually closest
    /// before the consumer (Sec. III — "we select the last producer").
    pub fn last_producer(&self, op: OpId) -> Option<OpId> {
        self.producers(op).into_iter().max()
    }

    /// Consumers of the given operation: operations that read its result.
    pub fn consumers(&self, op: OpId) -> Vec<OpId> {
        let Ok(o) = self.op(op) else {
            return Vec::new();
        };
        let result = o.result;
        self.ops
            .iter()
            .filter(|other| other.inputs.contains(&result))
            .map(|other| other.id)
            .collect()
    }

    /// Operations with no consumers inside the module (the module outputs).
    pub fn terminal_ops(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| self.consumers(o.id).is_empty())
            .map(|o| o.id)
            .collect()
    }

    /// The traversal order used by the environment: operations visited from
    /// the last consumer backwards (reverse program order).
    pub fn reverse_order(&self) -> Vec<OpId> {
        let mut order = self.op_order();
        order.reverse();
        order
    }

    /// Maximum loop depth over all operations.
    pub fn max_loop_depth(&self) -> usize {
        self.ops.iter().map(LinalgOp::num_loops).max().unwrap_or(0)
    }

    /// Total scalar arithmetic operations of one module execution.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(LinalgOp::total_flops).sum()
    }

    /// Number of textual lines of the printed module (a proxy for the
    /// "lines of MLIR Linalg code" size metric used in the paper).
    pub fn printed_lines(&self) -> usize {
        crate::printer::print_module(self).lines().count()
    }

    /// Validates every operation and the def-use structure of the module.
    ///
    /// # Errors
    ///
    /// Returns the first structural error found.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut defined: HashMap<ValueId, ValueDef> = HashMap::new();
        for v in &self.values {
            defined.insert(v.id, v.def);
        }
        for (pos, op) in self.ops.iter().enumerate() {
            op.validate()?;
            if op.id.0 != pos {
                return Err(IrError::UnknownOperation { op: op.id.0 });
            }
            for input in &op.inputs {
                match defined.get(input) {
                    None => return Err(IrError::UnknownValue { value: input.0 }),
                    Some(ValueDef::OpResult(producer)) if producer.0 >= pos => {
                        // Uses must be dominated by definitions.
                        return Err(IrError::UnknownValue { value: input.0 });
                    }
                    _ => {}
                }
            }
            match defined.get(&op.result) {
                Some(ValueDef::OpResult(o)) if *o == op.id => {}
                _ => return Err(IrError::UnknownValue { value: op.result.0 }),
            }
            // Input value types must agree with the declared operand types.
            for (input, ty) in op.inputs.iter().zip(&op.input_types) {
                let v = self.value(*input)?;
                if &v.ty != ty {
                    return Err(IrError::InvalidTensorType {
                        message: format!(
                            "operand {} of {} has type {} but value {} has type {}",
                            input, op.kind, ty, v.name, v.ty
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn chain_module() -> Module {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 32]);
        let mm = b.matmul(a, w);
        let r = b.relu(mm);
        let bias = b.argument("bias", vec![64, 32]);
        let _out = b.add(r, bias);
        b.finish()
    }

    #[test]
    fn module_construction_and_validation() {
        let m = chain_module();
        m.validate().unwrap();
        assert_eq!(m.ops().len(), 3);
        assert_eq!(m.arguments().len(), 3);
        assert_eq!(m.name(), "chain");
        assert!(m.total_flops() > 0.0);
    }

    #[test]
    fn producer_consumer_relations() {
        let m = chain_module();
        let order = m.op_order();
        let (mm, relu, add) = (order[0], order[1], order[2]);
        assert_eq!(m.producers(mm), vec![]);
        assert_eq!(m.producers(relu), vec![mm]);
        assert_eq!(m.producers(add), vec![relu]);
        assert_eq!(m.consumers(mm), vec![relu]);
        assert_eq!(m.consumers(add), vec![]);
        assert_eq!(m.terminal_ops(), vec![add]);
        assert_eq!(m.last_producer(add), Some(relu));
        assert_eq!(m.last_producer(mm), None);
    }

    #[test]
    fn reverse_order_visits_consumers_first() {
        let m = chain_module();
        let rev = m.reverse_order();
        assert_eq!(rev.len(), 3);
        assert_eq!(rev[0], *m.op_order().last().unwrap());
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let m = chain_module();
        assert!(m.op(OpId(99)).is_err());
        assert!(m.value(ValueId(99)).is_err());
    }

    #[test]
    fn validation_rejects_forward_references() {
        let mut m = chain_module();
        // Make the first op read the result of the last op (a forward use).
        let last_result = m.ops()[2].result;
        let first_input_ty = m.ops()[2].result_type.clone();
        {
            let op0 = &mut m.ops_mut()[0];
            op0.inputs[0] = last_result;
            op0.input_types[0] = first_input_ty;
        }
        assert!(m.validate().is_err());
    }

    #[test]
    fn max_loop_depth() {
        let m = chain_module();
        assert_eq!(m.max_loop_depth(), 3); // matmul has 3 loops
    }

    #[test]
    fn printed_lines_nonzero() {
        let m = chain_module();
        assert!(m.printed_lines() > 5);
    }
}
