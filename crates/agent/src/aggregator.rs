//! Cross-request inference aggregation: one shared batch pipeline that
//! coalesces policy-inference calls from many concurrent searches into
//! single batched forward passes.
//!
//! Service workers (or any other caller) hold an [`AggregatorClient`] — a
//! [`PolicyModel`] facade whose inference methods enqueue an
//! [`InferenceGroup`] (observations + mode + the caller's RNG) and block on
//! a reply slot. Each tick drains whole pending groups — across requests,
//! searchers and clients — packs their rows into one `ObservationBatch`,
//! runs a single batched forward pass per layer, decodes each group against
//! its own rows and RNG, and scatters the results back.
//!
//! Ticks run on one of two threads. When a submit itself makes the queue
//! flushable (it reached `max_batch` rows, or every other in-flight run is
//! already blocked waiting), the submitting thread becomes the **leader**:
//! it drains the flush and runs the batch inline, then collects its own
//! reply without ever blocking — no condvar round trip, no context switch.
//! A dedicated inference thread handles the flushes no submit can trigger:
//! deadline expiry, runs retiring (`RunGuard` drops), and the shutdown
//! drain. Both paths share the real policy behind one mutex, so ticks are
//! serialized and the scratch arena is reused across all of them.
//!
//! # Determinism
//!
//! Results are bit-identical to direct policy calls no matter how rows
//! coalesce, for two reasons. First, the blocked `Tensor2` kernels keep a
//! fixed per-element accumulation order, so every row of a batched product
//! equals the per-vector path bit for bit — batch composition cannot change
//! any row's logits. Second, groups are never split across ticks and each
//! group is decoded with its own RNG threaded exactly like the direct call,
//! so RNG consumption is unaffected by batching. Request fingerprints are
//! therefore invariant under aggregation (locked by `tests/service_api.rs`).
//!
//! # Flush policy
//!
//! A tick flushes pending groups when any of the following holds, and
//! otherwise sleeps until the oldest group's deadline:
//!
//! * **size** — pending rows reached `max_batch`;
//! * **timeout** — the oldest group has waited `max_wait_us`;
//! * **idle** — every registered in-flight run (see
//!   [`AggregatorClient::run_guard`]) is already blocked on a reply, so no
//!   more rows can arrive and waiting would only add latency;
//! * **drain** — shutdown was requested and the queue is being emptied.
//!
//! A flush takes whole groups in FIFO order, stopping once `max_batch` rows
//! are reached (a single oversized group still flushes alone). With
//! `max_batch = 1` every flush carries exactly one group — the direct,
//! unbatched path.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use mlir_rl_env::Observation;
use mlir_rl_nn::Param;
use mlir_rl_obs::{EventKind, ProbeRef};

use crate::policy::ActionRecord;
use crate::ppo::{GroupResult, InferenceGroup, InferenceMode, PolicyModel};

/// Number of power-of-two buckets in the rows-per-batch histogram
/// (bucket `i` counts flushes of `[2^i, 2^(i+1))` rows, the last bucket is
/// open-ended).
pub const ROWS_PER_BATCH_BUCKETS: usize = 16;

/// Knobs for cross-request inference batching
/// (`ServiceConfig::with_inference_batching`). Both must be non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceBatching {
    /// Flush a tick once this many observation rows are pending.
    pub max_batch: usize,
    /// Flush a tick once its oldest group has waited this many
    /// microseconds.
    pub max_wait_us: u64,
}

impl InferenceBatching {
    /// The configured wait bound as a [`Duration`].
    pub fn max_wait(&self) -> Duration {
        Duration::from_micros(self.max_wait_us)
    }
}

/// Counters describing the aggregator's behaviour so far (snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Batches flushed.
    pub batches: u64,
    /// Observation rows inferred across all batches.
    pub rows: u64,
    /// Flushes triggered by reaching `max_batch` rows.
    pub flush_size: u64,
    /// Flushes triggered by the oldest group reaching `max_wait_us`.
    pub flush_timeout: u64,
    /// Flushes triggered because every in-flight run was already waiting.
    pub flush_idle: u64,
    /// Flushes performed while draining the queue at shutdown.
    pub flush_drain: u64,
    /// Flushes run inline on the submitting thread (leader-combining)
    /// instead of by the dedicated inference thread. Counts a subset of
    /// the flushes already attributed to a reason above — on the hot path
    /// (size- and idle-triggered flushes) this should be nearly all of
    /// them.
    pub flush_inline: u64,
    /// Total microseconds groups spent queued before their flush.
    pub queue_wait_us: u64,
    /// Groups flushed (the queue-wait sum is over these).
    pub groups: u64,
    /// Power-of-two rows-per-batch histogram.
    pub rows_per_batch: [u64; ROWS_PER_BATCH_BUCKETS],
}

impl AggregatorStats {
    /// Mean observation rows per flushed batch (0 when nothing flushed).
    pub fn mean_rows_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.rows as f64 / self.batches as f64
        }
    }

    /// Mean seconds a group waited in the queue before its flush.
    pub fn mean_queue_wait_s(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.queue_wait_us as f64 / 1e6 / self.groups as f64
        }
    }
}

/// One queued group with its reply slot.
struct PendingGroup {
    group: InferenceGroup,
    reply: Arc<ReplySlot>,
    enqueued: Instant,
}

/// Where a waiting caller blocks until its group's tick completes. The
/// error arm propagates an inference-tick panic into every waiting caller
/// instead of deadlocking them.
#[derive(Default)]
struct ReplySlot {
    result: Mutex<Option<Result<(GroupResult, ChaCha8Rng), String>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn fill(&self, outcome: Result<(GroupResult, ChaCha8Rng), String>) {
        let mut slot = self.result.lock().expect("reply slot poisoned");
        *slot = Some(outcome);
        self.ready.notify_all();
    }

    fn wait(&self) -> (GroupResult, ChaCha8Rng) {
        let mut slot = self.result.lock().expect("reply slot poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                match outcome {
                    Ok(out) => return out,
                    Err(message) => panic!("inference aggregator tick panicked: {message}"),
                }
            }
            slot = self.ready.wait(slot).expect("reply slot poisoned");
        }
    }
}

/// Mutex-protected queue state.
#[derive(Default)]
struct QueueState {
    groups: Vec<PendingGroup>,
    pending_rows: usize,
    /// Runs currently registered via [`AggregatorClient::run_guard`]; when
    /// at least this many groups are waiting, every run is blocked and the
    /// tick flushes immediately (`idle`).
    active: usize,
    shutdown: bool,
}

/// The one operation a tick needs from the policy, as an object-safe view.
/// [`PolicyModel`] itself is not object safe (it requires `Clone`), but the
/// queue must own the policy without forcing a type parameter onto
/// [`AggregatorClient`]; this adapter trait is how it does so.
trait InferenceEngine: Send {
    fn infer_groups(&mut self, groups: &mut [InferenceGroup]) -> Vec<GroupResult>;
}

impl<P: PolicyModel> InferenceEngine for P {
    fn infer_groups(&mut self, groups: &mut [InferenceGroup]) -> Vec<GroupResult> {
        PolicyModel::infer_groups(self, groups)
    }
}

struct SharedQueue {
    state: Mutex<QueueState>,
    work: Condvar,
    stats: Mutex<AggregatorStats>,
    config: InferenceBatching,
    /// The real policy, shared by the inference thread and leader
    /// submitters. The lock serializes ticks: it is what keeps the scratch
    /// arena single-owner and the probe ring single-writer (`probe` is only
    /// ever emitted while this lock is held).
    engine: Mutex<Box<dyn InferenceEngine>>,
    probe: ProbeRef,
}

/// What one tick drained, decided under the queue lock.
struct Flush {
    groups: Vec<PendingGroup>,
    reason: &'static str,
}

impl SharedQueue {
    /// Decides, under the queue lock, whether a flush is due right now and
    /// drains it if so. Whole groups leave in FIFO order up to `max_batch`
    /// rows; the drained rows are subtracted from the pending count.
    fn try_take_flush(&self, state: &mut QueueState) -> Option<Flush> {
        if state.groups.is_empty() {
            return None;
        }
        let reason = if state.shutdown {
            "drain"
        } else if state.pending_rows >= self.config.max_batch {
            "size"
        } else if state.groups[0].enqueued.elapsed() >= self.config.max_wait() {
            "timeout"
        } else if state.groups.len() >= state.active {
            "idle"
        } else {
            return None;
        };
        let mut take = 0;
        let mut rows = 0;
        for pending in &state.groups {
            let group_rows = pending.group.observations.len();
            if take > 0 && rows + group_rows > self.config.max_batch {
                break;
            }
            take += 1;
            rows += group_rows;
            if rows >= self.config.max_batch {
                break;
            }
        }
        let groups: Vec<PendingGroup> = state.groups.drain(..take).collect();
        state.pending_rows -= rows;
        Some(Flush { groups, reason })
    }

    /// Blocks until a flush is due (or shutdown completes with an empty
    /// queue) and drains it. Returns `None` exactly once, at exit.
    fn next_flush(&self) -> Option<Flush> {
        let mut state = self.state.lock().expect("aggregator queue poisoned");
        loop {
            if state.groups.is_empty() {
                if state.shutdown {
                    return None;
                }
                state = self.work.wait(state).expect("aggregator queue poisoned");
                continue;
            }
            if let Some(flush) = self.try_take_flush(&mut state) {
                return Some(flush);
            }
            let deadline = self
                .config
                .max_wait()
                .saturating_sub(state.groups[0].enqueued.elapsed());
            let (next, _) = self
                .work
                .wait_timeout(state, deadline)
                .expect("aggregator queue poisoned");
            state = next;
        }
    }

    /// Runs one tick over a drained flush: locks the engine, runs one
    /// batched inference over the whole set of groups, and scatters results
    /// (and advanced RNGs) back to the reply slots, recording stats and the
    /// `batch_formed` probe event. Called from the inference thread and
    /// from leader submitters alike; `inline` marks the latter.
    fn run_flush(&self, flush: Flush, inline: bool) {
        let now = Instant::now();
        let mut groups = Vec::with_capacity(flush.groups.len());
        let mut replies = Vec::with_capacity(flush.groups.len());
        let mut wait_us = 0u64;
        let mut oldest_wait_us = 0u64;
        for pending in flush.groups {
            let waited = now.saturating_duration_since(pending.enqueued).as_micros() as u64;
            wait_us += waited;
            oldest_wait_us = oldest_wait_us.max(waited);
            groups.push(pending.group);
            replies.push(pending.reply);
        }
        let rows: usize = groups.iter().map(|g| g.observations.len()).sum();
        let mut engine = self.engine.lock().expect("aggregator engine poisoned");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.infer_groups(&mut groups)
        }));
        // Stats and the probe event are recorded *before* the replies are
        // scattered, so once a caller unblocks the batch is already
        // visible in the counters (tests and metrics rely on this). The
        // probe emit stays under the engine lock — see `engine` above.
        {
            let mut stats = self.stats.lock().expect("aggregator stats poisoned");
            stats.batches += 1;
            stats.rows += rows as u64;
            stats.groups += replies.len() as u64;
            stats.queue_wait_us += wait_us;
            match flush.reason {
                "size" => stats.flush_size += 1,
                "timeout" => stats.flush_timeout += 1,
                "idle" => stats.flush_idle += 1,
                _ => stats.flush_drain += 1,
            }
            if inline {
                stats.flush_inline += 1;
            }
            let bucket = (usize::BITS - rows.max(1).leading_zeros() - 1)
                .min(ROWS_PER_BATCH_BUCKETS as u32 - 1) as usize;
            stats.rows_per_batch[bucket] += 1;
        }
        self.probe.emit(
            EventKind::BatchFormed,
            Some(flush.reason),
            [rows as u64, replies.len() as u64, oldest_wait_us],
        );
        drop(engine);
        match outcome {
            Ok(results) => {
                for ((result, group), reply) in results.into_iter().zip(groups).zip(&replies) {
                    reply.fill(Ok((result, group.rng)));
                }
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                for reply in &replies {
                    reply.fill(Err(message.clone()));
                }
            }
        }
    }
}

/// The dedicated inference thread: handles the flushes no submit can
/// trigger — deadline expiry, runs retiring, the shutdown drain. The hot
/// path (size- and idle-triggered flushes) runs inline on the submitting
/// threads instead (see [`AggregatorClient`]).
fn inference_loop(shared: Arc<SharedQueue>) {
    while let Some(flush) = shared.next_flush() {
        shared.run_flush(flush, false);
    }
}

/// Handle owning the shared queue and the inference thread. Dropping (or
/// [`InferenceAggregator::shutdown`]) drains the queue and joins the
/// thread; shut the service workers down *first* so no client is left
/// waiting.
pub struct InferenceAggregator {
    shared: Arc<SharedQueue>,
    handle: Option<JoinHandle<()>>,
}

impl InferenceAggregator {
    /// Spawns the aggregator around its own instance of the policy. All
    /// inference scratch (packed rows, step tensors, head logits) lives on
    /// that instance and is reused across ticks — the arena the
    /// "scratch-arena reuse" batching lever refers to. `probe` receives one
    /// `batch_formed` event per flush.
    pub fn spawn<P: PolicyModel + 'static>(
        policy: P,
        config: InferenceBatching,
        probe: ProbeRef,
    ) -> Self {
        let shared = Arc::new(SharedQueue {
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            stats: Mutex::new(AggregatorStats::default()),
            config,
            engine: Mutex::new(Box::new(policy)),
            probe,
        });
        let thread_shared = shared.clone();
        let handle = std::thread::spawn(move || inference_loop(thread_shared));
        Self {
            shared,
            handle: Some(handle),
        }
    }

    /// A client whose `PolicyModel` inference methods route through this
    /// aggregator. Clients are cheap to clone and share the one queue.
    pub fn client(&self) -> AggregatorClient {
        AggregatorClient {
            shared: self.shared.clone(),
        }
    }

    /// A snapshot of the batching counters.
    pub fn stats(&self) -> AggregatorStats {
        *self.shared.stats.lock().expect("aggregator stats poisoned")
    }

    /// Drains the queue (remaining flushes count as `drain`) and joins the
    /// inference thread. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("aggregator queue poisoned");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceAggregator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A [`PolicyModel`] facade over the shared aggregator queue: inference
/// methods enqueue a group (moving the caller's RNG in) and collect the
/// result (and the advanced RNG) once the group's tick completes. If the
/// enqueue itself makes the queue flushable, the calling thread runs the
/// tick inline as the leader and returns without blocking; otherwise it
/// blocks on its reply slot until another leader or the inference thread
/// flushes the group. Training methods panic — the client is
/// inference-only by construction, and no searcher calls them.
#[derive(Clone)]
pub struct AggregatorClient {
    shared: Arc<SharedQueue>,
}

impl AggregatorClient {
    /// Registers one in-flight run for the `idle` flush rule: while the
    /// guard lives, the aggregator assumes the run may still enqueue more
    /// groups and will wait (up to `max_wait_us`) for rows to coalesce;
    /// once every registered run is blocked on a reply, pending groups
    /// flush immediately. Service workers hold one guard per executing
    /// request. With no guards outstanding the client degenerates to
    /// flush-per-call, which keeps direct (non-service) use synchronous.
    pub fn run_guard(&self) -> RunGuard {
        let mut state = self.shared.state.lock().expect("aggregator queue poisoned");
        state.active += 1;
        RunGuard {
            shared: self.shared.clone(),
        }
    }

    fn submit(
        &self,
        observations: Vec<Observation>,
        mode: InferenceMode,
        rng: &mut ChaCha8Rng,
    ) -> GroupResult {
        // Move the caller's RNG into the group; the tick returns it
        // advanced exactly as the direct call would have left it, and it
        // is written back below.
        let moved = std::mem::replace(rng, ChaCha8Rng::seed_from_u64(0));
        let reply = Arc::new(ReplySlot::default());
        let leader_flush = {
            let mut state = self.shared.state.lock().expect("aggregator queue poisoned");
            assert!(
                !state.shutdown,
                "inference enqueued after aggregator shutdown"
            );
            state.pending_rows += observations.len();
            state.groups.push(PendingGroup {
                group: InferenceGroup {
                    observations,
                    mode,
                    rng: moved,
                },
                reply: reply.clone(),
                enqueued: Instant::now(),
            });
            // Leader-combining: if this enqueue itself made the queue
            // flushable, take the flush and run it on this thread instead
            // of waking the inference thread — the condvar round trip (two
            // context switches per batch) is the aggregator's dominant
            // overhead when forward passes are cheap. Only when the flush
            // is *not* due yet does the inference thread need to know
            // about the new group (to re-arm its deadline).
            let flush = self.shared.try_take_flush(&mut state);
            if flush.is_none() {
                self.shared.work.notify_all();
            }
            flush
        };
        if let Some(flush) = leader_flush {
            self.shared.run_flush(flush, true);
            // The flush stops at `max_batch` rows, so work may remain (it
            // can even be due already, e.g. a backlog beyond one batch);
            // hand whatever is left to the inference thread.
            let state = self.shared.state.lock().expect("aggregator queue poisoned");
            if !state.groups.is_empty() {
                self.shared.work.notify_all();
            }
        }
        let (result, advanced) = reply.wait();
        *rng = advanced;
        result
    }
}

/// RAII registration of one in-flight run (see
/// [`AggregatorClient::run_guard`]).
pub struct RunGuard {
    shared: Arc<SharedQueue>,
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("aggregator queue poisoned");
        state.active = state.active.saturating_sub(1);
        // Dropping a run can make the remaining waiters unanimous, so the
        // idle rule must be re-checked.
        self.shared.work.notify_all();
    }
}

impl PolicyModel for AggregatorClient {
    fn select_action(
        &mut self,
        obs: &Observation,
        greedy: bool,
        rng: &mut ChaCha8Rng,
    ) -> ActionRecord {
        match self.submit(vec![obs.clone()], InferenceMode::Sample { greedy }, rng) {
            GroupResult::Sampled(mut records) => records.pop().expect("one record per observation"),
            GroupResult::Ranked(_) => unreachable!("sample group answered with ranking"),
        }
    }

    fn evaluate(&mut self, _obs: &Observation, _record: &ActionRecord) -> (f64, f64) {
        panic!("AggregatorClient is inference-only: evaluate belongs to training");
    }

    fn backward(
        &mut self,
        _obs: &Observation,
        _record: &ActionRecord,
        _coeff_logprob: f64,
        _coeff_entropy: f64,
    ) {
        panic!("AggregatorClient is inference-only: backward belongs to training");
    }

    fn zero_grad(&mut self) {
        panic!("AggregatorClient is inference-only: zero_grad belongs to training");
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        panic!("AggregatorClient is inference-only: parameters live on the aggregator's policy");
    }

    fn rank_actions(
        &mut self,
        obs: &Observation,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<ActionRecord> {
        match self.submit(vec![obs.clone()], InferenceMode::Rank { k }, rng) {
            GroupResult::Ranked(mut ranked) => ranked.pop().expect("one ranking per observation"),
            GroupResult::Sampled(_) => unreachable!("rank group answered with samples"),
        }
    }

    fn rank_actions_batch(
        &mut self,
        observations: &[&Observation],
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<ActionRecord>> {
        if observations.is_empty() {
            return Vec::new();
        }
        let owned: Vec<Observation> = observations.iter().map(|obs| (*obs).clone()).collect();
        match self.submit(owned, InferenceMode::Rank { k }, rng) {
            GroupResult::Ranked(ranked) => ranked,
            GroupResult::Sampled(_) => unreachable!("rank group answered with samples"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyHyperparams, PolicyNetwork};
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::{EnvConfig, OptimizationEnv};
    use mlir_rl_ir::ModuleBuilder;

    fn observation() -> Observation {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 32]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        let mut env =
            OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()));
        env.reset(b.finish()).unwrap()
    }

    fn policy() -> PolicyNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        PolicyNetwork::new(
            EnvConfig::small(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        )
    }

    /// Ranks from `threads` concurrent clients through an aggregator with
    /// the given knobs; the main thread pre-registers one run guard per
    /// thread so groups coalesce deterministically.
    fn ranked_via(
        config: InferenceBatching,
        threads: usize,
    ) -> (Vec<Vec<ActionRecord>>, AggregatorStats) {
        let mut aggregator = InferenceAggregator::spawn(policy(), config, ProbeRef::none());
        let client = aggregator.client();
        let guards: Vec<RunGuard> = (0..threads).map(|_| client.run_guard()).collect();
        let obs = observation();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut client = client.clone();
                let obs = obs.clone();
                std::thread::spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(100 + t as u64);
                    client.rank_actions(&obs, 3, &mut rng)
                })
            })
            .collect();
        let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        drop(guards);
        let stats = aggregator.stats();
        aggregator.shutdown();
        (results, stats)
    }

    fn direct_ranked(threads: usize) -> Vec<Vec<ActionRecord>> {
        let obs = observation();
        (0..threads)
            .map(|t| {
                let mut policy = policy();
                let mut rng = ChaCha8Rng::seed_from_u64(100 + t as u64);
                policy.rank_actions(&obs, 3, &mut rng)
            })
            .collect()
    }

    #[test]
    fn coalesced_batches_are_bitwise_identical_to_direct_calls() {
        let direct = direct_ranked(4);
        let (batched, stats) = ranked_via(
            InferenceBatching {
                max_batch: 64,
                max_wait_us: 5_000_000,
            },
            4,
        );
        assert_eq!(batched, direct);
        // The four guards stay held until every thread has enqueued, so
        // all four groups flush as one idle-triggered batch — run inline
        // by the last submitter (the leader), not the inference thread.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.flush_idle, 1);
        assert_eq!(stats.flush_inline, 1);
        assert!(stats.mean_rows_per_batch() > 1.0);
    }

    #[test]
    fn size_triggered_flushes_match_direct_calls() {
        let direct = direct_ranked(4);
        let (batched, stats) = ranked_via(
            InferenceBatching {
                max_batch: 2,
                max_wait_us: 5_000_000,
            },
            4,
        );
        assert_eq!(batched, direct);
        assert_eq!(stats.flush_size, 2);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn timeout_triggered_flushes_match_direct_calls() {
        let direct = direct_ranked(1);
        let mut aggregator = InferenceAggregator::spawn(
            policy(),
            InferenceBatching {
                max_batch: 64,
                max_wait_us: 2_000,
            },
            ProbeRef::none(),
        );
        let client = aggregator.client();
        // Two phantom runs keep the idle rule from firing, so the lone
        // group can only leave via its deadline.
        let guards = [client.run_guard(), client.run_guard()];
        let obs = observation();
        let mut worker = client.clone();
        let handle = std::thread::spawn(move || {
            let mut rng = ChaCha8Rng::seed_from_u64(100);
            worker.rank_actions(&obs, 3, &mut rng)
        });
        let result = handle.join().unwrap();
        drop(guards);
        let stats = aggregator.stats();
        aggregator.shutdown();
        assert_eq!(vec![result], direct);
        assert_eq!(stats.flush_timeout, 1);
        // A deadline can only expire on the inference thread — no submit
        // happens at that moment, so there is no leader to run it.
        assert_eq!(stats.flush_inline, 0);
    }

    #[test]
    fn max_batch_one_is_bitwise_identical_to_the_direct_path() {
        let mut aggregator = InferenceAggregator::spawn(
            policy(),
            InferenceBatching {
                max_batch: 1,
                max_wait_us: 5_000_000,
            },
            ProbeRef::none(),
        );
        let mut client = aggregator.client();
        let obs = observation();
        let mut direct_policy = policy();

        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        // Repeated calls exercise the inference thread's scratch arena:
        // every tick reuses the packed-row and step-tensor buffers, and the
        // outputs must stay bit-identical to a fresh direct call.
        for _ in 0..3 {
            assert_eq!(
                client.select_action(&obs, false, &mut rng_a),
                direct_policy.select_action(&obs, false, &mut rng_b)
            );
            assert_eq!(
                client.rank_actions(&obs, 4, &mut rng_a),
                direct_policy.rank_actions(&obs, 4, &mut rng_b)
            );
            assert_eq!(
                client.rank_actions_batch(&[&obs, &obs], 2, &mut rng_a),
                direct_policy.rank_actions_batch(&[&obs, &obs], 2, &mut rng_b)
            );
        }
        // The vendored ChaCha8Rng has no PartialEq; drawing from both
        // streams verifies they advanced identically.
        use rand::RngCore;
        assert_eq!(
            rng_a.next_u64(),
            rng_b.next_u64(),
            "RNGs must advance identically"
        );
        let stats = aggregator.stats();
        aggregator.shutdown();
        // One group per flush: no run guards are held, so each call
        // flushes by the idle rule with exactly its own rows — and every
        // such flush runs inline on the submitting thread (the enqueue is
        // what makes the queue flushable), never touching the inference
        // thread.
        assert_eq!(stats.batches, stats.groups);
        assert_eq!(stats.flush_inline, stats.batches);
    }

    #[test]
    fn empty_frontier_ranks_resolve_without_touching_the_queue() {
        let mut aggregator = InferenceAggregator::spawn(
            policy(),
            InferenceBatching {
                max_batch: 8,
                max_wait_us: 1_000,
            },
            ProbeRef::none(),
        );
        let mut client = aggregator.client();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(client.rank_actions_batch(&[], 4, &mut rng).is_empty());
        let stats = aggregator.stats();
        aggregator.shutdown();
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn shutdown_drains_pending_groups() {
        let mut aggregator = InferenceAggregator::spawn(
            policy(),
            InferenceBatching {
                max_batch: 64,
                max_wait_us: 5_000_000,
            },
            ProbeRef::none(),
        );
        let client = aggregator.client();
        // A phantom second run plus the long deadline would park the group
        // indefinitely; shutdown must still answer it.
        let guards = [client.run_guard(), client.run_guard()];
        let obs = observation();
        let mut worker = client.clone();
        let handle = std::thread::spawn(move || {
            let mut rng = ChaCha8Rng::seed_from_u64(100);
            worker.rank_actions(&obs, 2, &mut rng)
        });
        // Give the worker a moment to enqueue before draining.
        while aggregator.shared.state.lock().unwrap().groups.is_empty() {
            std::thread::yield_now();
        }
        aggregator.shutdown();
        let result = handle.join().unwrap();
        drop(guards);
        assert_eq!(result.len(), 2);
        assert_eq!(aggregator.stats().flush_drain, 1);
    }
}
