//! Flat-action-space policy for the Fig. 6 ablation.
//!
//! The flat formulation enumerates a fixed set of (transformation,
//! parameter) combinations — uniform tile sizes and pairwise-swap
//! interchanges — and selects one with a single categorical head. It learns
//! faster (fewer choices per step) but cannot express the per-loop tile
//! size combinations the multi-discrete space can, which is why it
//! converges to a lower final speedup.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use mlir_rl_env::{
    flat_action_space, Action, EnvConfig, FlatAction, Observation, ObservationBatch,
};
use mlir_rl_nn::{Linear, Lstm, MaskedCategorical, Mlp, Param, Scratch, Tensor2};

use crate::policy::{lstm_step_tensors, rank_candidates, ActionRecord, PolicyHyperparams};
use crate::ppo::{GroupResult, InferenceGroup, InferenceMode, PolicyModel};

/// The flat policy network: same embedding and backbone as the
/// multi-discrete policy, but a single categorical head over the whole flat
/// action list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatPolicyNetwork {
    env_config: EnvConfig,
    actions: Vec<FlatAction>,
    lstm: Lstm,
    backbone: Mlp,
    head: Linear,
    /// Reusable logits buffer for rollout-time action selection.
    #[serde(skip)]
    logits_scratch: Scratch<Vec<f64>>,
    /// Logits of pending `evaluate` calls, consumed in reverse order by
    /// `backward` so the backward pass never re-runs the forward network.
    #[serde(skip)]
    pending_logits: Scratch<Vec<Vec<f64>>>,
    /// Batched logits of pending `evaluate_batch` calls, consumed by
    /// `backward_batch`.
    #[serde(skip)]
    pending_batches: Scratch<Vec<Tensor2>>,
    /// Reusable batched logits buffer for `rank_actions_batch`.
    #[serde(skip)]
    batch_scratch: Scratch<Tensor2>,
}

impl FlatPolicyNetwork {
    /// Creates a flat policy for the given environment configuration.
    pub fn new<R: Rng>(env_config: EnvConfig, hyper: PolicyHyperparams, rng: &mut R) -> Self {
        env_config.validate();
        let actions = flat_action_space(&env_config);
        let h = hyper.hidden_size;
        let lstm = Lstm::new(env_config.feature_len(), h, rng);
        let mut sizes = vec![h];
        sizes.extend(std::iter::repeat_n(h, hyper.backbone_layers));
        let backbone = Mlp::new(&sizes, true, rng);
        let head = Linear::new(h, actions.len(), rng);
        Self {
            env_config,
            actions,
            lstm,
            backbone,
            head,
            logits_scratch: Scratch::default(),
            pending_logits: Scratch::default(),
            pending_batches: Scratch::default(),
            batch_scratch: Scratch::default(),
        }
    }

    /// Number of flat actions.
    pub fn num_actions(&self) -> usize {
        self.actions.len()
    }

    /// The environment configuration the policy was built for.
    pub fn env_config(&self) -> &EnvConfig {
        &self.env_config
    }

    fn flat_mask(&self, obs: &Observation) -> Vec<bool> {
        self.actions
            .iter()
            .map(|fa| {
                let expanded = fa.to_action(obs.num_loops);
                let kind_ok = obs.mask.allows(expanded.kind());
                let tiles_ok = match &expanded {
                    Action::Tiling { tile_indices }
                    | Action::TiledParallelization { tile_indices }
                    | Action::TiledFusion { tile_indices } => {
                        tile_indices.iter().enumerate().all(|(level, idx)| {
                            obs.mask
                                .tile_sizes
                                .get(level)
                                .and_then(|m| m.get(*idx))
                                .copied()
                                .unwrap_or(false)
                        })
                    }
                    Action::Interchange(mlir_rl_env::InterchangeSpec::Candidate(c)) => {
                        *c < mlir_rl_env::enumerated_candidates(obs.num_loops).len()
                    }
                    _ => true,
                };
                kind_ok && tiles_ok
            })
            .collect()
    }

    /// Allocation-free inference logits into `out`.
    fn infer_logits(&mut self, obs: &Observation, out: &mut Vec<f64>) {
        let embedding = self
            .lstm
            .infer(&[obs.producer.as_slice(), obs.consumer.as_slice()]);
        let z = self.backbone.infer(embedding);
        self.head.infer_into(z, out);
    }

    fn logits_train(&mut self, obs: &Observation) -> Vec<f64> {
        let sequence = vec![obs.producer.clone(), obs.consumer.clone()];
        let embedding = self.lstm.forward(&sequence);
        let z = self.backbone.forward(&embedding);
        self.head.forward(&z)
    }

    /// Batched training-mode logits: one blocked matmul per layer, rows
    /// bit-identical to [`FlatPolicyNetwork::logits_train`] per
    /// observation.
    fn logits_train_batch(&mut self, batch: &ObservationBatch) -> Tensor2 {
        let steps = lstm_step_tensors(batch);
        let embedding = self.lstm.forward_batch(&steps);
        let z = self.backbone.forward_batch(&embedding);
        self.head.forward_batch(&z)
    }

    /// Batched inference logits into a reusable buffer.
    fn infer_logits_batch(&mut self, batch: &ObservationBatch, out: &mut Tensor2) {
        let steps = lstm_step_tensors(batch);
        let embedding = self.lstm.infer_batch(&[&steps[0], &steps[1]]);
        let z = self.backbone.infer_batch(embedding);
        self.head.infer_batch_into(z, out);
    }

    /// Draws one record from fixed logits/mask (the logits never change
    /// between draws of one ranking, so this is bit-identical to repeated
    /// `select_action` calls).
    fn record_from_logits(
        &self,
        obs: &Observation,
        logits: &[f64],
        mask: &[bool],
        greedy: bool,
        rng: &mut ChaCha8Rng,
    ) -> ActionRecord {
        let dist = MaskedCategorical::new(logits, mask);
        let index = if greedy {
            dist.argmax()
        } else {
            dist.sample(rng)
        };
        self.record_for(obs, index, dist.log_prob(index), dist.entropy())
    }

    fn record_for(
        &self,
        obs: &Observation,
        index: usize,
        log_prob: f64,
        entropy: f64,
    ) -> ActionRecord {
        let action = self.actions[index].to_action(obs.num_loops);
        ActionRecord {
            action,
            kind_index: index,
            tile_indices: Vec::new(),
            interchange_candidate: None,
            interchange_permutation: None,
            log_prob,
            entropy,
        }
    }
}

impl PolicyModel for FlatPolicyNetwork {
    fn select_action(
        &mut self,
        obs: &Observation,
        greedy: bool,
        rng: &mut ChaCha8Rng,
    ) -> ActionRecord {
        let mut logits = std::mem::take(&mut self.logits_scratch).0;
        self.infer_logits(obs, &mut logits);
        let mask = self.flat_mask(obs);
        // NoTransformation is always allowed, so the mask is never empty.
        let dist = MaskedCategorical::new(&logits, &mask);
        let index = if greedy {
            dist.argmax()
        } else {
            dist.sample(rng)
        };
        let record = self.record_for(obs, index, dist.log_prob(index), dist.entropy());
        self.logits_scratch = Scratch(logits);
        record
    }

    fn evaluate(&mut self, obs: &Observation, record: &ActionRecord) -> (f64, f64) {
        let logits = self.logits_train(obs);
        let mask = self.flat_mask(obs);
        let dist = MaskedCategorical::new(&logits, &mask);
        let out = (dist.log_prob(record.kind_index), dist.entropy());
        self.pending_logits.0.push(logits);
        out
    }

    fn backward(
        &mut self,
        obs: &Observation,
        record: &ActionRecord,
        coeff_logprob: f64,
        coeff_entropy: f64,
    ) {
        let logits = self
            .pending_logits
            .0
            .pop()
            .expect("backward called without a matching evaluate");
        let mask = self.flat_mask(obs);
        let dist = MaskedCategorical::new(&logits, &mask);
        let lp = dist.log_prob_grad(record.kind_index);
        let eg = dist.entropy_grad();
        let grad: Vec<f64> = lp
            .iter()
            .zip(&eg)
            .map(|(l, e)| coeff_logprob * l + coeff_entropy * e)
            .collect();
        let grad_z = self.head.backward(&grad);
        let grad_embedding = self.backbone.backward(&grad_z);
        self.lstm.backward(&grad_embedding);
    }

    fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.backbone.zero_grad();
        self.head.zero_grad();
        self.pending_logits.0.clear();
        self.pending_batches.0.clear();
    }

    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.lstm.parameters_mut();
        out.extend(self.backbone.parameters_mut());
        out.extend(self.head.parameters_mut());
        out
    }

    fn evaluate_batch(
        &mut self,
        batch: &ObservationBatch,
        items: &[(&Observation, &ActionRecord)],
    ) -> Vec<(f64, f64)> {
        assert_eq!(batch.len(), items.len(), "packed batch size mismatch");
        if items.is_empty() {
            // Nothing evaluated, nothing pushed: the matching
            // `backward_batch` is a no-op, so the pending stack stays
            // symmetric and an empty tick cannot panic the caller.
            return Vec::new();
        }
        let logits = self.logits_train_batch(batch);
        let mut out = Vec::with_capacity(items.len());
        for (i, (obs, record)) in items.iter().enumerate() {
            let mask = self.flat_mask(obs);
            let dist = MaskedCategorical::new(logits.row(i), &mask);
            out.push((dist.log_prob(record.kind_index), dist.entropy()));
        }
        self.pending_batches.0.push(logits);
        out
    }

    fn backward_batch(&mut self, items: &[(&Observation, &ActionRecord)], coeffs: &[(f64, f64)]) {
        if items.is_empty() {
            assert!(coeffs.is_empty(), "coefficient count mismatch");
            return;
        }
        let logits = self
            .pending_batches
            .0
            .pop()
            .expect("backward_batch called without a matching evaluate_batch");
        assert_eq!(items.len(), logits.rows(), "batch mismatch");
        let mut grads = Tensor2::zeros(logits.rows(), logits.cols());
        for (i, ((obs, record), (coeff_logprob, coeff_entropy))) in
            items.iter().zip(coeffs).enumerate()
        {
            let mask = self.flat_mask(obs);
            let dist = MaskedCategorical::new(logits.row(i), &mask);
            let lp = dist.log_prob_grad(record.kind_index);
            let eg = dist.entropy_grad();
            for (slot, (l, e)) in grads.row_mut(i).iter_mut().zip(lp.iter().zip(&eg)) {
                *slot = coeff_logprob * l + coeff_entropy * e;
            }
        }
        let grad_z = self.head.backward_batch(&grads);
        let grad_embedding = self.backbone.backward_batch(&grad_z);
        self.lstm.backward_batch(&grad_embedding);
    }

    fn rank_actions(
        &mut self,
        obs: &Observation,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<ActionRecord> {
        let mut logits = std::mem::take(&mut self.logits_scratch).0;
        self.infer_logits(obs, &mut logits);
        let mask = self.flat_mask(obs);
        let records = rank_candidates(k, rng, |greedy, rng| {
            self.record_from_logits(obs, &logits, &mask, greedy, rng)
        });
        self.logits_scratch = Scratch(logits);
        records
    }

    fn rank_actions_batch(
        &mut self,
        observations: &[&Observation],
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<ActionRecord>> {
        if observations.is_empty() {
            return Vec::new();
        }
        let batch = ObservationBatch::from_observations(observations.iter().copied());
        let mut logits = std::mem::take(&mut self.batch_scratch).0;
        self.infer_logits_batch(&batch, &mut logits);
        let mut out = Vec::with_capacity(observations.len());
        for (i, obs) in observations.iter().enumerate() {
            let mask = self.flat_mask(obs);
            out.push(rank_candidates(k, rng, |greedy, rng| {
                self.record_from_logits(obs, logits.row(i), &mask, greedy, rng)
            }));
        }
        self.batch_scratch = Scratch(logits);
        out
    }

    fn infer_groups(&mut self, groups: &mut [InferenceGroup]) -> Vec<GroupResult> {
        let total_rows: usize = groups.iter().map(|g| g.observations.len()).sum();
        if total_rows == 0 {
            return groups
                .iter()
                .map(|g| match g.mode {
                    InferenceMode::Rank { .. } => GroupResult::Ranked(Vec::new()),
                    InferenceMode::Sample { .. } => GroupResult::Sampled(Vec::new()),
                })
                .collect();
        }
        let batch =
            ObservationBatch::from_observations(groups.iter().flat_map(|g| g.observations.iter()));
        let mut logits = std::mem::take(&mut self.batch_scratch).0;
        self.infer_logits_batch(&batch, &mut logits);
        let mut results = Vec::with_capacity(groups.len());
        let mut base = 0;
        for group in groups.iter_mut() {
            let InferenceGroup {
                observations,
                mode,
                rng,
            } = group;
            match *mode {
                InferenceMode::Rank { k } => {
                    let mut ranked = Vec::with_capacity(observations.len());
                    for (j, obs) in observations.iter().enumerate() {
                        let mask = self.flat_mask(obs);
                        ranked.push(rank_candidates(k, rng, |greedy, rng| {
                            self.record_from_logits(obs, logits.row(base + j), &mask, greedy, rng)
                        }));
                    }
                    results.push(GroupResult::Ranked(ranked));
                }
                InferenceMode::Sample { greedy } => {
                    let mut sampled = Vec::with_capacity(observations.len());
                    for (j, obs) in observations.iter().enumerate() {
                        let mask = self.flat_mask(obs);
                        sampled.push(self.record_from_logits(
                            obs,
                            logits.row(base + j),
                            &mask,
                            greedy,
                            rng,
                        ));
                    }
                    results.push(GroupResult::Sampled(sampled));
                }
            }
            base += observations.len();
        }
        self.batch_scratch = Scratch(logits);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::OptimizationEnv;
    use mlir_rl_ir::ModuleBuilder;
    use rand::SeedableRng;

    fn observation() -> Observation {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 32]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        let mut env =
            OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()));
        env.reset(b.finish()).unwrap()
    }

    fn flat_policy() -> FlatPolicyNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        FlatPolicyNetwork::new(
            EnvConfig::small(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        )
    }

    #[test]
    fn empty_batches_evaluate_to_empty_results_instead_of_panicking() {
        let mut p = flat_policy();
        let batch = ObservationBatch::new(p.env_config().feature_len());
        assert!(p.evaluate_batch(&batch, &[]).is_empty());
        p.backward_batch(&[], &[]);
        // A real pair afterwards confirms the pending stack stayed
        // symmetric.
        let obs = observation();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let record = p.select_action(&obs, false, &mut rng);
        let mut packed = ObservationBatch::new(p.env_config().feature_len());
        packed.push(&obs);
        let out = p.evaluate_batch(&packed, &[(&obs, &record)]);
        assert_eq!(out.len(), 1);
        p.backward_batch(&[(&obs, &record)], &[(1.0, 0.01)]);
        p.zero_grad();
    }

    #[test]
    fn infer_groups_matches_direct_calls() {
        let obs = observation();
        let mut batched = flat_policy();
        let mut groups = vec![
            InferenceGroup {
                observations: vec![obs.clone(), obs.clone()],
                mode: InferenceMode::Rank { k: 2 },
                rng: ChaCha8Rng::seed_from_u64(31),
            },
            InferenceGroup {
                observations: vec![obs.clone()],
                mode: InferenceMode::Sample { greedy: false },
                rng: ChaCha8Rng::seed_from_u64(32),
            },
        ];
        let results = batched.infer_groups(&mut groups);

        let mut direct = flat_policy();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let direct_rank = direct.rank_actions_batch(&[&obs, &obs], 2, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let direct_sample = direct.select_action(&obs, false, &mut rng);

        match &results[0] {
            GroupResult::Ranked(ranked) => assert_eq!(ranked, &direct_rank),
            GroupResult::Sampled(_) => panic!("rank group answered with samples"),
        }
        match &results[1] {
            GroupResult::Sampled(sampled) => {
                assert_eq!(sampled.as_slice(), std::slice::from_ref(&direct_sample));
            }
            GroupResult::Ranked(_) => panic!("sample group answered with ranking"),
        }
    }

    #[test]
    fn flat_action_count_matches_enumeration() {
        let p = flat_policy();
        let config = EnvConfig::small();
        assert_eq!(p.num_actions(), flat_action_space(&config).len());
    }

    #[test]
    fn sampled_flat_actions_are_legal_kinds() {
        let mut p = flat_policy();
        let obs = observation();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..30 {
            let record = p.select_action(&obs, false, &mut rng);
            assert!(obs.mask.allows(record.action.kind()));
        }
    }

    #[test]
    fn evaluate_is_consistent_with_selection() {
        let mut p = flat_policy();
        let obs = observation();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let record = p.select_action(&obs, false, &mut rng);
        let (lp, ent) = p.evaluate(&obs, &record);
        assert!((lp - record.log_prob).abs() < 1e-9);
        assert!((ent - record.entropy).abs() < 1e-9);
        p.backward(&obs, &record, 1.0, 0.0);
        let grads: f64 = p
            .parameters_mut()
            .iter()
            .map(|g| g.grad_norm_squared())
            .sum();
        assert!(grads > 0.0);
        p.zero_grad();
    }

    #[test]
    fn flat_trainer_runs_an_iteration() {
        use crate::ppo::{PpoConfig, PpoTrainer};
        use crate::value::ValueNetwork;
        let config = EnvConfig::small();
        let hyper = PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let policy = FlatPolicyNetwork::new(config.clone(), hyper, &mut rng);
        let value = ValueNetwork::new(&config, hyper, &mut rng);
        let mut trainer = PpoTrainer::with_policy(
            policy,
            value,
            PpoConfig {
                trajectories_per_iteration: 2,
                minibatch_size: 4,
                update_epochs: 1,
                ..PpoConfig::paper()
            },
            rng,
        );
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![64, 64]);
        let w = b.argument("B", vec![64, 64]);
        b.matmul(a, w);
        let dataset = vec![b.finish()];
        let mut env = OptimizationEnv::new(config, CostModel::new(MachineModel::default()));
        let stats = trainer.train_iteration(&mut env, &dataset);
        assert!(stats.mean_speedup.is_finite());
    }
}
