//! Versioned binary weight snapshots for the policy and value networks.
//!
//! The vendored `serde` is a no-op stub (nothing in the tree performs real
//! serialization through it), so network snapshots use the same hand-rolled
//! binary idiom as the cost-model cache (`mlir_rl_costmodel::EvalCache`):
//! a magic tag, a format version, little-endian shapes and `f64` bit
//! patterns, and an FNV-1a checksum trailer. Round-tripping is *bitwise*:
//! a restored network ranks and samples exactly like the original, which is
//! what lets a deserialized snapshot be swapped into the service's
//! [`crate::online::PolicyRegistry`] without perturbing the per-version
//! determinism contract.

use mlir_rl_nn::Param;

use crate::flat::FlatPolicyNetwork;
use crate::policy::PolicyNetwork;
use crate::ppo::PolicyModel;
use crate::value::ValueNetwork;

/// Magic tag of the weight-snapshot format ("MLir Rl Weights").
pub const WEIGHTS_MAGIC: [u8; 4] = *b"MLRW";
/// Version of the weight-snapshot format.
pub const WEIGHTS_VERSION: u32 = 1;

/// Why a weight snapshot failed to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightsError {
    /// The byte stream ended early.
    Truncated,
    /// The magic tag did not match [`WEIGHTS_MAGIC`].
    BadMagic,
    /// The format version is not [`WEIGHTS_VERSION`].
    BadVersion(u32),
    /// The snapshot holds a different number of parameter tensors.
    ParamCount {
        /// Tensors the network has.
        expected: usize,
        /// Tensors the snapshot holds.
        found: usize,
    },
    /// Tensor `index` has a different shape in the snapshot.
    ShapeMismatch {
        /// Position of the tensor in `parameters_mut()` order.
        index: usize,
        /// The network's `(rows, cols)`.
        expected: (usize, usize),
        /// The snapshot's `(rows, cols)`.
        found: (usize, usize),
    },
    /// The checksum trailer did not match the payload.
    Corrupt,
}

impl std::fmt::Display for WeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "weight snapshot truncated"),
            Self::BadMagic => write!(f, "weight snapshot has wrong magic tag"),
            Self::BadVersion(v) => write!(
                f,
                "weight snapshot format version {v} (expected {WEIGHTS_VERSION})"
            ),
            Self::ParamCount { expected, found } => write!(
                f,
                "weight snapshot holds {found} tensors, network has {expected}"
            ),
            Self::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "tensor {index} shape {found:?} does not match network shape {expected:?}"
            ),
            Self::Corrupt => write!(f, "weight snapshot checksum mismatch"),
        }
    }
}

impl std::error::Error for WeightsError {}

/// FNV-1a over a byte stream (the repo-wide fingerprint primitive).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Encodes `params` (in `parameters_mut()` order) into the snapshot format.
fn encode(params: &[&mut Param]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&WEIGHTS_MAGIC);
    out.extend_from_slice(&WEIGHTS_VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for param in params {
        out.extend_from_slice(&(param.rows as u32).to_le_bytes());
        out.extend_from_slice(&(param.cols as u32).to_le_bytes());
        for &v in &param.value {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    let mut fnv = Fnv::new();
    fnv.write(&out);
    out.extend_from_slice(&fnv.finish().to_le_bytes());
    out
}

/// Decodes a snapshot produced by [`encode`] back into `params`.
///
/// Validation happens before any write: a failed restore leaves the
/// network untouched.
fn decode(params: &mut [&mut Param], bytes: &[u8]) -> Result<(), WeightsError> {
    if bytes.len() < WEIGHTS_MAGIC.len() + 4 + 4 + 8 {
        return Err(WeightsError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let mut fnv = Fnv::new();
    fnv.write(payload);
    if fnv.finish() != stored {
        return Err(WeightsError::Corrupt);
    }
    struct Cursor<'a>(&'a [u8]);
    impl<'a> Cursor<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], WeightsError> {
            if self.0.len() < n {
                return Err(WeightsError::Truncated);
            }
            let (head, tail) = self.0.split_at(n);
            self.0 = tail;
            Ok(head)
        }
    }
    let mut cursor = Cursor(payload);
    if cursor.take(4)? != WEIGHTS_MAGIC {
        return Err(WeightsError::BadMagic);
    }
    let version = u32::from_le_bytes(cursor.take(4)?.try_into().expect("4 bytes"));
    if version != WEIGHTS_VERSION {
        return Err(WeightsError::BadVersion(version));
    }
    let count = u32::from_le_bytes(cursor.take(4)?.try_into().expect("4 bytes")) as usize;
    if count != params.len() {
        return Err(WeightsError::ParamCount {
            expected: params.len(),
            found: count,
        });
    }
    // Pass 1: validate every shape and stage the decoded values.
    let mut staged: Vec<Vec<f64>> = Vec::with_capacity(count);
    for (index, param) in params.iter().enumerate() {
        let rows = u32::from_le_bytes(cursor.take(4)?.try_into().expect("4 bytes")) as usize;
        let cols = u32::from_le_bytes(cursor.take(4)?.try_into().expect("4 bytes")) as usize;
        if rows != param.rows || cols != param.cols {
            return Err(WeightsError::ShapeMismatch {
                index,
                expected: (param.rows, param.cols),
                found: (rows, cols),
            });
        }
        let raw = cursor.take(param.value.len() * 8)?;
        let values = raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        staged.push(values);
    }
    // Pass 2: commit.
    for (param, values) in params.iter_mut().zip(staged) {
        param.value = values;
    }
    Ok(())
}

/// Fingerprints `params`: FNV-1a over shapes and weight bit patterns.
fn fingerprint(params: &[&mut Param]) -> u64 {
    let mut fnv = Fnv::new();
    for param in params {
        fnv.write(&(param.rows as u64).to_le_bytes());
        fnv.write(&(param.cols as u64).to_le_bytes());
        for &v in &param.value {
            fnv.write(&v.to_bits().to_le_bytes());
        }
    }
    fnv.finish()
}

/// Bitwise weight snapshots over a network's `parameters_mut()` order.
///
/// The only method an implementor supplies is [`WeightSnapshot::snapshot_params`];
/// encode/decode/fingerprint ride on top.
pub trait WeightSnapshot {
    /// The network's parameter tensors in stable snapshot order.
    fn snapshot_params(&mut self) -> Vec<&mut Param>;

    /// Serializes the weights into the versioned binary snapshot format.
    fn weights_to_bytes(&mut self) -> Vec<u8> {
        encode(&self.snapshot_params())
    }

    /// Restores weights from [`WeightSnapshot::weights_to_bytes`] output.
    /// Validation (magic, version, checksum, shapes) happens before any
    /// write; on error the network is unchanged.
    fn restore_weights(&mut self, bytes: &[u8]) -> Result<(), WeightsError> {
        decode(&mut self.snapshot_params(), bytes)
    }

    /// FNV-1a fingerprint of the weight bit patterns; two networks with
    /// equal fingerprints rank and sample identically.
    fn weights_fingerprint(&mut self) -> u64 {
        fingerprint(&self.snapshot_params())
    }
}

impl WeightSnapshot for PolicyNetwork {
    fn snapshot_params(&mut self) -> Vec<&mut Param> {
        self.parameters_mut()
    }
}

impl WeightSnapshot for FlatPolicyNetwork {
    fn snapshot_params(&mut self) -> Vec<&mut Param> {
        self.parameters_mut()
    }
}

impl WeightSnapshot for ValueNetwork {
    fn snapshot_params(&mut self) -> Vec<&mut Param> {
        self.parameters_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyHyperparams;
    use crate::ppo::PolicyModel;
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::{EnvConfig, OptimizationEnv};
    use mlir_rl_ir::{Module, ModuleBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const HYPER: PolicyHyperparams = PolicyHyperparams {
        hidden_size: 16,
        backbone_layers: 1,
    };

    fn module() -> Module {
        let mut b = ModuleBuilder::new("snapshot-test");
        let a = b.argument("A", vec![16, 16]);
        let w = b.argument("B", vec![16, 16]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    fn observation() -> mlir_rl_env::Observation {
        let mut env =
            OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()));
        env.reset(module()).expect("live episode")
    }

    #[test]
    fn policy_roundtrip_ranks_and_samples_bit_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut original = PolicyNetwork::new(EnvConfig::small(), HYPER, &mut rng);
        let bytes = original.weights_to_bytes();
        // Restore into a *differently initialized* network of the same shape.
        let mut rng2 = ChaCha8Rng::seed_from_u64(99);
        let mut restored = PolicyNetwork::new(EnvConfig::small(), HYPER, &mut rng2);
        assert_ne!(
            original.weights_fingerprint(),
            restored.weights_fingerprint()
        );
        restored.restore_weights(&bytes).expect("roundtrip");
        assert_eq!(
            original.weights_fingerprint(),
            restored.weights_fingerprint()
        );

        let obs = observation();
        // Greedy decode (deployment behavior) is bit-identical.
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let a = original.select_action(&obs, true, &mut r1);
        let b = restored.select_action(&obs, true, &mut r2);
        assert_eq!(a.action, b.action);
        assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        // Sampling consumes the same draws and lands on the same action.
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        let a = original.select_action(&obs, false, &mut r1);
        let b = restored.select_action(&obs, false, &mut r2);
        assert_eq!(a.action, b.action);
        assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        assert_eq!(a.entropy.to_bits(), b.entropy.to_bits());
        // Ranking agrees too.
        let mut r1 = ChaCha8Rng::seed_from_u64(13);
        let mut r2 = ChaCha8Rng::seed_from_u64(13);
        let ra = original.rank_actions(&obs, 4, &mut r1);
        let rb = restored.rank_actions(&obs, 4, &mut r2);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.action, y.action);
            assert_eq!(x.log_prob.to_bits(), y.log_prob.to_bits());
        }
    }

    #[test]
    fn flat_policy_roundtrip_is_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut original = FlatPolicyNetwork::new(EnvConfig::small(), HYPER, &mut rng);
        let bytes = original.weights_to_bytes();
        let mut rng2 = ChaCha8Rng::seed_from_u64(22);
        let mut restored = FlatPolicyNetwork::new(EnvConfig::small(), HYPER, &mut rng2);
        restored.restore_weights(&bytes).expect("roundtrip");
        assert_eq!(
            original.weights_fingerprint(),
            restored.weights_fingerprint()
        );

        let obs = observation();
        let mut r1 = ChaCha8Rng::seed_from_u64(3);
        let mut r2 = ChaCha8Rng::seed_from_u64(3);
        let a = PolicyModel::select_action(&mut original, &obs, false, &mut r1);
        let b = PolicyModel::select_action(&mut restored, &obs, false, &mut r2);
        assert_eq!(a.action, b.action);
        assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
    }

    #[test]
    fn value_roundtrip_predicts_bit_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut original = ValueNetwork::new(&EnvConfig::small(), HYPER, &mut rng);
        let bytes = original.weights_to_bytes();
        let mut rng2 = ChaCha8Rng::seed_from_u64(32);
        let mut restored = ValueNetwork::new(&EnvConfig::small(), HYPER, &mut rng2);
        restored.restore_weights(&bytes).expect("roundtrip");
        assert_eq!(
            original.weights_fingerprint(),
            restored.weights_fingerprint()
        );
        let obs = observation();
        let a = original.predict(&obs);
        let b = restored.predict(&obs);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn restore_validates_before_writing() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut policy = PolicyNetwork::new(EnvConfig::small(), HYPER, &mut rng);
        let before = policy.weights_fingerprint();
        let mut bytes = policy.weights_to_bytes();

        // Corrupt one payload byte: checksum catches it, weights untouched.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(policy.restore_weights(&bytes), Err(WeightsError::Corrupt));
        assert_eq!(policy.weights_fingerprint(), before);

        // Truncation is detected.
        let good = policy.weights_to_bytes();
        assert_eq!(
            policy.restore_weights(&good[..8]),
            Err(WeightsError::Truncated)
        );

        // A value-network snapshot does not restore into a policy.
        let mut value = ValueNetwork::new(&EnvConfig::small(), HYPER, &mut rng);
        let foreign = value.weights_to_bytes();
        assert!(policy.restore_weights(&foreign).is_err());
        assert_eq!(policy.weights_fingerprint(), before);
    }
}
