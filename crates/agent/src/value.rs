//! The critic (value network, Sec. V-B).
//!
//! The first two components are identical to the policy network (the
//! producer-consumer LSTM embedding and the ReLU backbone); a final linear
//! layer with a single output estimates the state value `v_pi(s)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mlir_rl_env::{EnvConfig, Observation, ObservationBatch};
use mlir_rl_nn::{Linear, Lstm, Mlp, Param, Scratch, Tensor2};

use crate::policy::{lstm_step_tensors, PolicyHyperparams};

/// The value network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueNetwork {
    lstm: Lstm,
    backbone: Mlp,
    head: Linear,
    /// Reusable one-element output buffer for [`ValueNetwork::predict_fast`].
    #[serde(skip)]
    infer_out: Scratch<Vec<f64>>,
    /// Reusable batched output buffer for [`ValueNetwork::predict_batch`].
    #[serde(skip)]
    batch_out: Scratch<Tensor2>,
}

impl ValueNetwork {
    /// Creates a value network for the given environment configuration.
    pub fn new<R: Rng>(env_config: &EnvConfig, hyper: PolicyHyperparams, rng: &mut R) -> Self {
        let feature_len = env_config.feature_len();
        let h = hyper.hidden_size;
        let lstm = Lstm::new(feature_len, h, rng);
        let mut sizes = vec![h];
        sizes.extend(std::iter::repeat_n(h, hyper.backbone_layers));
        let backbone = Mlp::new(&sizes, true, rng);
        let head = Linear::new(h, 1, rng);
        Self {
            lstm,
            backbone,
            head,
            infer_out: Scratch::default(),
            batch_out: Scratch::default(),
        }
    }

    /// Estimates the state value without caching (rollout collection).
    pub fn predict(&self, obs: &Observation) -> f64 {
        let sequence = vec![obs.producer.clone(), obs.consumer.clone()];
        let embedding = self.lstm.forward_inference(&sequence);
        let z = self.backbone.forward_inference(&embedding);
        self.head.forward_inference(&z)[0]
    }

    /// Allocation-free twin of [`ValueNetwork::predict`] using internal
    /// scratch buffers; bit-identical results. This is the path the rollout
    /// engine uses.
    pub fn predict_fast(&mut self, obs: &Observation) -> f64 {
        let embedding = self
            .lstm
            .infer(&[obs.producer.as_slice(), obs.consumer.as_slice()]);
        let z = self.backbone.infer(embedding);
        self.head.infer_into(z, &mut self.infer_out.0);
        self.infer_out.0[0]
    }

    /// Estimates the state value, caching activations for
    /// [`ValueNetwork::backward`].
    pub fn forward(&mut self, obs: &Observation) -> f64 {
        let sequence = vec![obs.producer.clone(), obs.consumer.clone()];
        let embedding = self.lstm.forward(&sequence);
        let z = self.backbone.forward(&embedding);
        self.head.forward(&z)[0]
    }

    /// Batched [`ValueNetwork::predict_fast`]: estimates every packed
    /// observation's value through one batched forward pass per layer,
    /// using internal scratch. Entry `i` is bit-identical to
    /// [`ValueNetwork::predict`] on observation `i`.
    pub fn predict_batch(&mut self, batch: &ObservationBatch) -> Vec<f64> {
        let steps = lstm_step_tensors(batch);
        let embedding = self.lstm.infer_batch(&[&steps[0], &steps[1]]);
        let z = self.backbone.infer_batch(embedding);
        let mut out = std::mem::take(&mut self.batch_out).0;
        self.head.infer_batch_into(z, &mut out);
        let values = out.data().to_vec();
        self.batch_out = Scratch(out);
        values
    }

    /// Batched [`ValueNetwork::forward`]: estimates every packed
    /// observation's value through one batched forward pass per layer,
    /// caching activations for [`ValueNetwork::backward_batch`]. Entry `i`
    /// is bit-identical to `forward` on observation `i`.
    pub fn forward_batch(&mut self, batch: &ObservationBatch) -> Vec<f64> {
        let steps = lstm_step_tensors(batch);
        let embedding = self.lstm.forward_batch(&steps);
        let z = self.backbone.forward_batch(&embedding);
        self.head.forward_batch(&z).into_flat()
    }

    /// Backward pass for the most recent un-consumed [`ValueNetwork::forward`]
    /// call, given `d loss / d value`.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching `forward`.
    pub fn backward(&mut self, grad_value: f64) {
        let grad_z = self.head.backward(&[grad_value]);
        let grad_embedding = self.backbone.backward(&grad_z);
        self.lstm.backward(&grad_embedding);
    }

    /// Batched backward pass for the most recent un-consumed
    /// [`ValueNetwork::forward_batch`] call, given `d loss / d value` per
    /// observation. Parameter gradients accumulate in reverse item order —
    /// bit-identical to per-sample `backward` calls in reverse.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching `forward_batch` or the gradient
    /// count differs from the forwarded batch.
    pub fn backward_batch(&mut self, grad_values: &[f64]) {
        let g = Tensor2::from_flat(grad_values.len(), 1, grad_values.to_vec());
        let grad_z = self.head.backward_batch(&g);
        let grad_embedding = self.backbone.backward_batch(&grad_z);
        self.lstm.backward_batch(&grad_embedding);
    }

    /// Clears gradients and caches.
    pub fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.backbone.zero_grad();
        self.head.zero_grad();
    }

    /// All trainable parameters, in a stable order.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.lstm.parameters_mut();
        out.extend(self.backbone.parameters_mut());
        out.extend(self.head.parameters_mut());
        out
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.parameters_mut().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::OptimizationEnv;
    use mlir_rl_ir::ModuleBuilder;
    use mlir_rl_nn::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn observation() -> Observation {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![64, 64]);
        let w = b.argument("B", vec![64, 64]);
        b.matmul(a, w);
        let mut env =
            OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()));
        env.reset(b.finish()).unwrap()
    }

    #[test]
    fn predict_and_forward_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut v = ValueNetwork::new(&EnvConfig::small(), PolicyHyperparams::default(), &mut rng);
        let obs = observation();
        let a = v.predict(&obs);
        let b = v.forward(&obs);
        assert!((a - b).abs() < 1e-12);
        v.zero_grad();
        assert!(v.num_parameters() > 1000);
    }

    #[test]
    fn value_regression_converges_to_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut v = ValueNetwork::new(&EnvConfig::small(), PolicyHyperparams::default(), &mut rng);
        let obs = observation();
        let target = 2.5;
        let mut adam = Adam::new(1e-2);
        for _ in 0..100 {
            v.zero_grad();
            let pred = v.forward(&obs);
            // Loss = 0.5 (pred - target)^2, dL/dpred = pred - target.
            v.backward(pred - target);
            adam.step(&mut v.parameters_mut());
        }
        let final_pred = v.predict(&obs);
        assert!(
            (final_pred - target).abs() < 0.2,
            "value head should fit a constant target, got {final_pred}"
        );
    }
}
