//! The multi-discrete policy network (Fig. 3 and 4 of the paper).
//!
//! Architecture: the producer and consumer representation vectors are fed
//! sequentially into an LSTM; the final hidden state goes through a backbone
//! of three fully connected ReLU layers; five heads map the backbone
//! embedding to sub-action distributions — transformation selection (6-way),
//! one `N x M` tile-size head per tiled transformation, and an interchange
//! head.
//!
//! Interchange comes in the two formulations of Sec. IV-A-1:
//!
//! * **Enumerated candidates** — a `3N-6`-way categorical over pairwise
//!   swaps of loops at distance ≤ 3.
//! * **Level pointers** — the head produces one score per loop; a
//!   permutation is built by repeatedly sampling (without replacement) from
//!   the masked softmax over the remaining loops, exactly the sub-step
//!   process of Appendix B expressed as a Plackett–Luce distribution over
//!   permutations. This covers all `N!` permutations with only `N` outputs.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use mlir_rl_env::{
    Action, EnvConfig, InterchangeMode, InterchangeSpec, Observation, ObservationBatch,
};
use mlir_rl_nn::{Linear, Lstm, MaskedCategorical, Mlp, Param, Scratch, Tensor2};
use mlir_rl_transforms::TransformationKind;

use crate::ppo::{GroupResult, InferenceGroup, InferenceMode};

/// Hyper-parameters of the network (the paper uses 512 units everywhere;
/// the default here is smaller so that the benchmark harness trains in
/// minutes on one machine — pass 512 to reproduce the paper's sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyHyperparams {
    /// LSTM hidden size and backbone width.
    pub hidden_size: usize,
    /// Number of backbone layers.
    pub backbone_layers: usize,
}

impl Default for PolicyHyperparams {
    fn default() -> Self {
        Self {
            hidden_size: 64,
            backbone_layers: 3,
        }
    }
}

impl PolicyHyperparams {
    /// The paper's configuration: 512-unit LSTM and three 512-unit layers.
    pub fn paper() -> Self {
        Self {
            hidden_size: 512,
            backbone_layers: 3,
        }
    }
}

/// The sub-decisions taken for one action, with everything needed to
/// recompute its probability during PPO updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// The environment-facing action.
    pub action: Action,
    /// Index of the selected transformation kind.
    pub kind_index: usize,
    /// Selected tile-candidate index per loop level (empty when the action
    /// is not tiled).
    pub tile_indices: Vec<usize>,
    /// Selected interchange candidate (enumerated mode).
    pub interchange_candidate: Option<usize>,
    /// Selected permutation (level-pointer mode).
    pub interchange_permutation: Option<Vec<usize>>,
    /// Log-probability of the whole action under the sampling policy.
    pub log_prob: f64,
    /// Entropy of the distributions involved in the action.
    pub entropy: f64,
}

/// The policy network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyNetwork {
    env_config: EnvConfig,
    hyper: PolicyHyperparams,
    lstm: Lstm,
    backbone: Mlp,
    transformation_head: Linear,
    tiling_head: Linear,
    parallelization_head: Linear,
    fusion_head: Linear,
    interchange_head: Linear,
    /// Reusable head-logit buffers for [`PolicyNetwork::select_action`].
    #[serde(skip)]
    head_scratch: Scratch<HeadOutputs>,
    /// Head outputs of pending [`PolicyNetwork::evaluate`] calls, consumed
    /// in reverse order by [`PolicyNetwork::backward`] so the backward pass
    /// never re-runs the forward network.
    #[serde(skip)]
    pending_outputs: Scratch<Vec<HeadOutputs>>,
    /// Batched head outputs of pending [`PolicyNetwork::evaluate_batch`]
    /// calls, consumed by [`PolicyNetwork::backward_batch`].
    #[serde(skip)]
    pending_batches: Scratch<Vec<HeadBatch>>,
    /// Reusable batched head-logit buffers for
    /// [`PolicyNetwork::rank_actions_batch`].
    #[serde(skip)]
    batch_scratch: Scratch<HeadBatch>,
    /// Reusable LSTM step tensors for batched inference: the packed
    /// producer/consumer rows are copied into these instead of freshly
    /// allocated tensors, so repeated batched calls (e.g. aggregator ticks)
    /// reuse one arena.
    #[serde(skip)]
    step_scratch: Scratch<[Tensor2; 2]>,
    /// Reusable packed-row arena for [`PolicyNetwork::infer_groups`].
    #[serde(skip)]
    pack_scratch: Scratch<ObservationBatch>,
}

/// Per-head logits of one forward pass (training mode keeps them to build
/// gradients).
#[derive(Debug, Clone, Default)]
struct HeadOutputs {
    transformation: Vec<f64>,
    tiling: Vec<f64>,
    parallelization: Vec<f64>,
    fusion: Vec<f64>,
    interchange: Vec<f64>,
}

/// Per-head logits of one **batched** forward pass: one row per
/// observation in each tensor.
#[derive(Debug, Clone, Default)]
struct HeadBatch {
    transformation: Tensor2,
    tiling: Tensor2,
    parallelization: Tensor2,
    fusion: Tensor2,
    interchange: Tensor2,
}

impl HeadBatch {
    /// Extracts observation `i`'s logits as a per-sample [`HeadOutputs`].
    fn row_outputs(&self, i: usize) -> HeadOutputs {
        HeadOutputs {
            transformation: self.transformation.row(i).to_vec(),
            tiling: self.tiling.row(i).to_vec(),
            parallelization: self.parallelization.row(i).to_vec(),
            fusion: self.fusion.row(i).to_vec(),
            interchange: self.interchange.row(i).to_vec(),
        }
    }

    /// A zero-filled batch with the same shapes.
    fn zeros_like(&self) -> Self {
        Self {
            transformation: Tensor2::zeros(self.transformation.rows(), self.transformation.cols()),
            tiling: Tensor2::zeros(self.tiling.rows(), self.tiling.cols()),
            parallelization: Tensor2::zeros(
                self.parallelization.rows(),
                self.parallelization.cols(),
            ),
            fusion: Tensor2::zeros(self.fusion.rows(), self.fusion.cols()),
            interchange: Tensor2::zeros(self.interchange.rows(), self.interchange.cols()),
        }
    }
}

/// Packs an observation batch into the two LSTM time-step tensors
/// (producers first, consumers second — the same order the per-vector paths
/// feed the embedding LSTM).
pub(crate) fn lstm_step_tensors(batch: &ObservationBatch) -> [Tensor2; 2] {
    let rows = batch.len();
    let cols = batch.feature_len();
    [
        Tensor2::from_flat(rows, cols, batch.producers().to_vec()),
        Tensor2::from_flat(rows, cols, batch.consumers().to_vec()),
    ]
}

/// Allocation-reusing form of [`lstm_step_tensors`]: copies the packed rows
/// into existing step tensors (bit-identical contents, no fresh buffers), so
/// long-lived inference paths — the aggregator's per-tick arena in
/// particular — stop allocating two tensors per batch.
pub(crate) fn lstm_step_tensors_into(batch: &ObservationBatch, steps: &mut [Tensor2; 2]) {
    let rows = batch.len();
    let cols = batch.feature_len();
    steps[0].assign_flat(rows, cols, batch.producers());
    steps[1].assign_flat(rows, cols, batch.consumers());
}

/// The shared candidate-ranking procedure behind
/// [`crate::PolicyModel::rank_actions`]: the greedy draw first, then
/// oversampled distinct candidates sorted by descending log-probability.
/// `draw(greedy, rng)` produces one action record; implementations that
/// can cache their forward pass hand in a draw closure over precomputed
/// logits, which keeps the RNG consumption (and therefore the results)
/// bit-identical to repeated `select_action` calls.
pub(crate) fn rank_candidates<F>(k: usize, rng: &mut ChaCha8Rng, mut draw: F) -> Vec<ActionRecord>
where
    F: FnMut(bool, &mut ChaCha8Rng) -> ActionRecord,
{
    let k = k.max(1);
    let mut out = vec![draw(true, rng)];
    if k > 1 {
        // Oversample: duplicates (and re-draws of the greedy action)
        // are discarded, so a few multiples of `k` attempts are needed
        // to fill the candidate list on peaked distributions.
        for _ in 0..k * 8 {
            if out.len() == k {
                break;
            }
            let candidate = draw(false, rng);
            if !out.iter().any(|r| r.action == candidate.action) {
                out.push(candidate);
            }
        }
        out[1..].sort_by(|a, b| {
            b.log_prob
                .partial_cmp(&a.log_prob)
                .expect("log-probabilities are finite")
        });
    }
    out
}

impl PolicyNetwork {
    /// Creates a policy for the given environment configuration.
    pub fn new<R: Rng>(env_config: EnvConfig, hyper: PolicyHyperparams, rng: &mut R) -> Self {
        env_config.validate();
        let feature_len = env_config.feature_len();
        let h = hyper.hidden_size;
        let lstm = Lstm::new(feature_len, h, rng);
        let mut sizes = vec![h];
        sizes.extend(std::iter::repeat_n(h, hyper.backbone_layers));
        let backbone = Mlp::new(&sizes, true, rng);
        let n = env_config.max_loops;
        let m = env_config.num_tile_candidates();
        let interchange_out = match env_config.interchange_mode {
            InterchangeMode::EnumeratedCandidates => env_config.num_enumerated_interchanges(),
            InterchangeMode::LevelPointers => n,
        };
        Self {
            lstm,
            backbone,
            transformation_head: Linear::new(h, 6, rng),
            tiling_head: Linear::new(h, n * m, rng),
            parallelization_head: Linear::new(h, n * m, rng),
            fusion_head: Linear::new(h, n * m, rng),
            interchange_head: Linear::new(h, interchange_out, rng),
            env_config,
            hyper,
            head_scratch: Scratch::default(),
            pending_outputs: Scratch::default(),
            pending_batches: Scratch::default(),
            batch_scratch: Scratch::default(),
            step_scratch: Scratch::default(),
            pack_scratch: Scratch::default(),
        }
    }

    /// The environment configuration the policy was built for.
    pub fn env_config(&self) -> &EnvConfig {
        &self.env_config
    }

    /// The network hyper-parameters.
    pub fn hyperparams(&self) -> PolicyHyperparams {
        self.hyper
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.parameters_mut().iter().map(|p| p.len()).sum()
    }

    /// Training-mode forward pass: caches activations in every layer for a
    /// later [`PolicyNetwork::backward`].
    fn forward_heads_train(&mut self, obs: &Observation) -> HeadOutputs {
        let sequence = vec![obs.producer.clone(), obs.consumer.clone()];
        let embedding = self.lstm.forward(&sequence);
        let z = self.backbone.forward(&embedding);
        HeadOutputs {
            transformation: self.transformation_head.forward(&z),
            tiling: self.tiling_head.forward(&z),
            parallelization: self.parallelization_head.forward(&z),
            fusion: self.fusion_head.forward(&z),
            interchange: self.interchange_head.forward(&z),
        }
    }

    /// Allocation-free inference forward pass into reusable buffers
    /// (bit-identical to the caching path's numerics).
    fn infer_heads(&mut self, obs: &Observation, out: &mut HeadOutputs) {
        let embedding = self
            .lstm
            .infer(&[obs.producer.as_slice(), obs.consumer.as_slice()]);
        let z = self.backbone.infer(embedding);
        self.transformation_head
            .infer_into(z, &mut out.transformation);
        self.tiling_head.infer_into(z, &mut out.tiling);
        self.parallelization_head
            .infer_into(z, &mut out.parallelization);
        self.fusion_head.infer_into(z, &mut out.fusion);
        self.interchange_head.infer_into(z, &mut out.interchange);
    }

    /// Batched training-mode forward pass over a packed observation batch:
    /// one blocked matmul per layer for the whole batch, caching every
    /// layer's activations for [`PolicyNetwork::backward_batch`]. Row `i`
    /// of every head tensor is bit-identical to
    /// [`PolicyNetwork::forward_heads_train`] on observation `i`.
    fn forward_heads_train_batch(&mut self, batch: &ObservationBatch) -> HeadBatch {
        let steps = lstm_step_tensors(batch);
        let embedding = self.lstm.forward_batch(&steps);
        let z = self.backbone.forward_batch(&embedding);
        HeadBatch {
            transformation: self.transformation_head.forward_batch(&z),
            tiling: self.tiling_head.forward_batch(&z),
            parallelization: self.parallelization_head.forward_batch(&z),
            fusion: self.fusion_head.forward_batch(&z),
            interchange: self.interchange_head.forward_batch(&z),
        }
    }

    /// Batched inference forward pass into reusable head buffers
    /// (bit-identical per row to [`PolicyNetwork::infer_heads`]). The LSTM
    /// step tensors come from a scratch arena reused across calls.
    fn infer_heads_batch(&mut self, batch: &ObservationBatch, out: &mut HeadBatch) {
        let mut steps = std::mem::take(&mut self.step_scratch).0;
        lstm_step_tensors_into(batch, &mut steps);
        let embedding = self.lstm.infer_batch(&[&steps[0], &steps[1]]);
        let z = self.backbone.infer_batch(embedding);
        self.transformation_head
            .infer_batch_into(z, &mut out.transformation);
        self.tiling_head.infer_batch_into(z, &mut out.tiling);
        self.parallelization_head
            .infer_batch_into(z, &mut out.parallelization);
        self.fusion_head.infer_batch_into(z, &mut out.fusion);
        self.interchange_head
            .infer_batch_into(z, &mut out.interchange);
        self.step_scratch = Scratch(steps);
    }

    fn tile_head_logits(outputs: &HeadOutputs, kind: TransformationKind) -> &[f64] {
        match kind {
            TransformationKind::Tiling => &outputs.tiling,
            TransformationKind::TiledParallelization => &outputs.parallelization,
            TransformationKind::TiledFusion => &outputs.fusion,
            _ => &outputs.tiling,
        }
    }

    /// Samples (or, with `greedy`, takes the most probable) action for an
    /// observation. Does not cache activations; use for rollouts and
    /// evaluation.
    pub fn select_action<R: Rng>(
        &mut self,
        obs: &Observation,
        greedy: bool,
        rng: &mut R,
    ) -> ActionRecord {
        // Temporarily take the scratch so `decide` can borrow `self`
        // immutably while reading the logits.
        let mut outputs = std::mem::take(&mut self.head_scratch).0;
        self.infer_heads(obs, &mut outputs);
        let record = self.decide(obs, &outputs, greedy, rng);
        self.head_scratch = Scratch(outputs);
        record
    }

    fn decide<R: Rng>(
        &self,
        obs: &Observation,
        outputs: &HeadOutputs,
        greedy: bool,
        rng: &mut R,
    ) -> ActionRecord {
        let n = obs.num_loops;
        let m = self.env_config.num_tile_candidates();
        let mask = &obs.mask;

        // 1. Transformation selection.
        let kind_dist =
            MaskedCategorical::new(&outputs.transformation, mask.transformation.as_ref());
        let kind_index = if greedy {
            kind_dist.argmax()
        } else {
            kind_dist.sample(rng)
        };
        let kind = TransformationKind::from_index(kind_index);
        let mut log_prob = kind_dist.log_prob(kind_index);
        let mut entropy = kind_dist.entropy();

        let mut tile_indices = Vec::new();
        let mut interchange_candidate = None;
        let mut interchange_permutation = None;

        // 2. Parameters of the selected transformation.
        if kind.is_tiled() {
            let logits = Self::tile_head_logits(outputs, kind);
            for level in 0..n {
                // Operations deeper than `max_loops` share the last head row
                // (the representation is truncated to `max_loops` anyway).
                let head_level = level.min(self.env_config.max_loops - 1);
                let level_logits = &logits[head_level * m..(head_level + 1) * m];
                let level_mask = mask
                    .tile_sizes
                    .get(level)
                    .cloned()
                    .unwrap_or_else(|| vec![true; m]);
                let dist = MaskedCategorical::new(level_logits, &level_mask);
                let idx = if greedy {
                    dist.argmax()
                } else {
                    dist.sample(rng)
                };
                log_prob += dist.log_prob(idx);
                entropy += dist.entropy();
                tile_indices.push(idx);
            }
        } else if kind == TransformationKind::Interchange {
            match self.env_config.interchange_mode {
                InterchangeMode::EnumeratedCandidates => {
                    let num_candidates = mask.interchange_candidates.len();
                    let logits =
                        &outputs.interchange[..num_candidates.min(outputs.interchange.len())];
                    let dist = MaskedCategorical::new(
                        logits,
                        &mask.interchange_candidates[..logits.len()],
                    );
                    let idx = if greedy {
                        dist.argmax()
                    } else {
                        dist.sample(rng)
                    };
                    log_prob += dist.log_prob(idx);
                    entropy += dist.entropy();
                    interchange_candidate = Some(idx);
                }
                InterchangeMode::LevelPointers => {
                    let head_len = n.min(outputs.interchange.len());
                    let logits = &outputs.interchange[..head_len];
                    let (mut perm, lp, ent) = sample_permutation(logits, greedy, rng);
                    // Loops beyond the head width keep their positions.
                    perm.extend(head_len..n);
                    log_prob += lp;
                    entropy += ent;
                    interchange_permutation = Some(perm);
                }
            }
        }

        let action = match kind {
            TransformationKind::Tiling => Action::Tiling {
                tile_indices: tile_indices.clone(),
            },
            TransformationKind::TiledParallelization => Action::TiledParallelization {
                tile_indices: tile_indices.clone(),
            },
            TransformationKind::TiledFusion => Action::TiledFusion {
                tile_indices: tile_indices.clone(),
            },
            TransformationKind::Interchange => {
                match (&interchange_candidate, &interchange_permutation) {
                    (Some(c), _) => Action::Interchange(InterchangeSpec::Candidate(*c)),
                    (_, Some(p)) => Action::Interchange(InterchangeSpec::Permutation(p.clone())),
                    _ => Action::NoTransformation,
                }
            }
            TransformationKind::Vectorization => Action::Vectorization,
            TransformationKind::NoTransformation => Action::NoTransformation,
        };

        ActionRecord {
            action,
            kind_index,
            tile_indices,
            interchange_candidate,
            interchange_permutation,
            log_prob,
            entropy,
        }
    }

    /// Recomputes the log-probability and entropy of a stored action under
    /// the *current* parameters, caching activations for
    /// [`PolicyNetwork::backward`].
    pub fn evaluate(&mut self, obs: &Observation, record: &ActionRecord) -> (f64, f64) {
        let outputs = self.forward_heads_train(obs);
        let (log_prob, entropy, _) = self.log_prob_and_grads(obs, record, &outputs, 0.0, 0.0);
        self.pending_outputs.0.push(outputs);
        (log_prob, entropy)
    }

    /// Backward pass for the most recent un-consumed
    /// [`PolicyNetwork::evaluate`] call: accumulates `coeff_logprob *
    /// d log_prob / d θ + coeff_entropy * d entropy / d θ` into the
    /// parameter gradients. When a minibatch is processed with several
    /// `evaluate` calls first, the matching `backward` calls must come in
    /// reverse order (the layer caches are stacks).
    ///
    /// # Panics
    ///
    /// Panics if called without a matching `evaluate`.
    pub fn backward(
        &mut self,
        obs: &Observation,
        record: &ActionRecord,
        coeff_logprob: f64,
        coeff_entropy: f64,
    ) {
        // The head outputs were stored by `evaluate`, so no part of the
        // forward network has to run again.
        let outputs = self
            .pending_outputs
            .0
            .pop()
            .expect("backward called without a matching evaluate");
        let (_, _, grads) =
            self.log_prob_and_grads(obs, record, &outputs, coeff_logprob, coeff_entropy);

        // Push gradients through the heads into the backbone embedding.
        let h = self.hyper.hidden_size;
        let mut grad_z = vec![0.0; h];
        let mut add = |g: Vec<f64>| {
            for (a, b) in grad_z.iter_mut().zip(&g) {
                *a += b;
            }
        };
        add(self.transformation_head.backward(&grads.transformation));
        add(self.tiling_head.backward(&grads.tiling));
        add(self.parallelization_head.backward(&grads.parallelization));
        add(self.fusion_head.backward(&grads.fusion));
        add(self.interchange_head.backward(&grads.interchange));
        let grad_embedding = self.backbone.backward(&grad_z);
        self.lstm.backward(&grad_embedding);
    }

    /// Batched [`PolicyNetwork::evaluate`]: recomputes log-probabilities
    /// and entropies of a whole minibatch through one batched forward pass
    /// per layer, caching the batch for
    /// [`PolicyNetwork::backward_batch`]. `batch` must pack the items'
    /// observations in order. Bit-identical, entry for entry, to calling
    /// `evaluate` once per item.
    pub fn evaluate_batch(
        &mut self,
        batch: &ObservationBatch,
        items: &[(&Observation, &ActionRecord)],
    ) -> Vec<(f64, f64)> {
        assert_eq!(batch.len(), items.len(), "packed batch size mismatch");
        if items.is_empty() {
            // Nothing to evaluate and nothing pushed onto the pending
            // stack; the matching `backward_batch` call is a no-op too, so
            // an empty tick racing a drain cannot kill the caller.
            return Vec::new();
        }
        let heads = self.forward_heads_train_batch(batch);
        let mut out = Vec::with_capacity(items.len());
        for (i, (obs, record)) in items.iter().enumerate() {
            let row = heads.row_outputs(i);
            let (log_prob, entropy, _) = self.log_prob_and_grads(obs, record, &row, 0.0, 0.0);
            out.push((log_prob, entropy));
        }
        self.pending_batches.0.push(heads);
        out
    }

    /// Batched [`PolicyNetwork::backward`] for the most recent un-consumed
    /// [`PolicyNetwork::evaluate_batch`] call. `coeffs[i]` holds
    /// `(coeff_logprob, coeff_entropy)` for item `i`. Parameter gradients
    /// accumulate in reverse item order — bit-identical to calling
    /// `backward` once per item in reverse (the stacked-replay sequence).
    ///
    /// # Panics
    ///
    /// Panics if called without a matching `evaluate_batch` or the item
    /// count differs from the evaluated batch.
    pub fn backward_batch(
        &mut self,
        items: &[(&Observation, &ActionRecord)],
        coeffs: &[(f64, f64)],
    ) {
        if items.is_empty() {
            // `evaluate_batch` pushes nothing for an empty batch, so the
            // pending stack stays symmetric by popping nothing here.
            assert!(coeffs.is_empty(), "coefficient count mismatch");
            return;
        }
        let heads = self
            .pending_batches
            .0
            .pop()
            .expect("backward_batch called without a matching evaluate_batch");
        assert_eq!(items.len(), heads.transformation.rows(), "batch mismatch");
        assert_eq!(items.len(), coeffs.len(), "coefficient count mismatch");
        let mut grads = heads.zeros_like();
        for (i, ((obs, record), (coeff_logprob, coeff_entropy))) in
            items.iter().zip(coeffs).enumerate()
        {
            let row = heads.row_outputs(i);
            let (_, _, g) =
                self.log_prob_and_grads(obs, record, &row, *coeff_logprob, *coeff_entropy);
            grads
                .transformation
                .row_mut(i)
                .copy_from_slice(&g.transformation);
            grads.tiling.row_mut(i).copy_from_slice(&g.tiling);
            grads
                .parallelization
                .row_mut(i)
                .copy_from_slice(&g.parallelization);
            grads.fusion.row_mut(i).copy_from_slice(&g.fusion);
            grads.interchange.row_mut(i).copy_from_slice(&g.interchange);
        }

        // Push gradients through the heads into the backbone embedding, in
        // the same head order (and starting from zeros) as the per-sample
        // backward pass.
        let rows = items.len();
        let h = self.hyper.hidden_size;
        let mut grad_z = Tensor2::zeros(rows, h);
        let add = |grad_z: &mut Tensor2, g: Tensor2| {
            for (a, b) in grad_z.data_mut().iter_mut().zip(g.data()) {
                *a += b;
            }
        };
        let g = self
            .transformation_head
            .backward_batch(&grads.transformation);
        add(&mut grad_z, g);
        let g = self.tiling_head.backward_batch(&grads.tiling);
        add(&mut grad_z, g);
        let g = self
            .parallelization_head
            .backward_batch(&grads.parallelization);
        add(&mut grad_z, g);
        let g = self.fusion_head.backward_batch(&grads.fusion);
        add(&mut grad_z, g);
        let g = self.interchange_head.backward_batch(&grads.interchange);
        add(&mut grad_z, g);
        let grad_embedding = self.backbone.backward_batch(&grad_z);
        self.lstm.backward_batch(&grad_embedding);
    }

    /// Ranks up to `k` distinct candidate actions for an observation (the
    /// greedy action first, then sampled candidates by descending
    /// log-probability) through **one** head inference instead of one per
    /// draw. Bit-identical to repeated `select_action` calls because the
    /// head logits do not change between draws.
    pub fn rank_actions(
        &mut self,
        obs: &Observation,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<ActionRecord> {
        let mut outputs = std::mem::take(&mut self.head_scratch).0;
        self.infer_heads(obs, &mut outputs);
        let records = rank_candidates(k, rng, |greedy, rng| {
            self.decide(obs, &outputs, greedy, rng)
        });
        self.head_scratch = Scratch(outputs);
        records
    }

    /// Ranks candidates for a whole frontier of observations through one
    /// batched head inference. Observation order is preserved, and the RNG
    /// is consumed per observation in order, so the result is bit-identical
    /// to calling [`PolicyNetwork::rank_actions`] once per observation.
    pub fn rank_actions_batch(
        &mut self,
        observations: &[&Observation],
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<ActionRecord>> {
        if observations.is_empty() {
            return Vec::new();
        }
        let batch = ObservationBatch::from_observations(observations.iter().copied());
        let mut heads = std::mem::take(&mut self.batch_scratch).0;
        self.infer_heads_batch(&batch, &mut heads);
        let mut out = Vec::with_capacity(observations.len());
        for (i, obs) in observations.iter().enumerate() {
            let row = heads.row_outputs(i);
            out.push(rank_candidates(k, rng, |greedy, rng| {
                self.decide(obs, &row, greedy, rng)
            }));
        }
        self.batch_scratch = Scratch(heads);
        out
    }

    /// Batched [`crate::PolicyModel::infer_groups`]: packs the rows of
    /// *all* groups into one reused [`ObservationBatch`], runs a single
    /// batched head inference for the whole set, and decodes each group
    /// against its own rows with its own RNG. Because every row of the
    /// blocked batched kernels is bit-identical to the per-vector path, and
    /// RNG consumption is threaded per group exactly like the direct calls,
    /// the results do not depend on which groups happened to share a batch.
    /// All scratch buffers (packed rows, step tensors, head logits) live on
    /// `self` and are reused across calls — repeated aggregator ticks
    /// allocate nothing new after the first.
    pub(crate) fn infer_groups(&mut self, groups: &mut [InferenceGroup]) -> Vec<GroupResult> {
        let total_rows: usize = groups.iter().map(|g| g.observations.len()).sum();
        if total_rows == 0 {
            return groups
                .iter()
                .map(|g| match g.mode {
                    InferenceMode::Rank { .. } => GroupResult::Ranked(Vec::new()),
                    InferenceMode::Sample { .. } => GroupResult::Sampled(Vec::new()),
                })
                .collect();
        }
        let feature_len = groups
            .iter()
            .find_map(|g| g.observations.first())
            .map(|obs| obs.producer.len())
            .expect("non-zero row count implies at least one observation");
        let mut batch = std::mem::take(&mut self.pack_scratch).0;
        batch.clear();
        if batch.feature_len() != feature_len {
            batch = ObservationBatch::new(feature_len);
        }
        for group in groups.iter() {
            for obs in &group.observations {
                batch.push(obs);
            }
        }
        let mut heads = std::mem::take(&mut self.batch_scratch).0;
        self.infer_heads_batch(&batch, &mut heads);
        let mut results = Vec::with_capacity(groups.len());
        let mut base = 0;
        for group in groups.iter_mut() {
            let InferenceGroup {
                observations,
                mode,
                rng,
            } = group;
            match *mode {
                InferenceMode::Rank { k } => {
                    let mut ranked = Vec::with_capacity(observations.len());
                    for (j, obs) in observations.iter().enumerate() {
                        let row = heads.row_outputs(base + j);
                        ranked.push(rank_candidates(k, rng, |greedy, rng| {
                            self.decide(obs, &row, greedy, rng)
                        }));
                    }
                    results.push(GroupResult::Ranked(ranked));
                }
                InferenceMode::Sample { greedy } => {
                    let mut sampled = Vec::with_capacity(observations.len());
                    for (j, obs) in observations.iter().enumerate() {
                        let row = heads.row_outputs(base + j);
                        sampled.push(self.decide(obs, &row, greedy, rng));
                    }
                    results.push(GroupResult::Sampled(sampled));
                }
            }
            base += observations.len();
        }
        self.batch_scratch = Scratch(heads);
        self.pack_scratch = Scratch(batch);
        results
    }

    /// Computes the log-prob, entropy and per-head logit gradients
    /// (`coeff_logprob * dlogp/dlogits + coeff_entropy * dH/dlogits`) of a
    /// stored action under the given head outputs.
    fn log_prob_and_grads(
        &self,
        obs: &Observation,
        record: &ActionRecord,
        outputs: &HeadOutputs,
        coeff_logprob: f64,
        coeff_entropy: f64,
    ) -> (f64, f64, HeadOutputs) {
        let n = obs.num_loops;
        let m = self.env_config.num_tile_candidates();
        let mask = &obs.mask;
        let kind = TransformationKind::from_index(record.kind_index);

        let mut grads = HeadOutputs {
            transformation: vec![0.0; outputs.transformation.len()],
            tiling: vec![0.0; outputs.tiling.len()],
            parallelization: vec![0.0; outputs.parallelization.len()],
            fusion: vec![0.0; outputs.fusion.len()],
            interchange: vec![0.0; outputs.interchange.len()],
        };

        // Transformation head.
        let kind_dist =
            MaskedCategorical::new(&outputs.transformation, mask.transformation.as_ref());
        let mut log_prob = kind_dist.log_prob(record.kind_index);
        let mut entropy = kind_dist.entropy();
        let lp_grad = kind_dist.log_prob_grad(record.kind_index);
        let ent_grad = kind_dist.entropy_grad();
        for i in 0..grads.transformation.len() {
            grads.transformation[i] = coeff_logprob * lp_grad[i] + coeff_entropy * ent_grad[i];
        }

        if kind.is_tiled() && !record.tile_indices.is_empty() {
            let logits = Self::tile_head_logits(outputs, kind);
            let grad_slot: &mut Vec<f64> = match kind {
                TransformationKind::Tiling => &mut grads.tiling,
                TransformationKind::TiledParallelization => &mut grads.parallelization,
                TransformationKind::TiledFusion => &mut grads.fusion,
                _ => &mut grads.tiling,
            };
            for (level, idx) in record.tile_indices.iter().enumerate().take(n) {
                let head_level = level.min(self.env_config.max_loops - 1);
                let level_logits = &logits[head_level * m..(head_level + 1) * m];
                let level_mask = mask
                    .tile_sizes
                    .get(level)
                    .cloned()
                    .unwrap_or_else(|| vec![true; m]);
                let dist = MaskedCategorical::new(level_logits, &level_mask);
                log_prob += dist.log_prob(*idx);
                entropy += dist.entropy();
                let lp = dist.log_prob_grad(*idx);
                let eg = dist.entropy_grad();
                for j in 0..m {
                    grad_slot[head_level * m + j] += coeff_logprob * lp[j] + coeff_entropy * eg[j];
                }
            }
        } else if kind == TransformationKind::Interchange {
            match self.env_config.interchange_mode {
                InterchangeMode::EnumeratedCandidates => {
                    if let Some(c) = record.interchange_candidate {
                        let num_candidates = mask.interchange_candidates.len();
                        let len = num_candidates.min(outputs.interchange.len());
                        let dist = MaskedCategorical::new(
                            &outputs.interchange[..len],
                            &mask.interchange_candidates[..len],
                        );
                        log_prob += dist.log_prob(c);
                        entropy += dist.entropy();
                        let lp = dist.log_prob_grad(c);
                        let eg = dist.entropy_grad();
                        for j in 0..len {
                            grads.interchange[j] = coeff_logprob * lp[j] + coeff_entropy * eg[j];
                        }
                    }
                }
                InterchangeMode::LevelPointers => {
                    if let Some(perm) = &record.interchange_permutation {
                        let len = n.min(outputs.interchange.len());
                        let logits = &outputs.interchange[..len];
                        let (lp, ent, grad) = permutation_log_prob(logits, perm);
                        log_prob += lp;
                        entropy += ent;
                        for (slot, g) in grads.interchange[..len].iter_mut().zip(&grad) {
                            *slot = coeff_logprob * g + coeff_entropy * 0.0;
                        }
                    }
                }
            }
        }

        (log_prob, entropy, grads)
    }

    /// Clears gradients and cached activations of every component.
    pub fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.backbone.zero_grad();
        self.transformation_head.zero_grad();
        self.tiling_head.zero_grad();
        self.parallelization_head.zero_grad();
        self.fusion_head.zero_grad();
        self.interchange_head.zero_grad();
        self.pending_outputs.0.clear();
        self.pending_batches.0.clear();
    }

    /// All trainable parameters, in a stable order.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.lstm.parameters_mut();
        out.extend(self.backbone.parameters_mut());
        out.extend(self.transformation_head.parameters_mut());
        out.extend(self.tiling_head.parameters_mut());
        out.extend(self.parallelization_head.parameters_mut());
        out.extend(self.fusion_head.parameters_mut());
        out.extend(self.interchange_head.parameters_mut());
        out
    }
}

/// Samples a permutation from the Plackett–Luce distribution defined by the
/// per-loop scores (the level-pointer head): position by position, a loop is
/// drawn from the masked softmax over the loops not yet placed.
/// Returns the permutation, its log-probability and the summed entropy of
/// the conditional distributions.
pub fn sample_permutation<R: Rng>(
    logits: &[f64],
    greedy: bool,
    rng: &mut R,
) -> (Vec<usize>, f64, f64) {
    let n = logits.len();
    let mut remaining = vec![true; n];
    let mut permutation = Vec::with_capacity(n);
    let mut log_prob = 0.0;
    let mut entropy = 0.0;
    for _ in 0..n {
        let dist = MaskedCategorical::new(logits, &remaining);
        let choice = if greedy {
            dist.argmax()
        } else {
            dist.sample(rng)
        };
        log_prob += dist.log_prob(choice);
        entropy += dist.entropy();
        remaining[choice] = false;
        permutation.push(choice);
    }
    (permutation, log_prob, entropy)
}

/// Log-probability of a given permutation under the Plackett–Luce
/// distribution defined by `logits`, its conditional entropy, and the
/// gradient of the log-probability with respect to the logits.
pub fn permutation_log_prob(logits: &[f64], permutation: &[usize]) -> (f64, f64, Vec<f64>) {
    let n = logits.len();
    let mut remaining = vec![true; n];
    let mut log_prob = 0.0;
    let mut entropy = 0.0;
    let mut grad = vec![0.0; n];
    for &choice in permutation.iter().take(n) {
        if choice >= n || !remaining[choice] {
            // Degenerate stored permutation (should not happen); skip.
            continue;
        }
        let dist = MaskedCategorical::new(logits, &remaining);
        log_prob += dist.log_prob(choice);
        entropy += dist.entropy();
        let g = dist.log_prob_grad(choice);
        for j in 0..n {
            grad[j] += g[j];
        }
        remaining[choice] = false;
    }
    (log_prob, entropy, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::OptimizationEnv;
    use mlir_rl_ir::ModuleBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn observation() -> Observation {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 32]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        let mut env =
            OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()));
        env.reset(b.finish()).unwrap()
    }

    fn policy() -> PolicyNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        PolicyNetwork::new(EnvConfig::small(), PolicyHyperparams::default(), &mut rng)
    }

    #[test]
    fn selected_actions_respect_the_mask() {
        let obs = observation();
        let mut p = policy();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let record = p.select_action(&obs, false, &mut rng);
            let kind = TransformationKind::from_index(record.kind_index);
            assert!(obs.mask.allows(kind), "sampled a masked kind {kind}");
            assert!(record.log_prob <= 0.0);
            assert!(record.entropy >= 0.0);
            if kind.is_tiled() {
                assert_eq!(record.tile_indices.len(), obs.num_loops);
            }
        }
    }

    #[test]
    fn greedy_selection_is_deterministic() {
        let obs = observation();
        let mut p = policy();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = p.select_action(&obs, true, &mut rng);
        let b = p.select_action(&obs, true, &mut rng);
        assert_eq!(a.action, b.action);
    }

    #[test]
    fn evaluate_matches_selection_log_prob() {
        let obs = observation();
        let mut p = policy();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let record = p.select_action(&obs, false, &mut rng);
        let (log_prob, entropy) = p.evaluate(&obs, &record);
        assert!((log_prob - record.log_prob).abs() < 1e-9);
        assert!((entropy - record.entropy).abs() < 1e-9);
        p.zero_grad();
    }

    #[test]
    fn empty_batches_evaluate_to_empty_results_instead_of_panicking() {
        let mut p = policy();
        let batch = ObservationBatch::new(p.env_config().feature_len());
        assert!(p.evaluate_batch(&batch, &[]).is_empty());
        // The empty evaluate pushed nothing, so the empty backward pops
        // nothing and a subsequent real evaluate/backward pair is intact.
        p.backward_batch(&[], &[]);
        let obs = observation();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let record = p.select_action(&obs, false, &mut rng);
        let mut packed = ObservationBatch::new(p.env_config().feature_len());
        packed.push(&obs);
        let out = p.evaluate_batch(&packed, &[(&obs, &record)]);
        assert_eq!(out.len(), 1);
        p.backward_batch(&[(&obs, &record)], &[(1.0, 0.01)]);
        p.zero_grad();
    }

    #[test]
    fn infer_groups_is_bitwise_identical_to_direct_calls_and_reuses_scratch() {
        let obs = observation();
        // Mixed modes in one shared batch, decoded twice through the same
        // network so the second tick runs entirely on reused scratch
        // arenas (packed rows, step tensors, head logits).
        let make_groups = || {
            vec![
                InferenceGroup {
                    observations: vec![obs.clone(), obs.clone()],
                    mode: InferenceMode::Rank { k: 3 },
                    rng: ChaCha8Rng::seed_from_u64(21),
                },
                InferenceGroup {
                    observations: Vec::new(),
                    mode: InferenceMode::Rank { k: 2 },
                    rng: ChaCha8Rng::seed_from_u64(22),
                },
                InferenceGroup {
                    observations: vec![obs.clone()],
                    mode: InferenceMode::Sample { greedy: false },
                    rng: ChaCha8Rng::seed_from_u64(23),
                },
            ]
        };
        let mut batched_policy = policy();
        let mut first = make_groups();
        let tick_one = batched_policy.infer_groups(&mut first);
        let mut second = make_groups();
        let tick_two = batched_policy.infer_groups(&mut second);

        // Direct path: fresh policy, one call per group.
        let mut direct_policy = policy();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let direct_rank = direct_policy.rank_actions_batch(&[&obs, &obs], 3, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let direct_sample = direct_policy.select_action(&obs, false, &mut rng);

        for tick in [&tick_one, &tick_two] {
            assert_eq!(tick.len(), 3);
            match &tick[0] {
                GroupResult::Ranked(ranked) => assert_eq!(ranked, &direct_rank),
                GroupResult::Sampled(_) => panic!("rank group answered with samples"),
            }
            match &tick[1] {
                GroupResult::Ranked(ranked) => assert!(ranked.is_empty()),
                GroupResult::Sampled(_) => panic!("rank group answered with samples"),
            }
            match &tick[2] {
                GroupResult::Sampled(sampled) => {
                    assert_eq!(sampled.as_slice(), std::slice::from_ref(&direct_sample));
                }
                GroupResult::Ranked(_) => panic!("sample group answered with ranking"),
            }
        }
    }

    #[test]
    fn infer_groups_with_no_rows_returns_empty_shapes() {
        let mut p = policy();
        assert!(p.infer_groups(&mut []).is_empty());
        let mut groups = vec![InferenceGroup {
            observations: Vec::new(),
            mode: InferenceMode::Sample { greedy: true },
            rng: ChaCha8Rng::seed_from_u64(0),
        }];
        match &p.infer_groups(&mut groups)[..] {
            [GroupResult::Sampled(records)] => assert!(records.is_empty()),
            other => panic!("unexpected shape: {} results", other.len()),
        }
    }

    #[test]
    fn backward_produces_nonzero_gradients() {
        let obs = observation();
        let mut p = policy();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let record = p.select_action(&obs, false, &mut rng);
        p.evaluate(&obs, &record);
        p.backward(&obs, &record, 1.0, 0.01);
        let total_grad: f64 = p
            .parameters_mut()
            .iter()
            .map(|param| param.grad_norm_squared())
            .sum();
        assert!(total_grad > 0.0, "backward must produce gradients");
    }

    #[test]
    fn policy_gradient_step_increases_action_probability() {
        // One REINFORCE-style step on a fixed action should increase its
        // probability.
        let obs = observation();
        let mut p = policy();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let record = p.select_action(&obs, false, &mut rng);
        let before = record.log_prob;
        let mut adam = mlir_rl_nn::Adam::new(1e-2);
        for _ in 0..5 {
            p.zero_grad();
            p.evaluate(&obs, &record);
            // Maximize log-prob: gradient coefficient -1 (Adam minimizes).
            p.backward(&obs, &record, -1.0, 0.0);
            adam.step(&mut p.parameters_mut());
        }
        let (after, _) = p.evaluate(&obs, &record);
        p.zero_grad();
        assert!(
            after > before,
            "log-prob should increase after reinforcement: {before} -> {after}"
        );
    }

    #[test]
    fn plackett_luce_permutation_probabilities_sum_to_one() {
        // For 3 loops, the probabilities of all 6 permutations sum to 1.
        let logits = [0.3, -0.5, 1.1];
        let perms = [
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let total: f64 = perms
            .iter()
            .map(|p| permutation_log_prob(&logits, p).0.exp())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
    }

    #[test]
    fn permutation_log_prob_gradient_matches_finite_difference() {
        let logits = [0.2, -0.1, 0.7, 0.0];
        let perm = vec![2, 0, 3, 1];
        let (lp, _, grad) = permutation_log_prob(&logits, &perm);
        let eps = 1e-6;
        for i in 0..logits.len() {
            let mut l2 = logits.to_vec();
            l2[i] += eps;
            let (lp2, _, _) = permutation_log_prob(&l2, &perm);
            let fd = (lp2 - lp) / eps;
            assert!((fd - grad[i]).abs() < 1e-4, "i={i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn sampled_permutations_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..20 {
            let (perm, lp, ent) = sample_permutation(&[0.1, 0.2, 0.3, 0.4], false, &mut rng);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert!(lp <= 0.0);
            assert!(ent >= 0.0);
        }
    }

    #[test]
    fn enumerated_candidates_mode_works() {
        let mut config = EnvConfig::small();
        config.interchange_mode = InterchangeMode::EnumeratedCandidates;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut p = PolicyNetwork::new(config, PolicyHyperparams::default(), &mut rng);
        let obs = observation();
        // Sample until we see an interchange to exercise the candidate path.
        let mut saw_interchange = false;
        for _ in 0..200 {
            let record = p.select_action(&obs, false, &mut rng);
            if record.interchange_candidate.is_some() {
                saw_interchange = true;
                let (lp, _) = p.evaluate(&obs, &record);
                p.zero_grad();
                assert!((lp - record.log_prob).abs() < 1e-9);
                break;
            }
        }
        assert!(
            saw_interchange,
            "interchange was never sampled in 200 tries"
        );
    }

    #[test]
    fn parameter_count_is_reported() {
        let mut p = policy();
        assert!(p.num_parameters() > 10_000);
    }
}
