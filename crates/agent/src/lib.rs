//! # mlir-rl-agent
//!
//! The actor-critic agent of MLIR RL: the multi-discrete policy network
//! (producer-consumer LSTM embedding, ReLU backbone, transformation /
//! tile-size / interchange heads with level pointers), the value network,
//! the flat-action-space policy used by the Fig. 6 ablation, and the PPO
//! trainer with the paper's hyper-parameters.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_agent::{PolicyHyperparams, PpoConfig, PpoTrainer};
//! use mlir_rl_costmodel::{CostModel, MachineModel};
//! use mlir_rl_env::{EnvConfig, OptimizationEnv};
//! use mlir_rl_ir::ModuleBuilder;
//!
//! let config = EnvConfig::small();
//! let mut env = OptimizationEnv::new(config.clone(), CostModel::new(MachineModel::default()));
//! let mut trainer = PpoTrainer::new(
//!     &config,
//!     PolicyHyperparams { hidden_size: 16, backbone_layers: 1 },
//!     PpoConfig { trajectories_per_iteration: 2, minibatch_size: 4, update_epochs: 1, ..PpoConfig::paper() },
//!     0,
//! );
//!
//! let mut b = ModuleBuilder::new("m");
//! let a = b.argument("A", vec![64, 64]);
//! let w = b.argument("B", vec![64, 64]);
//! b.matmul(a, w);
//! let dataset = vec![b.finish()];
//!
//! let stats = trainer.train_iteration(&mut env, &dataset);
//! assert!(stats.mean_speedup.is_finite());
//! ```

#![warn(missing_docs)]

pub mod aggregator;
pub mod flat;
pub mod online;
pub mod policy;
pub mod ppo;
pub mod snapshot;
pub mod value;

pub use aggregator::{
    AggregatorClient, AggregatorStats, InferenceAggregator, InferenceBatching, RunGuard,
    ROWS_PER_BATCH_BUCKETS,
};
pub use flat::FlatPolicyNetwork;
pub use online::{
    greedy_geomean, Experience, ExperienceStream, OnlineTrainer, OnlineTrainerStats,
    OnlineTrainingConfig, PolicyRegistry, PolicySnapshot,
};
pub use policy::{
    permutation_log_prob, sample_permutation, ActionRecord, PolicyHyperparams, PolicyNetwork,
};
pub use ppo::{
    collect_episode, collect_rollouts, compute_gae, default_rollout_workers, episode_seed,
    GroupResult, InferenceGroup, InferenceMode, IterationStats, PolicyModel, PpoConfig, PpoTrainer,
    RolloutBatch, Trajectory, Transition,
};
pub use snapshot::{WeightSnapshot, WeightsError, WEIGHTS_MAGIC, WEIGHTS_VERSION};
pub use value::ValueNetwork;
