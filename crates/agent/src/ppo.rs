//! Proximal Policy Optimization (Sec. VII-A-5).
//!
//! One training *step* (iteration) collects trajectories from a batch of
//! code samples, computes GAE advantages (γ = 1 because rewards are delayed
//! to the end of the trajectory, λ = 0.95), and performs several epochs of
//! clipped-surrogate updates over shuffled minibatches, with a value loss
//! (coefficient 0.5) and an entropy bonus (coefficient 0.01). The paper's
//! hyper-parameters are the defaults of [`PpoConfig::paper`].
//!
//! Each minibatch is stacked into a packed
//! [`mlir_rl_env::ObservationBatch`] and pushed through the batched tensor
//! engine ([`PolicyModel::evaluate_batch`] / `backward_batch` and
//! [`ValueNetwork::forward_batch`] / `backward_batch`): one blocked matmul
//! per network layer per minibatch instead of one matvec sweep per sample,
//! bit-identical to the per-sample replay path (property-tested).
//!
//! # Rollout engine
//!
//! Episode collection is handled by [`collect_rollouts`]: every episode of
//! a batch gets its own RNG (and, when measurement noise is enabled, its
//! own noise stream) derived deterministically from a base seed and the
//! episode index. Because no state flows between episodes, the batch can be
//! fanned out across `std::thread` workers — each worker takes an
//! environment clone, an inference-only snapshot of the policy and a value
//! network clone, and collects episodes `w, w + W, w + 2W, ...` — and the
//! merged result is **bit-for-bit identical to serial collection** for a
//! fixed seed, no matter the worker count. All workers share one sharded
//! thread-shared cost-model cache (the master environment is switched to
//! shared-cache mode before the fan-out), so the parallel hit-rate matches
//! serial collection and warmth persists across iterations with no
//! fold-back step.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use mlir_rl_env::{EnvConfig, EpisodeStats, Observation, ObservationBatch, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_nn::{clip_grad_norm, Adam, Param};

use crate::policy::{rank_candidates, ActionRecord, PolicyHyperparams, PolicyNetwork};
use crate::value::ValueNetwork;

/// How one queued [`InferenceGroup`] wants its observations decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceMode {
    /// Decode like [`PolicyModel::rank_actions_batch`]: up to `k` distinct
    /// candidates per observation, greedy first.
    Rank {
        /// Candidate count per observation.
        k: usize,
    },
    /// Decode like one [`PolicyModel::select_action`] per observation, in
    /// order, threading the group RNG sequentially.
    Sample {
        /// Take the sequential argmax instead of sampling (consumes no RNG).
        greedy: bool,
    },
}

/// One unit of policy inference queued by a searcher: a set of observations
/// that must be decoded together with a single RNG threaded across them in
/// order. Groups are the unit the cross-request inference aggregator packs
/// into shared batches — a group is never split, so per-group RNG
/// consumption matches the direct call exactly.
#[derive(Debug, Clone)]
pub struct InferenceGroup {
    /// The observations to decode, in submission order.
    pub observations: Vec<Observation>,
    /// How to decode them.
    pub mode: InferenceMode,
    /// The caller's RNG, moved in with the group and returned advanced.
    pub rng: ChaCha8Rng,
}

/// The decoded result for one [`InferenceGroup`], shape matching its mode.
#[derive(Debug, Clone)]
pub enum GroupResult {
    /// Per-observation candidate lists ([`InferenceMode::Rank`]).
    Ranked(Vec<Vec<ActionRecord>>),
    /// One record per observation ([`InferenceMode::Sample`]).
    Sampled(Vec<ActionRecord>),
}

/// Abstraction over policy networks so that the same PPO trainer drives both
/// the multi-discrete policy and the flat-action-space policy of the Fig. 6
/// ablation.
///
/// `Clone + Send` is required so the rollout engine can hand each worker
/// thread an inference-only snapshot of the policy.
pub trait PolicyModel: Clone + Send {
    /// Samples (or greedily selects) an action for an observation.
    fn select_action(
        &mut self,
        obs: &Observation,
        greedy: bool,
        rng: &mut ChaCha8Rng,
    ) -> ActionRecord;
    /// Recomputes log-probability and entropy of a stored action, caching
    /// activations for [`PolicyModel::backward`].
    fn evaluate(&mut self, obs: &Observation, record: &ActionRecord) -> (f64, f64);
    /// Accumulates `coeff_logprob * dlogp/dθ + coeff_entropy * dH/dθ`.
    fn backward(
        &mut self,
        obs: &Observation,
        record: &ActionRecord,
        coeff_logprob: f64,
        coeff_entropy: f64,
    );
    /// Clears gradients and cached activations.
    fn zero_grad(&mut self);
    /// Trainable parameters in a stable order.
    fn parameters_mut(&mut self) -> Vec<&mut Param>;

    /// Batched [`PolicyModel::evaluate`] over a minibatch. `batch` must be
    /// the packed form of the items' observations in the same order (the
    /// caller packs once and shares it with the value network). The default
    /// implementation loops per sample; networks with a batched inference
    /// engine override it with one blocked matmul per layer. Overrides must
    /// stay bit-identical, entry for entry, to the per-sample loop.
    fn evaluate_batch(
        &mut self,
        batch: &ObservationBatch,
        items: &[(&Observation, &ActionRecord)],
    ) -> Vec<(f64, f64)> {
        let _ = batch;
        items
            .iter()
            .map(|(obs, record)| self.evaluate(obs, record))
            .collect()
    }

    /// Batched [`PolicyModel::backward`] for the most recent un-consumed
    /// [`PolicyModel::evaluate_batch`] call; `coeffs[i]` is
    /// `(coeff_logprob, coeff_entropy)` for item `i`. The default replays
    /// per-sample backward calls in **reverse** item order (the layer
    /// caches are stacks); overrides must accumulate gradients in exactly
    /// that order so results stay bit-identical.
    fn backward_batch(&mut self, items: &[(&Observation, &ActionRecord)], coeffs: &[(f64, f64)]) {
        for ((obs, record), (coeff_logprob, coeff_entropy)) in items.iter().zip(coeffs).rev() {
            self.backward(obs, record, *coeff_logprob, *coeff_entropy);
        }
    }

    /// Policy-inference hook for search: proposes up to `k` *distinct*
    /// candidate actions for an observation, the greedy (sequential-argmax)
    /// action first, followed by sampled candidates in descending
    /// log-probability order. Deterministic given the RNG state, and
    /// `rank_actions(obs, 1, rng)` is exactly `[select_action(obs, true)]`
    /// — which is what makes a width-1 beam search step-for-step identical
    /// to greedy decoding.
    fn rank_actions(
        &mut self,
        obs: &Observation,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<ActionRecord> {
        rank_candidates(k, rng, |greedy, rng| self.select_action(obs, greedy, rng))
    }

    /// Ranks candidates for a whole frontier of observations (the batched
    /// twin of [`PolicyModel::rank_actions`], used by beam search to score
    /// every live beam state through one forward pass). The default loops;
    /// overrides must preserve observation order and per-observation RNG
    /// consumption so results stay bit-identical to the loop.
    fn rank_actions_batch(
        &mut self,
        observations: &[&Observation],
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<ActionRecord>> {
        observations
            .iter()
            .map(|obs| self.rank_actions(obs, k, rng))
            .collect()
    }

    /// Runs a set of independent inference groups, returning one result per
    /// group in order and leaving each group's `rng` advanced exactly as
    /// the equivalent direct call would. The default decodes group by
    /// group; networks with a batched tensor engine override it to pack
    /// *all* groups' rows into one forward pass per layer — the override
    /// must stay bit-identical, row for row, to this loop (the
    /// cross-request aggregator's determinism guarantee rests on it).
    fn infer_groups(&mut self, groups: &mut [InferenceGroup]) -> Vec<GroupResult> {
        groups
            .iter_mut()
            .map(|group| {
                let InferenceGroup {
                    observations,
                    mode,
                    rng,
                } = group;
                match *mode {
                    InferenceMode::Rank { k } => {
                        let refs: Vec<&Observation> = observations.iter().collect();
                        GroupResult::Ranked(self.rank_actions_batch(&refs, k, rng))
                    }
                    InferenceMode::Sample { greedy } => GroupResult::Sampled(
                        observations
                            .iter()
                            .map(|obs| self.select_action(obs, greedy, rng))
                            .collect(),
                    ),
                }
            })
            .collect()
    }
}

impl PolicyModel for PolicyNetwork {
    fn select_action(
        &mut self,
        obs: &Observation,
        greedy: bool,
        rng: &mut ChaCha8Rng,
    ) -> ActionRecord {
        PolicyNetwork::select_action(self, obs, greedy, rng)
    }
    fn evaluate(&mut self, obs: &Observation, record: &ActionRecord) -> (f64, f64) {
        PolicyNetwork::evaluate(self, obs, record)
    }
    fn backward(
        &mut self,
        obs: &Observation,
        record: &ActionRecord,
        coeff_logprob: f64,
        coeff_entropy: f64,
    ) {
        PolicyNetwork::backward(self, obs, record, coeff_logprob, coeff_entropy);
    }
    fn zero_grad(&mut self) {
        PolicyNetwork::zero_grad(self);
    }
    fn parameters_mut(&mut self) -> Vec<&mut Param> {
        PolicyNetwork::parameters_mut(self)
    }
    fn evaluate_batch(
        &mut self,
        batch: &ObservationBatch,
        items: &[(&Observation, &ActionRecord)],
    ) -> Vec<(f64, f64)> {
        PolicyNetwork::evaluate_batch(self, batch, items)
    }
    fn backward_batch(&mut self, items: &[(&Observation, &ActionRecord)], coeffs: &[(f64, f64)]) {
        PolicyNetwork::backward_batch(self, items, coeffs);
    }
    fn rank_actions(
        &mut self,
        obs: &Observation,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<ActionRecord> {
        PolicyNetwork::rank_actions(self, obs, k, rng)
    }
    fn rank_actions_batch(
        &mut self,
        observations: &[&Observation],
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Vec<ActionRecord>> {
        PolicyNetwork::rank_actions_batch(self, observations, k, rng)
    }
    fn infer_groups(&mut self, groups: &mut [InferenceGroup]) -> Vec<GroupResult> {
        PolicyNetwork::infer_groups(self, groups)
    }
}

/// PPO hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Adam learning rate.
    pub learning_rate: f64,
    /// PPO clipping range ε.
    pub clip_range: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// GAE parameter λ.
    pub gae_lambda: f64,
    /// Trajectories (code samples) collected per iteration.
    pub trajectories_per_iteration: usize,
    /// Minibatch size for the update epochs.
    pub minibatch_size: usize,
    /// Number of update epochs per iteration.
    pub update_epochs: usize,
    /// Value-loss coefficient.
    pub value_coef: f64,
    /// Entropy-bonus coefficient.
    pub entropy_coef: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f64,
    /// Worker threads used by the rollout engine (1 = collect in the
    /// calling thread). Collection is deterministic in the seed regardless
    /// of this value.
    pub rollout_workers: usize,
}

impl PpoConfig {
    /// The paper's training configuration (Sec. VII-A-5).
    pub fn paper() -> Self {
        Self {
            learning_rate: 1e-3,
            clip_range: 0.2,
            gamma: 1.0,
            gae_lambda: 0.95,
            trajectories_per_iteration: 64,
            minibatch_size: 32,
            update_epochs: 4,
            value_coef: 0.5,
            entropy_coef: 0.01,
            max_grad_norm: 0.5,
            rollout_workers: 1,
        }
    }

    /// Returns the configuration with the given rollout worker count.
    pub fn with_rollout_workers(mut self, workers: usize) -> Self {
        self.rollout_workers = workers.max(1);
        self
    }

    /// A scaled-down configuration for tests and the benchmark harness.
    pub fn small() -> Self {
        Self {
            trajectories_per_iteration: 8,
            minibatch_size: 8,
            ..Self::paper()
        }
    }
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One stored environment transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// The observation the action was taken in.
    pub observation: Observation,
    /// The sampled action with its old log-probability.
    pub record: ActionRecord,
    /// Reward received after the action.
    pub reward: f64,
    /// Value estimate of the observation at collection time.
    pub value: f64,
    /// Whether the episode ended after this transition.
    pub done: bool,
}

/// One collected episode.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The transitions of the episode, in order.
    pub transitions: Vec<Transition>,
    /// Episode statistics (speedup, evaluations, ...).
    pub stats: EpisodeStats,
}

/// Collects one episode on `module` with the given policy and value
/// networks.
pub fn collect_episode<P: PolicyModel>(
    env: &mut OptimizationEnv,
    module: &Module,
    policy: &mut P,
    value: &mut ValueNetwork,
    greedy: bool,
    rng: &mut ChaCha8Rng,
) -> Trajectory {
    let mut transitions = Vec::new();
    let mut obs = env.reset(module.clone());
    // Guard against malformed modules producing endless episodes.
    let max_steps = (module.ops().len() + 1) * (env.config().max_schedule_len + 3);
    let mut steps = 0;
    while let Some(current) = obs {
        let record = policy.select_action(&current, greedy, rng);
        let v = value.predict_fast(&current);
        let outcome = env.step(&record.action);
        transitions.push(Transition {
            observation: current,
            record,
            reward: outcome.reward,
            value: v,
            done: outcome.done,
        });
        obs = outcome.observation;
        steps += 1;
        if steps > max_steps {
            break;
        }
    }
    let stats = env.stats();
    Trajectory { transitions, stats }
}

/// Mixes a base seed and an episode index into an independent 64-bit seed
/// (SplitMix64 finalizer), so every episode of a rollout batch gets its own
/// deterministic RNG stream.
pub fn episode_seed(base: u64, episode: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(episode.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The number of rollout workers matching the machine's available
/// parallelism (fallback 1).
pub fn default_rollout_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One collected batch of episodes plus aggregate cost-model accounting.
#[derive(Debug, Clone)]
pub struct RolloutBatch {
    /// Collected trajectories, in episode order (independent of worker
    /// count).
    pub trajectories: Vec<Trajectory>,
    /// Cost-model evaluations actually performed (cache misses).
    pub evaluations: usize,
    /// Evaluation requests served by the schedule-keyed cache.
    pub cache_hits: usize,
}

impl RolloutBatch {
    /// Total environment steps across the batch.
    pub fn total_steps(&self) -> usize {
        self.trajectories.iter().map(|t| t.stats.steps).sum()
    }

    /// Fraction of evaluation requests served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.total_lookups();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total cost-model lookups of the batch
    /// (`evaluations + cache_hits`, the sum of the per-episode
    /// [`EpisodeStats::total_lookups`]).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }
}

/// Collects one episode with a per-episode RNG (and noise stream) derived
/// from `(base_seed, episode)`, making the episode independent of whatever
/// was collected before it.
fn collect_seeded_episode<P: PolicyModel>(
    env: &mut OptimizationEnv,
    module: &Module,
    policy: &mut P,
    value: &mut ValueNetwork,
    greedy: bool,
    base_seed: u64,
    episode: usize,
) -> Trajectory {
    let mut rng = ChaCha8Rng::seed_from_u64(episode_seed(base_seed, episode as u64));
    if let Some(noise_seed) = env.config().noise_seed {
        env.reseed_noise(episode_seed(
            noise_seed.wrapping_add(base_seed),
            episode as u64,
        ));
    }
    collect_episode(env, module, policy, value, greedy, &mut rng)
}

/// Collects `modules.len()` episodes, fanning them out over `workers`
/// threads.
///
/// Worker `w` collects episodes `w, w + W, w + 2W, ...` on its own clones
/// of the environment, an inference-only snapshot of the policy, and the
/// value network; results are merged back in episode order. Every episode's
/// randomness comes from [`episode_seed`]`(base_seed, episode)`, so a fixed
/// `base_seed` produces bit-for-bit identical trajectories for any worker
/// count — `workers == 1` *is* serial collection.
///
/// When fanning out over more than one worker, the master environment's
/// evaluation cache is switched to the sharded thread-shared backend
/// ([`OptimizationEnv::enable_shared_cache`]) first, so worker environments
/// are handles onto *one* table: every estimate is computed at most once
/// per batch (modulo benign races) and the warm table persists across
/// batches with no fold-back step. Serial collection keeps the lock-free
/// local table (an already-shared cache stays shared). Because cached
/// values are deterministic functions of the schedule, the backend affects
/// only hit/miss counts, never the collected trajectories.
pub fn collect_rollouts<P: PolicyModel>(
    env: &mut OptimizationEnv,
    modules: &[&Module],
    policy: &mut P,
    value: &mut ValueNetwork,
    greedy: bool,
    base_seed: u64,
    workers: usize,
) -> RolloutBatch {
    let n = modules.len();
    let workers = workers.max(1).min(n.max(1));
    let mut slots: Vec<Option<Trajectory>> = (0..n).map(|_| None).collect();

    if workers <= 1 {
        // Serial collection stays on the cache's current backend — the
        // local two-level table needs no locks.
        for (episode, slot) in slots.iter_mut().enumerate() {
            *slot = Some(collect_seeded_episode(
                env,
                modules[episode],
                policy,
                value,
                greedy,
                base_seed,
                episode,
            ));
        }
    } else {
        // Parallel collection goes through one sharded thread-shared
        // evaluation cache: worker clones taken below are handles onto the
        // same table, so an estimate computed by any worker serves hits to
        // every other worker within the same batch — the parallel hit-rate
        // matches serial collection instead of every worker re-discovering
        // the same schedules on a cold clone.
        env.enable_shared_cache();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let mut worker_env = env.clone();
                let mut worker_policy = policy.clone();
                let mut worker_value = value.clone();
                handles.push(scope.spawn(move || {
                    let mut collected = Vec::new();
                    let mut episode = worker;
                    while episode < n {
                        collected.push((
                            episode,
                            collect_seeded_episode(
                                &mut worker_env,
                                modules[episode],
                                &mut worker_policy,
                                &mut worker_value,
                                greedy,
                                base_seed,
                                episode,
                            ),
                        ));
                        episode += workers;
                    }
                    collected
                }));
            }
            for handle in handles {
                for (episode, trajectory) in handle.join().expect("rollout worker panicked") {
                    slots[episode] = Some(trajectory);
                }
            }
        });
    }

    // Leave the master environment's noise stream in a canonical post-batch
    // state: serial collection consumed it episode by episode while parallel
    // collection only consumed worker clones' streams, so without this the
    // master's later measurements would depend on the worker count.
    if let Some(noise_seed) = env.config().noise_seed {
        env.reseed_noise(episode_seed(noise_seed.wrapping_add(base_seed), n as u64));
    }

    let trajectories: Vec<Trajectory> = slots
        .into_iter()
        .map(|t| t.expect("every episode was assigned to a worker"))
        .collect();
    let evaluations = trajectories.iter().map(|t| t.stats.evaluations).sum();
    let cache_hits = trajectories.iter().map(|t| t.stats.cache_hits).sum();
    RolloutBatch {
        trajectories,
        evaluations,
        cache_hits,
    }
}

/// Computes GAE advantages and returns (targets for the value function) for
/// one trajectory.
pub fn compute_gae(trajectory: &Trajectory, gamma: f64, lambda: f64) -> (Vec<f64>, Vec<f64>) {
    let n = trajectory.transitions.len();
    let mut advantages = vec![0.0; n];
    let mut returns = vec![0.0; n];
    let mut gae = 0.0;
    for i in (0..n).rev() {
        let t = &trajectory.transitions[i];
        let next_value = if t.done || i + 1 >= n {
            0.0
        } else {
            trajectory.transitions[i + 1].value
        };
        let delta = t.reward + gamma * next_value - t.value;
        gae = delta + gamma * lambda * if t.done { 0.0 } else { gae };
        advantages[i] = gae;
        returns[i] = advantages[i] + t.value;
    }
    (advantages, returns)
}

/// Statistics of one PPO training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Arithmetic mean of the episode speedups over the baseline.
    pub mean_speedup: f64,
    /// Geometric mean of the episode speedups.
    pub geomean_speedup: f64,
    /// Mean episode reward (sum of step rewards).
    pub mean_reward: f64,
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f64,
    /// Mean value loss.
    pub value_loss: f64,
    /// Mean policy entropy.
    pub entropy: f64,
    /// Cost-model evaluations performed while collecting this iteration
    /// (the execution count that dominates wall-clock time, Fig. 7).
    pub evaluations: usize,
    /// Cumulative evaluations since training started.
    pub cumulative_evaluations: usize,
    /// Evaluation requests served by the schedule-keyed cost-model cache
    /// while collecting this iteration.
    pub cache_hits: usize,
}

impl IterationStats {
    /// Total cost-model lookups of the iteration's collection phase
    /// (`evaluations + cache_hits`).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }
}

/// The PPO trainer: owns the policy, the value network and their optimizers.
#[derive(Debug)]
pub struct PpoTrainer<P: PolicyModel> {
    /// The actor.
    pub policy: P,
    /// The critic.
    pub value: ValueNetwork,
    config: PpoConfig,
    policy_optimizer: Adam,
    value_optimizer: Adam,
    rng: ChaCha8Rng,
    history: Vec<IterationStats>,
    cumulative_evaluations: usize,
}

impl PpoTrainer<PolicyNetwork> {
    /// Creates a trainer with the standard multi-discrete policy network.
    pub fn new(
        env_config: &EnvConfig,
        hyper: PolicyHyperparams,
        config: PpoConfig,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let policy = PolicyNetwork::new(env_config.clone(), hyper, &mut rng);
        let value = ValueNetwork::new(env_config, hyper, &mut rng);
        Self::with_policy(policy, value, config, rng)
    }
}

impl<P: PolicyModel> PpoTrainer<P> {
    /// Creates a trainer around an existing policy/value pair (used by the
    /// flat-action-space ablation).
    pub fn with_policy(policy: P, value: ValueNetwork, config: PpoConfig, rng: ChaCha8Rng) -> Self {
        Self {
            policy,
            value,
            policy_optimizer: Adam::new(config.learning_rate),
            value_optimizer: Adam::new(config.learning_rate),
            config,
            rng,
            history: Vec::new(),
            cumulative_evaluations: 0,
        }
    }

    /// The PPO configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Per-iteration training statistics collected so far.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// Runs one PPO iteration: collects trajectories over modules drawn
    /// round-robin from `dataset` and performs the update epochs.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` is empty.
    pub fn train_iteration(
        &mut self,
        env: &mut OptimizationEnv,
        dataset: &[Module],
    ) -> IterationStats {
        assert!(!dataset.is_empty(), "training dataset must not be empty");
        let iteration = self.history.len();

        // --- Collect ------------------------------------------------------
        let modules: Vec<&Module> = (0..self.config.trajectories_per_iteration)
            .map(|i| {
                &dataset[(iteration * self.config.trajectories_per_iteration + i) % dataset.len()]
            })
            .collect();
        let base_seed = self.rng.gen::<u64>();
        let batch_result = collect_rollouts(
            env,
            &modules,
            &mut self.policy,
            &mut self.value,
            false,
            base_seed,
            self.config.rollout_workers,
        );
        let evaluations = batch_result.evaluations;
        let cache_hits = batch_result.cache_hits;
        let trajectories = batch_result.trajectories;

        // --- Advantages ---------------------------------------------------
        // The batch borrows observations/records from the trajectories; no
        // per-transition clones are made.
        let mut batch: Vec<(&Observation, &ActionRecord, f64, f64)> = Vec::new();
        for traj in &trajectories {
            let (advantages, returns) =
                compute_gae(traj, self.config.gamma, self.config.gae_lambda);
            for (i, t) in traj.transitions.iter().enumerate() {
                batch.push((&t.observation, &t.record, advantages[i], returns[i]));
            }
        }
        // Normalize advantages across the batch.
        let mean_adv = batch.iter().map(|b| b.2).sum::<f64>() / batch.len().max(1) as f64;
        let var_adv =
            batch.iter().map(|b| (b.2 - mean_adv).powi(2)).sum::<f64>() / batch.len().max(1) as f64;
        let std_adv = var_adv.sqrt().max(1e-8);
        for b in &mut batch {
            b.2 = (b.2 - mean_adv) / std_adv;
        }

        // --- Update -------------------------------------------------------
        let mut policy_loss_acc = 0.0;
        let mut value_loss_acc = 0.0;
        let mut entropy_acc = 0.0;
        let mut updates = 0usize;
        for _epoch in 0..self.config.update_epochs {
            let mut indices: Vec<usize> = (0..batch.len()).collect();
            indices.shuffle(&mut self.rng);
            for chunk in indices.chunks(self.config.minibatch_size.max(1)) {
                self.policy.zero_grad();
                self.value.zero_grad();
                let scale = 1.0 / chunk.len() as f64;
                // Pass 1: the whole minibatch goes through ONE batched
                // forward per layer (policy heads and value head) instead
                // of one matvec sweep per sample; the stacked activations
                // mean the backward pass never re-runs the forward network.
                let items: Vec<(&Observation, &ActionRecord)> = chunk
                    .iter()
                    .map(|&idx| (batch[idx].0, batch[idx].1))
                    .collect();
                // Packed once, shared by the policy and the value network.
                let obs_batch =
                    ObservationBatch::from_observations(items.iter().map(|(obs, _)| *obs));
                let evals = self.policy.evaluate_batch(&obs_batch, &items);
                let values = self.value.forward_batch(&obs_batch);
                let mut policy_coeffs: Vec<(f64, f64)> = Vec::with_capacity(chunk.len());
                let mut value_grads: Vec<f64> = Vec::with_capacity(chunk.len());
                for ((&idx, &(log_prob, entropy)), &v) in chunk.iter().zip(&evals).zip(&values) {
                    let (_, record, advantage, ret) = &batch[idx];
                    // Policy: clipped surrogate objective.
                    let ratio = (log_prob - record.log_prob).exp();
                    let clipped =
                        ratio.clamp(1.0 - self.config.clip_range, 1.0 + self.config.clip_range);
                    let surrogate = (ratio * advantage).min(clipped * advantage);
                    policy_loss_acc += -surrogate;
                    entropy_acc += entropy;
                    // Gradient of the loss w.r.t. log_prob: the surrogate is
                    // active only when the un-clipped branch is selected.
                    let use_unclipped = (ratio * advantage) <= (clipped * advantage) + 1e-12;
                    let dl_dlogp = if use_unclipped {
                        -advantage * ratio
                    } else {
                        0.0
                    };

                    // Value: squared-error loss.
                    let v_err = v - ret;
                    value_loss_acc += 0.5 * v_err * v_err;
                    policy_coeffs.push((dl_dlogp * scale, -self.config.entropy_coef * scale));
                    value_grads.push(self.config.value_coef * v_err * scale);
                    updates += 1;
                }
                // Pass 2: one batched backward per layer, accumulating
                // parameter gradients in reverse sample order — bit-identical
                // to replaying per-sample backward calls against the stacks.
                self.policy.backward_batch(&items, &policy_coeffs);
                self.value.backward_batch(&value_grads);
                clip_grad_norm(&mut self.policy.parameters_mut(), self.config.max_grad_norm);
                clip_grad_norm(&mut self.value.parameters_mut(), self.config.max_grad_norm);
                self.policy_optimizer
                    .step(&mut self.policy.parameters_mut());
                self.value_optimizer.step(&mut self.value.parameters_mut());
            }
        }

        // --- Stats ----------------------------------------------------------
        let n_traj = trajectories.len() as f64;
        let mean_speedup = trajectories.iter().map(|t| t.stats.speedup).sum::<f64>() / n_traj;
        let geomean_speedup = (trajectories
            .iter()
            .map(|t| t.stats.speedup.max(1e-12).ln())
            .sum::<f64>()
            / n_traj)
            .exp();
        let mean_reward = trajectories
            .iter()
            .map(|t| t.transitions.iter().map(|tr| tr.reward).sum::<f64>())
            .sum::<f64>()
            / n_traj;
        self.cumulative_evaluations += evaluations;
        let stats = IterationStats {
            iteration,
            mean_speedup,
            geomean_speedup,
            mean_reward,
            policy_loss: policy_loss_acc / updates.max(1) as f64,
            value_loss: value_loss_acc / updates.max(1) as f64,
            entropy: entropy_acc / updates.max(1) as f64,
            evaluations,
            cumulative_evaluations: self.cumulative_evaluations,
            cache_hits,
        };
        self.history.push(stats);
        stats
    }

    /// Runs `iterations` PPO iterations and returns the full history.
    pub fn train(
        &mut self,
        env: &mut OptimizationEnv,
        dataset: &[Module],
        iterations: usize,
    ) -> Vec<IterationStats> {
        for _ in 0..iterations {
            self.train_iteration(env, dataset);
        }
        self.history.clone()
    }

    /// Greedily optimizes each module with the current policy and returns
    /// the per-module episode statistics.
    pub fn evaluate(&mut self, env: &mut OptimizationEnv, modules: &[Module]) -> Vec<EpisodeStats> {
        modules
            .iter()
            .map(|m| {
                collect_episode(
                    env,
                    m,
                    &mut self.policy,
                    &mut self.value,
                    true,
                    &mut self.rng,
                )
                .stats
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::EnvConfig;
    use mlir_rl_ir::ModuleBuilder;

    fn small_dataset() -> Vec<Module> {
        let mut out = Vec::new();
        for (m, n, k) in [(64, 64, 64), (128, 64, 32), (32, 128, 64)] {
            let mut b = ModuleBuilder::new(format!("mm_{m}x{n}x{k}"));
            let a = b.argument("A", vec![m, k]);
            let w = b.argument("B", vec![k, n]);
            let mm = b.matmul(a, w);
            b.relu(mm);
            out.push(b.finish());
        }
        out
    }

    fn env() -> OptimizationEnv {
        OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()))
    }

    fn tiny_ppo() -> PpoConfig {
        PpoConfig {
            trajectories_per_iteration: 3,
            minibatch_size: 4,
            update_epochs: 2,
            ..PpoConfig::paper()
        }
    }

    /// Builds a fresh deterministic (env, trainer) pair for the rollout
    /// engine tests.
    fn engine_fixture(seed: u64) -> (OptimizationEnv, PpoTrainer<PolicyNetwork>) {
        let hyper = PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        };
        (
            env(),
            PpoTrainer::new(&EnvConfig::small(), hyper, tiny_ppo(), seed),
        )
    }

    fn assert_trajectories_identical(a: &[Trajectory], b: &[Trajectory]) {
        assert_eq!(a.len(), b.len(), "trajectory counts differ");
        for (ta, tb) in a.iter().zip(b) {
            assert_eq!(ta.transitions.len(), tb.transitions.len());
            for (x, y) in ta.transitions.iter().zip(&tb.transitions) {
                assert_eq!(x.observation, y.observation);
                assert_eq!(x.record, y.record);
                assert_eq!(x.reward, y.reward, "rewards must match bit-for-bit");
                assert_eq!(x.value, y.value, "value estimates must match bit-for-bit");
                assert_eq!(x.done, y.done);
            }
            // Performance-relevant stats are identical; cache accounting may
            // differ (worker caches start cold on their own slice).
            assert_eq!(ta.stats.baseline_s, tb.stats.baseline_s);
            assert_eq!(ta.stats.final_s, tb.stats.final_s);
            assert_eq!(ta.stats.speedup, tb.stats.speedup);
            assert_eq!(ta.stats.steps, tb.stats.steps);
        }
    }

    #[test]
    fn parallel_rollouts_match_serial_bit_for_bit() {
        let dataset = small_dataset();
        // Collect each module twice so the batch is bigger than the worker
        // count and strides interleave.
        let modules: Vec<&Module> = dataset.iter().chain(dataset.iter()).collect();

        let (mut env_serial, mut trainer_serial) = engine_fixture(99);
        let serial = collect_rollouts(
            &mut env_serial,
            &modules,
            &mut trainer_serial.policy,
            &mut trainer_serial.value,
            false,
            4242,
            1,
        );

        for workers in [2, 4] {
            let (mut env_par, mut trainer_par) = engine_fixture(99);
            let parallel = collect_rollouts(
                &mut env_par,
                &modules,
                &mut trainer_par.policy,
                &mut trainer_par.value,
                false,
                4242,
                workers,
            );
            assert_trajectories_identical(&serial.trajectories, &parallel.trajectories);
        }
    }

    #[test]
    fn parallel_rollouts_with_noise_match_serial() {
        use mlir_rl_costmodel::{CostModel, MachineModel};
        let mut config = EnvConfig::small();
        config.noise_seed = Some(11);
        let build = || {
            let env = OptimizationEnv::new(config.clone(), CostModel::new(MachineModel::default()));
            let hyper = PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            };
            let trainer = PpoTrainer::new(&config, hyper, tiny_ppo(), 5);
            (env, trainer)
        };
        let dataset = small_dataset();
        let modules: Vec<&Module> = dataset.iter().collect();
        let (mut env_a, mut tr_a) = build();
        let (mut env_b, mut tr_b) = build();
        let serial = collect_rollouts(
            &mut env_a,
            &modules,
            &mut tr_a.policy,
            &mut tr_a.value,
            false,
            7,
            1,
        );
        let parallel = collect_rollouts(
            &mut env_b,
            &modules,
            &mut tr_b.policy,
            &mut tr_b.value,
            false,
            7,
            3,
        );
        assert_trajectories_identical(&serial.trajectories, &parallel.trajectories);
    }

    #[test]
    fn rollout_batch_reports_cache_hits() {
        // Collecting the same module repeatedly must hit the schedule cache
        // (at minimum, every episode's baseline after the first).
        let dataset = small_dataset();
        let modules: Vec<&Module> = std::iter::repeat_n(&dataset[0], 6).collect();
        let (mut env, mut trainer) = engine_fixture(3);
        let batch = collect_rollouts(
            &mut env,
            &modules,
            &mut trainer.policy,
            &mut trainer.value,
            false,
            1,
            1,
        );
        assert_eq!(batch.trajectories.len(), 6);
        assert!(
            batch.cache_hits > 0,
            "repeated schedules must hit the cache"
        );
        assert!(
            batch.evaluations > 0,
            "novel schedules must still be evaluated"
        );
        assert!(batch.cache_hit_rate() > 0.0 && batch.cache_hit_rate() < 1.0);
        assert!(batch.total_steps() > 0);
    }

    #[test]
    fn parallel_collection_warms_the_master_cache() {
        let dataset = small_dataset();
        let modules: Vec<&Module> = dataset.iter().collect();
        let (mut env, mut trainer) = engine_fixture(8);
        assert!(env.cache().is_empty());
        collect_rollouts(
            &mut env,
            &modules,
            &mut trainer.policy,
            &mut trainer.value,
            false,
            21,
            2,
        );
        // Workers are handles onto the master's shared table, so their
        // entries are visible to the master with no fold-back step.
        assert!(
            env.cache().is_shared(),
            "collection must switch the cache to the shared backend"
        );
        assert!(
            !env.cache().is_empty(),
            "parallel collection must warm the master cache"
        );
    }

    #[test]
    fn shared_cache_makes_parallel_hit_rate_match_serial() {
        let dataset = small_dataset();
        let modules: Vec<&Module> = dataset.iter().chain(dataset.iter()).collect();
        let (mut env_serial, mut tr_serial) = engine_fixture(13);
        let serial = collect_rollouts(
            &mut env_serial,
            &modules,
            &mut tr_serial.policy,
            &mut tr_serial.value,
            false,
            5150,
            1,
        );
        let (mut env_par, mut tr_par) = engine_fixture(13);
        let parallel = collect_rollouts(
            &mut env_par,
            &modules,
            &mut tr_par.policy,
            &mut tr_par.value,
            false,
            5150,
            3,
        );
        // Identical trajectories -> identical lookup sequences.
        assert_eq!(serial.total_lookups(), parallel.total_lookups());
        // Serial evaluates each distinct schedule exactly once; sharing one
        // table means parallel can only lose the few hits that race (two
        // workers missing the same key concurrently), never a cold-clone's
        // worth.
        assert!(parallel.cache_hits <= serial.cache_hits);
        assert!(
            parallel.cache_hit_rate() >= 0.9 * serial.cache_hit_rate(),
            "parallel hit-rate {} must stay at the serial level {}",
            parallel.cache_hit_rate(),
            serial.cache_hit_rate()
        );
    }

    #[test]
    fn iteration_stats_lookup_accounting_is_consistent() {
        let mut env = env();
        let hyper = PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        };
        let mut trainer = PpoTrainer::new(&EnvConfig::small(), hyper, tiny_ppo(), 6);
        let stats = trainer.train_iteration(&mut env, &small_dataset());
        assert_eq!(stats.total_lookups(), stats.evaluations + stats.cache_hits);
        // The iteration's counters are the sum of the per-episode counters,
        // which are themselves hit/miss classifications of every lookup.
        assert!(stats.total_lookups() > 0);
    }

    #[test]
    fn rank_actions_returns_greedy_first_then_distinct_sorted_candidates() {
        let (mut env, mut trainer) = engine_fixture(4);
        let obs = env.reset(small_dataset()[0].clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let greedy = trainer.policy.select_action(&obs, true, &mut rng);

        let mut rng1 = ChaCha8Rng::seed_from_u64(77);
        let one = trainer.policy.rank_actions(&obs, 1, &mut rng1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].action, greedy.action, "k = 1 is exactly greedy");

        let mut rng2 = ChaCha8Rng::seed_from_u64(77);
        let many = trainer.policy.rank_actions(&obs, 6, &mut rng2);
        assert!(!many.is_empty() && many.len() <= 6);
        assert_eq!(many[0].action, greedy.action, "greedy always leads");
        for (i, a) in many.iter().enumerate() {
            for b in &many[i + 1..] {
                assert_ne!(a.action, b.action, "candidates must be distinct");
            }
        }
        for pair in many[1..].windows(2) {
            assert!(
                pair[0].log_prob >= pair[1].log_prob,
                "tail sorted by log-prob"
            );
        }
        // Deterministic in the RNG seed.
        let mut rng3 = ChaCha8Rng::seed_from_u64(77);
        let again = trainer.policy.rank_actions(&obs, 6, &mut rng3);
        assert_eq!(many.len(), again.len());
        for (a, b) in many.iter().zip(&again) {
            assert_eq!(a.action, b.action);
        }
    }

    #[test]
    fn episode_seed_is_injective_enough() {
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for ep in 0..64u64 {
                assert!(seen.insert(episode_seed(base, ep)), "seed collision");
            }
        }
    }

    #[test]
    fn paper_config_matches_section_7a5() {
        let c = PpoConfig::paper();
        assert_eq!(c.learning_rate, 1e-3);
        assert_eq!(c.clip_range, 0.2);
        assert_eq!(c.gamma, 1.0);
        assert_eq!(c.gae_lambda, 0.95);
        assert_eq!(c.trajectories_per_iteration, 64);
        assert_eq!(c.minibatch_size, 32);
        assert_eq!(c.update_epochs, 4);
        assert_eq!(c.value_coef, 0.5);
        assert_eq!(c.entropy_coef, 0.01);
    }

    #[test]
    fn collect_episode_produces_consistent_trajectory() {
        let mut env = env();
        let hyper = PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        };
        let mut trainer = PpoTrainer::new(&EnvConfig::small(), hyper, tiny_ppo(), 0);
        let module = &small_dataset()[0];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let traj = collect_episode(
            &mut env,
            module,
            &mut trainer.policy,
            &mut trainer.value,
            false,
            &mut rng,
        );
        assert!(!traj.transitions.is_empty());
        assert!(traj.transitions.last().unwrap().done);
        assert!(traj.stats.speedup > 0.0);
        // Final-reward mode: every non-terminal reward is 0.
        for t in &traj.transitions[..traj.transitions.len() - 1] {
            assert_eq!(t.reward, 0.0);
        }
    }

    #[test]
    fn gae_with_gamma_one_final_reward_gives_uniform_advantage_signal() {
        // A hand-built trajectory: zero rewards then a final reward of 2,
        // zero value estimates everywhere -> every return equals 2.
        let obs_placeholder = || Observation {
            consumer: vec![0.0],
            producer: vec![0.0],
            mask: mlir_rl_env::ActionMask {
                transformation: [true; 6],
                tile_sizes: vec![],
                interchange_candidates: vec![true],
                level_pointer: vec![true],
            },
            num_loops: 1,
            op: mlir_rl_ir::OpId(0),
        };
        let record = ActionRecord {
            action: mlir_rl_env::Action::NoTransformation,
            kind_index: 5,
            tile_indices: vec![],
            interchange_candidate: None,
            interchange_permutation: None,
            log_prob: -1.0,
            entropy: 0.5,
        };
        let traj = Trajectory {
            transitions: (0..3)
                .map(|i| Transition {
                    observation: obs_placeholder(),
                    record: record.clone(),
                    reward: if i == 2 { 2.0 } else { 0.0 },
                    value: 0.0,
                    done: i == 2,
                })
                .collect(),
            stats: EpisodeStats {
                baseline_s: 1.0,
                final_s: 1.0,
                speedup: 1.0,
                steps: 3,
                evaluations: 1,
                cache_hits: 0,
            },
        };
        let (adv, ret) = compute_gae(&traj, 1.0, 0.95);
        assert_eq!(ret.len(), 3);
        // With zero values, returns are the discounted-lambda future reward.
        assert!(ret[2] > 1.99);
        assert!(adv[0] > 0.0 && adv[1] > 0.0 && adv[2] > 0.0);
        assert!(adv[2] >= adv[0], "later steps are closer to the reward");
    }

    #[test]
    fn training_iteration_runs_and_records_stats() {
        let mut env = env();
        let hyper = PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        };
        let mut trainer = PpoTrainer::new(&EnvConfig::small(), hyper, tiny_ppo(), 42);
        let dataset = small_dataset();
        let stats = trainer.train_iteration(&mut env, &dataset);
        assert_eq!(stats.iteration, 0);
        assert!(stats.mean_speedup.is_finite());
        assert!(stats.value_loss >= 0.0);
        assert!(stats.entropy >= 0.0);
        assert!(stats.evaluations > 0);
        assert_eq!(trainer.history().len(), 1);
    }

    #[test]
    fn short_training_improves_mean_speedup() {
        // With a tiny network and a small dataset, a handful of iterations
        // should already push the policy toward profitable schedules
        // (parallelization alone is a large win).
        let mut env = env();
        let hyper = PolicyHyperparams {
            hidden_size: 24,
            backbone_layers: 1,
        };
        let mut trainer = PpoTrainer::new(&EnvConfig::small(), hyper, tiny_ppo(), 7);
        let dataset = small_dataset();
        let history = trainer.train(&mut env, &dataset, 6);
        let first = history.first().unwrap().geomean_speedup;
        let best_late = history[2..]
            .iter()
            .map(|s| s.geomean_speedup)
            .fold(f64::MIN, f64::max);
        assert!(
            best_late > first * 0.8,
            "training must not collapse: first {first}, best later {best_late}"
        );
        // Greedy evaluation after training produces finite speedups.
        let eval = trainer.evaluate(&mut env, &dataset);
        assert_eq!(eval.len(), dataset.len());
        assert!(eval
            .iter()
            .all(|e| e.speedup.is_finite() && e.speedup > 0.0));
    }
}
