//! Online learning: experience feedback from served traffic plus a
//! versioned hot policy swap.
//!
//! Three pieces close the serving → training loop:
//!
//! * [`ExperienceStream`] — a bounded lock-free multi-producer queue the
//!   service's workers feed on every `Completed` response. Producers never
//!   block: a full ring drops the experience and bumps a counter, so the
//!   serving hot path pays one branch (and nothing at all when online
//!   training is disabled).
//! * [`OnlineTrainer`] — a background thread that drains experiences into
//!   replay batches and runs PPO iterations against a *private* policy
//!   clone, in a private environment with its own evaluation cache, so
//!   training never perturbs serving metrics.
//! * [`PolicyRegistry`] — double-buffered `Arc` snapshots with a
//!   monotonically increasing version. Workers check out the current
//!   snapshot per run; the trainer builds the next snapshot off to the
//!   side and atomically swaps the publication slot. A request admitted
//!   under version `v` finishes under version `v` no matter how many swaps
//!   happen while it is queued or running.
//!
//! # Promotion gate
//!
//! By default the trainer only publishes a candidate that is at least as
//! good as the incumbent: both are greedy-decoded over the probe set (the
//! distinct modules seen in served traffic) and scored through the
//! noise-free cache peek — exactly how the `greedy` searcher scores served
//! requests — and the candidate is published iff its geometric-mean
//! speedup is `>=` the incumbent's. Publishing on *equality* matters: a
//! single PPO step rarely changes the argmax decode, and version bumps
//! must still flow so per-version determinism stays observable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mlir_rl_env::{Action, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_obs::{EventKind, ProbeRef};

use crate::policy::PolicyNetwork;
use crate::ppo::{PpoConfig, PpoTrainer};
use crate::value::ValueNetwork;

// ---------------------------------------------------------------------------
// Experience
// ---------------------------------------------------------------------------

/// One served optimization outcome, as fed back into training.
#[derive(Debug, Clone)]
pub struct Experience {
    /// The module the request optimized (the training dataset is the
    /// workload the service actually sees).
    pub module: Module,
    /// Structural fingerprint of `module`
    /// (`mlir_rl_costmodel::module_fingerprint`), used to deduplicate the
    /// replay batch and bound the probe set.
    pub module_fingerprint: u64,
    /// Name of the searcher that produced the outcome.
    pub searcher: String,
    /// The request seed.
    pub seed: u64,
    /// The best action trace found while serving the request.
    pub actions: Vec<Action>,
    /// The speedup of that trace over the baseline.
    pub speedup: f64,
    /// The policy version the request ran under.
    pub policy_version: u64,
}

// ---------------------------------------------------------------------------
// ExperienceStream
// ---------------------------------------------------------------------------

/// One ring slot. The sequence number implements the classic bounded-MPMC
/// handshake (Vyukov): a slot is writable when `seq == pos` and readable
/// when `seq == pos + 1`. The handshake guarantees exactly one thread
/// touches `value` at a time, so the per-slot mutex below is never
/// contended — it exists to keep the crate `unsafe`-free, not to
/// serialize anything.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    value: Mutex<Option<Experience>>,
}

/// A bounded lock-free multi-producer/multi-consumer experience queue.
///
/// `push` never blocks and never spins on a full ring: it drops the
/// experience and bumps [`ExperienceStream::dropped`]. Capacity is rounded
/// up to a power of two.
#[derive(Debug)]
pub struct ExperienceStream {
    slots: Box<[Slot]>,
    mask: u64,
    enqueue: AtomicU64,
    dequeue: AtomicU64,
    accepted: AtomicU64,
    dropped: AtomicU64,
}

impl ExperienceStream {
    /// Creates a stream holding at least `capacity` experiences
    /// (rounded up to a power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                value: Mutex::new(None),
            })
            .collect();
        Self {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            enqueue: AtomicU64::new(0),
            dequeue: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity of the ring (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues an experience. Returns `false` (and counts a drop) when
    /// the ring is full.
    pub fn push(&self, experience: Experience) -> bool {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos) as i64;
            if dif == 0 {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        *slot.value.lock().expect("slot lock poisoned") = Some(experience);
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        self.accepted.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(found) => pos = found,
                }
            } else if dif < 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest experience, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<Experience> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos.wrapping_add(1)) as i64;
            if dif == 0 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let experience = slot
                            .value
                            .lock()
                            .expect("slot lock poisoned")
                            .take()
                            .expect("readable slot holds a value");
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(experience);
                    }
                    Err(found) => pos = found,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }

    /// Experiences currently buffered (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.enqueue.load(Ordering::Relaxed);
        let head = self.dequeue.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Experiences accepted since creation.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Experiences dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// PolicyRegistry
// ---------------------------------------------------------------------------

/// An immutable published policy snapshot.
#[derive(Debug)]
pub struct PolicySnapshot {
    /// The snapshot's version (0 is the policy the service started with).
    pub version: u64,
    /// The policy weights at this version.
    pub policy: PolicyNetwork,
}

/// Versioned policy publication: double-buffered `Arc` snapshots behind a
/// swap slot, plus a monotonically increasing version counter.
///
/// [`PolicyRegistry::checkout`] clones the current `Arc` (a pointer bump
/// under a momentary lock — the snapshot itself is never copied);
/// [`PolicyRegistry::publish`] builds the next snapshot off to the side
/// and swaps the slot. Checkouts taken before a swap keep the old
/// snapshot alive for as long as they need it.
#[derive(Debug)]
pub struct PolicyRegistry {
    current: Mutex<Arc<PolicySnapshot>>,
    version: AtomicU64,
    swaps: AtomicU64,
}

impl PolicyRegistry {
    /// Creates a registry publishing `policy` as version 0.
    pub fn new(policy: PolicyNetwork) -> Self {
        Self {
            current: Mutex::new(Arc::new(PolicySnapshot { version: 0, policy })),
            version: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        }
    }

    /// Checks out the currently published snapshot.
    pub fn checkout(&self) -> Arc<PolicySnapshot> {
        self.current.lock().expect("registry lock poisoned").clone()
    }

    /// The currently published version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Number of swaps published since creation.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Publishes `policy` as the next version and returns that version.
    pub fn publish(&self, policy: PolicyNetwork) -> u64 {
        let mut slot = self.current.lock().expect("registry lock poisoned");
        let version = slot.version + 1;
        *slot = Arc::new(PolicySnapshot { version, policy });
        self.version.store(version, Ordering::Relaxed);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }
}

// ---------------------------------------------------------------------------
// OnlineTrainingConfig
// ---------------------------------------------------------------------------

/// Knobs of the online learning subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineTrainingConfig {
    /// Feed every `sample_every`-th `Completed` response into the stream
    /// (1 = every response). The gate is one atomic increment plus a
    /// modulo on the serving path.
    pub sample_every: u64,
    /// Capacity of the experience ring (rounded up to a power of two).
    pub capacity: usize,
    /// Minimum buffered experiences before the trainer runs a PPO step.
    pub min_batch: usize,
    /// Seed of the trainer's private RNG stream.
    pub train_seed: u64,
    /// PPO hyper-parameters of the online updates.
    pub ppo: PpoConfig,
    /// Publish a candidate only when its greedy geomean speedup over the
    /// probe set is `>=` the incumbent's. When `false` every train step
    /// publishes.
    pub promotion_gate: bool,
    /// Most distinct modules kept in the promotion-gate probe set.
    pub max_probe_modules: usize,
    /// Stop training (and publishing) after this many train steps
    /// (`None` = train for the lifetime of the service).
    pub max_steps: Option<u64>,
}

impl Default for OnlineTrainingConfig {
    fn default() -> Self {
        Self {
            sample_every: 1,
            capacity: 1024,
            min_batch: 8,
            train_seed: 0xC0DE,
            ppo: PpoConfig::small(),
            promotion_gate: true,
            max_probe_modules: 32,
            max_steps: None,
        }
    }
}

impl OnlineTrainingConfig {
    /// Validates the knobs, mirroring `ServiceConfig::try_validate`.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.sample_every == 0 {
            return Err("online sample_every must be at least 1 (0 never samples)".into());
        }
        if self.capacity == 0 {
            return Err("online capacity must be at least 1 (0 drops every experience)".into());
        }
        if self.min_batch == 0 {
            return Err("online min_batch must be at least 1 (PPO needs a dataset)".into());
        }
        if self.min_batch > self.capacity.max(2).next_power_of_two() {
            return Err(format!(
                "online min_batch ({}) exceeds the stream capacity ({}) — the trainer would never wake",
                self.min_batch,
                self.capacity.max(2).next_power_of_two()
            ));
        }
        if self.max_probe_modules == 0 {
            return Err(
                "online max_probe_modules must be at least 1 (the gate needs a probe set)".into(),
            );
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// OnlineTrainer
// ---------------------------------------------------------------------------

/// Counters exported by the online trainer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineTrainerStats {
    /// PPO iterations run.
    pub train_steps: u64,
    /// Candidates rejected by the promotion gate.
    pub gate_rejects: u64,
    /// Experiences drained from the stream.
    pub experiences_consumed: u64,
}

/// The background online-training thread.
///
/// Drains [`ExperienceStream`] into replay batches, runs PPO iterations on
/// a private policy clone, and publishes gate-passing candidates through
/// the [`PolicyRegistry`].
#[derive(Debug)]
pub struct OnlineTrainer {
    handle: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    pause_acked: Arc<AtomicBool>,
    train_steps: Arc<AtomicU64>,
    gate_rejects: Arc<AtomicU64>,
    consumed: Arc<AtomicU64>,
}

impl OnlineTrainer {
    /// Spawns the trainer thread.
    ///
    /// `env` must be a *private* environment (its own evaluation cache):
    /// training rollouts must not warm or evict the serving cache. `probe`
    /// receives `train_step` and `policy_swap` events (pass
    /// [`ProbeRef::none`] when tracing is off).
    pub fn spawn(
        config: OnlineTrainingConfig,
        registry: Arc<PolicyRegistry>,
        stream: Arc<ExperienceStream>,
        env: OptimizationEnv,
        probe: ProbeRef,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let pause_acked = Arc::new(AtomicBool::new(false));
        let train_steps = Arc::new(AtomicU64::new(0));
        let gate_rejects = Arc::new(AtomicU64::new(0));
        let consumed = Arc::new(AtomicU64::new(0));
        let worker = TrainerWorker {
            config,
            registry,
            stream,
            env,
            probe,
            shutdown: shutdown.clone(),
            paused: paused.clone(),
            pause_acked: pause_acked.clone(),
            train_steps: train_steps.clone(),
            gate_rejects: gate_rejects.clone(),
            consumed: consumed.clone(),
        };
        let handle = std::thread::Builder::new()
            .name("mlir-rl-online-trainer".into())
            .spawn(move || worker.run())
            .expect("spawn online trainer");
        Self {
            handle: Some(handle),
            shutdown,
            paused,
            pause_acked,
            train_steps,
            gate_rejects,
            consumed,
        }
    }

    /// Pauses training: buffered and future experiences are left in the
    /// stream and no further versions are published until
    /// [`OnlineTrainer::resume`]. Blocks until any in-flight train step
    /// has finished, so after `pause` returns the published version is
    /// stable.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::SeqCst);
        // One train step is bounded; wait for the loop to acknowledge.
        while !self.shutdown.load(Ordering::SeqCst) && !self.pause_acked.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Resumes training after [`OnlineTrainer::pause`].
    pub fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
    }

    /// Counters exported by the trainer.
    pub fn stats(&self) -> OnlineTrainerStats {
        OnlineTrainerStats {
            train_steps: self.train_steps.load(Ordering::Relaxed),
            gate_rejects: self.gate_rejects.load(Ordering::Relaxed),
            experiences_consumed: self.consumed.load(Ordering::Relaxed),
        }
    }

    /// Signals shutdown and joins the trainer thread.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OnlineTrainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct TrainerWorker {
    config: OnlineTrainingConfig,
    registry: Arc<PolicyRegistry>,
    stream: Arc<ExperienceStream>,
    env: OptimizationEnv,
    probe: ProbeRef,
    shutdown: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    pause_acked: Arc<AtomicBool>,
    train_steps: Arc<AtomicU64>,
    gate_rejects: Arc<AtomicU64>,
    consumed: Arc<AtomicU64>,
}

impl TrainerWorker {
    fn run(mut self) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.train_seed);
        // The private clone PPO updates run against; seeded lazily from
        // the first checkout so pre-serve swaps are reflected.
        let mut trainer: Option<PpoTrainer<PolicyNetwork>> = None;
        // Probe set: distinct served modules, insertion-ordered.
        let mut probe_fps: Vec<u64> = Vec::new();
        let mut probe_modules: Vec<Module> = Vec::new();
        let mut buffer: Vec<Experience> = Vec::new();

        while !self.shutdown.load(Ordering::SeqCst) {
            if self.paused.load(Ordering::SeqCst) {
                self.pause_acked.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            self.pause_acked.store(false, Ordering::SeqCst);
            if let Some(max) = self.config.max_steps {
                if self.train_steps.load(Ordering::Relaxed) >= max {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            }
            while let Some(experience) = self.stream.pop() {
                buffer.push(experience);
                if buffer.len() >= self.config.capacity {
                    break;
                }
            }
            if buffer.len() < self.config.min_batch {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let batch: Vec<Experience> = std::mem::take(&mut buffer);
            self.consumed
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            for experience in &batch {
                if !probe_fps.contains(&experience.module_fingerprint) {
                    if probe_modules.len() >= self.config.max_probe_modules {
                        probe_fps.remove(0);
                        probe_modules.remove(0);
                    }
                    probe_fps.push(experience.module_fingerprint);
                    probe_modules.push(experience.module.clone());
                }
            }
            // Dataset: the batch's distinct modules.
            let mut dataset_fps: Vec<u64> = Vec::new();
            let mut dataset: Vec<Module> = Vec::new();
            for experience in &batch {
                if !dataset_fps.contains(&experience.module_fingerprint) {
                    dataset_fps.push(experience.module_fingerprint);
                    dataset.push(experience.module.clone());
                }
            }
            if dataset.is_empty() {
                continue;
            }

            let trainer = trainer.get_or_insert_with(|| {
                let incumbent = self.registry.checkout();
                let value = ValueNetwork::new(
                    incumbent.policy.env_config(),
                    incumbent.policy.hyperparams(),
                    &mut rng,
                );
                PpoTrainer::with_policy(
                    incumbent.policy.clone(),
                    value,
                    self.config.ppo,
                    ChaCha8Rng::seed_from_u64(self.config.train_seed ^ 0x5eed),
                )
            });
            let stats = trainer.train_iteration(&mut self.env, &dataset);
            let step = self.train_steps.fetch_add(1, Ordering::Relaxed) + 1;
            self.probe.emit(
                EventKind::TrainStep,
                None,
                [step, dataset.len() as u64, to_milli(stats.geomean_speedup)],
            );

            let publish = if self.config.promotion_gate {
                let incumbent = self.registry.checkout();
                let mut incumbent_policy = incumbent.policy.clone();
                let incumbent_score = greedy_geomean(
                    &mut self.env,
                    &mut incumbent_policy,
                    &probe_modules,
                    &mut rng,
                );
                let candidate_score =
                    greedy_geomean(&mut self.env, &mut trainer.policy, &probe_modules, &mut rng);
                candidate_score >= incumbent_score
            } else {
                true
            };
            if publish {
                let version = self.registry.publish(trainer.policy.clone());
                self.probe.emit(
                    EventKind::PolicySwap,
                    None,
                    [version, probe_modules.len() as u64, step],
                );
            } else {
                self.gate_rejects.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Milli-units fixed-point encoding for probe args.
fn to_milli(x: f64) -> u64 {
    if x.is_finite() && x > 0.0 {
        (x * 1000.0).round() as u64
    } else {
        0
    }
}

/// Geometric-mean greedy speedup of `policy` over `modules`, scored the
/// same way the `greedy` searcher scores served requests: one argmax
/// episode per module, baseline and final schedule estimated through the
/// noise-free cache peek. Greedy decoding consumes no RNG draws, so `rng`
/// is never advanced.
pub fn greedy_geomean(
    env: &mut OptimizationEnv,
    policy: &mut PolicyNetwork,
    modules: &[Module],
    rng: &mut ChaCha8Rng,
) -> f64 {
    if modules.is_empty() {
        return 1.0;
    }
    let mut log_sum = 0.0;
    for module in modules {
        let mut obs = env.reset(module.clone());
        let baseline_s = env.peek_time_s();
        let max_steps = (module.ops().len() + 1) * (env.config().max_schedule_len + 3);
        let mut steps = 0usize;
        while let Some(current) = obs {
            let record = policy.select_action(&current, true, rng);
            let outcome = env.step(&record.action);
            obs = outcome.observation;
            steps += 1;
            if steps > max_steps {
                break;
            }
        }
        let final_s = env.peek_time_s();
        let speedup = if final_s > 0.0 {
            baseline_s / final_s
        } else {
            1.0
        };
        log_sum += speedup.max(f64::MIN_POSITIVE).ln();
    }
    (log_sum / modules.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experience(tag: u64) -> Experience {
        Experience {
            module: test_module(),
            module_fingerprint: tag,
            searcher: "greedy-policy".into(),
            seed: tag,
            actions: Vec::new(),
            speedup: 1.0,
            policy_version: 0,
        }
    }

    fn test_module() -> Module {
        use mlir_rl_ir::ModuleBuilder;
        let mut b = ModuleBuilder::new("online-test");
        let a = b.argument("A", vec![8, 8]);
        let w = b.argument("B", vec![8, 8]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    fn test_policy(seed: u64) -> PolicyNetwork {
        use crate::policy::PolicyHyperparams;
        use mlir_rl_env::EnvConfig;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let hyper = PolicyHyperparams {
            hidden_size: 16,
            backbone_layers: 1,
        };
        PolicyNetwork::new(EnvConfig::small(), hyper, &mut rng)
    }

    #[test]
    fn stream_pushes_and_pops_in_fifo_order() {
        let stream = ExperienceStream::new(8);
        for i in 0..5 {
            assert!(stream.push(experience(i)));
        }
        assert_eq!(stream.len(), 5);
        for i in 0..5 {
            assert_eq!(stream.pop().expect("buffered").module_fingerprint, i);
        }
        assert!(stream.pop().is_none());
        assert_eq!(stream.accepted(), 5);
        assert_eq!(stream.dropped(), 0);
    }

    #[test]
    fn stream_drops_when_full_and_counts_it() {
        let stream = ExperienceStream::new(2);
        assert_eq!(stream.capacity(), 2);
        assert!(stream.push(experience(0)));
        assert!(stream.push(experience(1)));
        assert!(!stream.push(experience(2)));
        assert_eq!(stream.dropped(), 1);
        assert_eq!(stream.accepted(), 2);
        // Draining frees capacity again.
        assert_eq!(stream.pop().expect("buffered").module_fingerprint, 0);
        assert!(stream.push(experience(3)));
    }

    #[test]
    fn stream_survives_concurrent_producers() {
        let stream = Arc::new(ExperienceStream::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let stream = stream.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    stream.push(experience(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        assert_eq!(stream.accepted(), 400);
        let mut drained = 0;
        while stream.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 400);
    }

    #[test]
    fn registry_checkout_pins_a_version_across_swaps() {
        let registry = PolicyRegistry::new(test_policy(1));
        let pinned = registry.checkout();
        assert_eq!(pinned.version, 0);
        let v1 = registry.publish(test_policy(2));
        assert_eq!(v1, 1);
        assert_eq!(registry.version(), 1);
        assert_eq!(registry.swaps(), 1);
        // The pre-swap checkout still sees version 0.
        assert_eq!(pinned.version, 0);
        assert_eq!(registry.checkout().version, 1);
    }

    #[test]
    fn config_validation_rejects_zero_knobs() {
        let ok = OnlineTrainingConfig::default();
        assert!(ok.try_validate().is_ok());
        for bad in [
            OnlineTrainingConfig {
                sample_every: 0,
                ..ok.clone()
            },
            OnlineTrainingConfig {
                capacity: 0,
                ..ok.clone()
            },
            OnlineTrainingConfig {
                min_batch: 0,
                ..ok.clone()
            },
            OnlineTrainingConfig {
                min_batch: 4096,
                capacity: 16,
                ..ok.clone()
            },
            OnlineTrainingConfig {
                max_probe_modules: 0,
                ..ok.clone()
            },
        ] {
            assert!(bad.try_validate().is_err());
        }
    }

    #[test]
    fn greedy_geomean_is_deterministic_and_rng_free() {
        use mlir_rl_costmodel::{CostModel, MachineModel};
        use mlir_rl_env::EnvConfig;
        let config = EnvConfig::small();
        let mut env = OptimizationEnv::new(config.clone(), CostModel::new(MachineModel::default()));
        let mut policy = test_policy(7);
        let modules = vec![test_module()];
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(1234);
        let a = greedy_geomean(&mut env, &mut policy, &modules, &mut rng_a);
        let mut env2 = OptimizationEnv::new(config, CostModel::new(MachineModel::default()));
        let b = greedy_geomean(&mut env2, &mut policy, &modules, &mut rng_b);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
