//! # mlir-rl-nn
//!
//! A minimal, dependency-free neural-network library: dense layers, a
//! single-layer LSTM, masked categorical distributions and the Adam
//! optimizer — exactly the building blocks the paper's actor-critic
//! networks need (LSTM producer-consumer embedding, 3x512 ReLU backbone,
//! softmax action heads, value head, PPO training).
//!
//! All layers operate on single samples (`&[f64]` feature vectors); a
//! minibatch is processed by calling `forward` once per sample and
//! `backward` once per sample in reverse order, which accumulates gradients
//! exactly like summing a batched loss.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_nn::{Adam, Linear, MaskedCategorical};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut head = Linear::new(16, 6, &mut rng);
//! let logits = head.forward(&vec![0.1; 16]);
//! let dist = MaskedCategorical::new(&logits, &[true, true, true, true, false, true]);
//! let action = dist.argmax();
//! assert!(action != 4, "masked actions are never selected");
//!
//! // One policy-gradient step on that action.
//! let grad_logits: Vec<f64> = dist.log_prob_grad(action).iter().map(|g| -g).collect();
//! head.backward(&grad_logits);
//! let mut adam = Adam::new(1e-3);
//! adam.step(&mut head.parameters_mut());
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod adam;
pub mod distribution;
pub mod linear;
pub mod lstm;
pub mod param;
pub mod scratch;

pub use activation::{
    masked_softmax, relu, relu_in_place, sigmoid, softmax, softmax_backward, tanh,
};
pub use adam::{clip_grad_norm, Adam};
pub use distribution::MaskedCategorical;
pub use linear::{Linear, Mlp};
pub use lstm::Lstm;
pub use param::Param;
pub use scratch::Scratch;
