//! # mlir-rl-nn
//!
//! A minimal, dependency-free neural-network library: dense layers, a
//! single-layer LSTM, masked categorical distributions and the Adam
//! optimizer — exactly the building blocks the paper's actor-critic
//! networks need (LSTM producer-consumer embedding, 3x512 ReLU backbone,
//! softmax action heads, value head, PPO training).
//!
//! Layers operate on batches: a minibatch is a row-major [`Tensor2`] (one
//! sample per row) pushed through `forward_batch` / `infer_batch` /
//! `backward_batch`, which run one blocked matmul per layer instead of one
//! matvec per sample. The per-vector entry points (`forward`, `infer`,
//! `backward`) remain as thin wrappers over batch-of-1, and the batched
//! kernels fix their accumulation order so that every row of a batched
//! result is **bit-for-bit identical** to the per-vector path — batching is
//! purely a throughput knob, never a numerics change (property-tested).
//! `backward_batch` accumulates parameter gradients in reverse row order,
//! exactly like replaying per-sample `backward` calls against stacked
//! caches.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_nn::{Adam, Linear, MaskedCategorical};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut head = Linear::new(16, 6, &mut rng);
//! let logits = head.forward(&vec![0.1; 16]);
//! let dist = MaskedCategorical::new(&logits, &[true, true, true, true, false, true]);
//! let action = dist.argmax();
//! assert!(action != 4, "masked actions are never selected");
//!
//! // One policy-gradient step on that action.
//! let grad_logits: Vec<f64> = dist.log_prob_grad(action).iter().map(|g| -g).collect();
//! head.backward(&grad_logits);
//! let mut adam = Adam::new(1e-3);
//! adam.step(&mut head.parameters_mut());
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod adam;
pub mod distribution;
pub mod linear;
pub mod lstm;
pub mod param;
pub mod scratch;
pub mod tensor;

pub use activation::{
    masked_softmax, relu, relu_in_place, sigmoid, sigmoid_in_place, softmax, softmax_backward,
    tanh, tanh_in_place,
};
pub use adam::{clip_grad_norm, Adam};
pub use distribution::MaskedCategorical;
pub use linear::{Linear, Mlp};
pub use lstm::Lstm;
pub use param::Param;
pub use scratch::Scratch;
pub use tensor::Tensor2;
