//! A single-layer LSTM used for the producer-consumer embedding.
//!
//! The paper feeds the representation vectors of the producer and the
//! consumer sequentially into an LSTM with 512 units and uses the final
//! hidden state as the embedding (Sec. V-A-1). This module implements the
//! standard LSTM cell with full backpropagation through time over the short
//! sequences involved.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::{sigmoid, tanh};
use crate::param::Param;
use crate::scratch::{resize_buffer, Scratch};

/// Cached values of one LSTM time step, needed for backpropagation.
#[derive(Debug, Clone, PartialEq)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// Preallocated working memory for [`Lstm::infer`].
#[derive(Debug, Clone, Default, PartialEq)]
struct LstmScratch {
    h: Vec<f64>,
    c: Vec<f64>,
    gates: [Vec<f64>; 4],
    uh: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// A single-layer LSTM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    input_size: usize,
    hidden_size: usize,
    // Gate order: input (i), forget (f), cell (g), output (o).
    w: [Param; 4],
    u: [Param; 4],
    b: [Param; 4],
    #[serde(skip)]
    cached_sequences: Vec<Vec<StepCache>>,
    #[serde(skip)]
    infer_scratch: Scratch<LstmScratch>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights and a forget-gate
    /// bias of 1 (the usual initialization that helps gradient flow).
    pub fn new<R: Rng>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        let w = std::array::from_fn(|_| Param::xavier(hidden_size, input_size, rng));
        let u = std::array::from_fn(|_| Param::xavier(hidden_size, hidden_size, rng));
        let mut b: [Param; 4] = std::array::from_fn(|_| Param::zeros(hidden_size, 1));
        b[1].value.iter_mut().for_each(|v| *v = 1.0);
        Self {
            input_size,
            hidden_size,
            w,
            u,
            b,
            cached_sequences: Vec::new(),
            infer_scratch: Scratch::default(),
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden-state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, StepCache) {
        let pre = |gate: usize| -> Vec<f64> {
            let mut z = self.w[gate].matvec(x);
            let uh = self.u[gate].matvec(h_prev);
            for ((zi, uhi), bi) in z.iter_mut().zip(&uh).zip(&self.b[gate].value) {
                *zi += uhi + bi;
            }
            z
        };
        let i = sigmoid(&pre(0));
        let f = sigmoid(&pre(1));
        let g = tanh(&pre(2));
        let o = sigmoid(&pre(3));
        let c: Vec<f64> = f
            .iter()
            .zip(c_prev)
            .zip(i.iter().zip(&g))
            .map(|((f, cp), (i, g))| f * cp + i * g)
            .collect();
        let tanh_c = tanh(&c);
        let h: Vec<f64> = o.iter().zip(&tanh_c).map(|(o, t)| o * t).collect();
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        };
        (h, c, cache)
    }

    /// Runs the LSTM over a sequence of input vectors, starting from zero
    /// state, and returns the final hidden state. Caches everything needed
    /// for [`Lstm::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any input has the wrong size.
    pub fn forward(&mut self, sequence: &[Vec<f64>]) -> Vec<f64> {
        assert!(!sequence.is_empty(), "LSTM sequence must not be empty");
        let mut h = vec![0.0; self.hidden_size];
        let mut c = vec![0.0; self.hidden_size];
        let mut caches = Vec::with_capacity(sequence.len());
        for x in sequence {
            assert_eq!(x.len(), self.input_size, "LSTM input size mismatch");
            let (nh, nc, cache) = self.step(x, &h, &c);
            h = nh;
            c = nc;
            caches.push(cache);
        }
        self.cached_sequences.push(caches);
        h
    }

    /// Inference-only forward (no caching).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any input has the wrong size.
    pub fn forward_inference(&self, sequence: &[Vec<f64>]) -> Vec<f64> {
        assert!(!sequence.is_empty(), "LSTM sequence must not be empty");
        let mut h = vec![0.0; self.hidden_size];
        let mut c = vec![0.0; self.hidden_size];
        for x in sequence {
            assert_eq!(x.len(), self.input_size, "LSTM input size mismatch");
            let (nh, nc, _) = self.step(x, &h, &c);
            h = nh;
            c = nc;
        }
        h
    }

    /// Allocation-free inference over a sequence of borrowed inputs using
    /// internal scratch buffers. Returns the final hidden state as a slice
    /// borrowing the scratch; bit-identical to [`Lstm::forward_inference`].
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any input has the wrong size.
    pub fn infer(&mut self, sequence: &[&[f64]]) -> &[f64] {
        assert!(!sequence.is_empty(), "LSTM sequence must not be empty");
        let hs = self.hidden_size;
        let scratch = &mut self.infer_scratch.0;
        resize_buffer(&mut scratch.h, hs);
        resize_buffer(&mut scratch.c, hs);
        resize_buffer(&mut scratch.uh, hs);
        resize_buffer(&mut scratch.tanh_c, hs);
        for gate in &mut scratch.gates {
            resize_buffer(gate, hs);
        }
        for x in sequence {
            assert_eq!(x.len(), self.input_size, "LSTM input size mismatch");
            // Pre-activations: z_g = W_g x + (U_g h + b_g), exactly as in
            // `step` so results stay bit-identical.
            for gate in 0..4 {
                let z = &mut scratch.gates[gate];
                self.w[gate].matvec_into(x, z);
                self.u[gate].matvec_into(&scratch.h, &mut scratch.uh);
                for ((zi, uhi), bi) in z.iter_mut().zip(&scratch.uh).zip(&self.b[gate].value) {
                    *zi += uhi + bi;
                }
            }
            for k in 0..hs {
                let i = 1.0 / (1.0 + (-scratch.gates[0][k]).exp());
                let f = 1.0 / (1.0 + (-scratch.gates[1][k]).exp());
                let g = scratch.gates[2][k].tanh();
                let o = 1.0 / (1.0 + (-scratch.gates[3][k]).exp());
                let c = f * scratch.c[k] + i * g;
                let tanh_c = c.tanh();
                scratch.c[k] = c;
                scratch.tanh_c[k] = tanh_c;
                scratch.h[k] = o * tanh_c;
            }
        }
        &self.infer_scratch.0.h
    }

    /// Backpropagation through time for the most recent un-consumed forward
    /// call, given the gradient with respect to the final hidden state.
    /// Accumulates parameter gradients and returns the gradients with
    /// respect to the input sequence.
    ///
    /// # Panics
    ///
    /// Panics if no cached forward call is available.
    pub fn backward(&mut self, grad_h_final: &[f64]) -> Vec<Vec<f64>> {
        let caches = self
            .cached_sequences
            .pop()
            .expect("backward called without a matching forward");
        let h = self.hidden_size;
        let mut grad_x = vec![vec![0.0; self.input_size]; caches.len()];
        let mut dh = grad_h_final.to_vec();
        let mut dc = vec![0.0; h];

        for (t, cache) in caches.iter().enumerate().rev() {
            // h = o * tanh(c)
            let do_gate: Vec<f64> = dh.iter().zip(&cache.tanh_c).map(|(d, t)| d * t).collect();
            for k in 0..h {
                dc[k] += dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
            }
            // c = f * c_prev + i * g
            let di: Vec<f64> = dc.iter().zip(&cache.g).map(|(d, g)| d * g).collect();
            let dg: Vec<f64> = dc.iter().zip(&cache.i).map(|(d, i)| d * i).collect();
            let df: Vec<f64> = dc.iter().zip(&cache.c_prev).map(|(d, c)| d * c).collect();
            let dc_prev: Vec<f64> = dc.iter().zip(&cache.f).map(|(d, f)| d * f).collect();

            // Pre-activation gradients.
            let di_pre: Vec<f64> = di
                .iter()
                .zip(&cache.i)
                .map(|(d, v)| d * v * (1.0 - v))
                .collect();
            let df_pre: Vec<f64> = df
                .iter()
                .zip(&cache.f)
                .map(|(d, v)| d * v * (1.0 - v))
                .collect();
            let dg_pre: Vec<f64> = dg
                .iter()
                .zip(&cache.g)
                .map(|(d, v)| d * (1.0 - v * v))
                .collect();
            let do_pre: Vec<f64> = do_gate
                .iter()
                .zip(&cache.o)
                .map(|(d, v)| d * v * (1.0 - v))
                .collect();

            let gate_grads = [&di_pre, &df_pre, &dg_pre, &do_pre];
            let mut dh_prev = vec![0.0; h];
            for (gate, dpre) in gate_grads.iter().enumerate() {
                self.w[gate].add_outer_to_grad(dpre, &cache.x);
                self.u[gate].add_outer_to_grad(dpre, &cache.h_prev);
                for (gb, g) in self.b[gate].grad.iter_mut().zip(dpre.iter()) {
                    *gb += g;
                }
                let dx = self.w[gate].matvec_transposed(dpre);
                for (acc, v) in grad_x[t].iter_mut().zip(&dx) {
                    *acc += v;
                }
                let dhp = self.u[gate].matvec_transposed(dpre);
                for (acc, v) in dh_prev.iter_mut().zip(&dhp) {
                    *acc += v;
                }
            }
            dh = dh_prev;
            dc = dc_prev;
        }
        grad_x
    }

    /// Clears gradients and cached activations.
    pub fn zero_grad(&mut self) {
        for p in self.parameters_mut() {
            p.zero_grad();
        }
        self.cached_sequences.clear();
    }

    /// All parameters, for the optimizer.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::with_capacity(12);
        out.extend(self.w.iter_mut());
        out.extend(self.u.iter_mut());
        out.extend(self.b.iter_mut());
        out
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        4 * (self.hidden_size * self.input_size
            + self.hidden_size * self.hidden_size
            + self.hidden_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut lstm = Lstm::new(4, 6, &mut rng());
        assert_eq!(lstm.input_size(), 4);
        assert_eq!(lstm.hidden_size(), 6);
        assert_eq!(lstm.num_parameters(), 4 * (6 * 4 + 36 + 6));
        let seq = vec![vec![0.1, 0.2, -0.3, 0.4], vec![1.0, -1.0, 0.5, 0.0]];
        let h1 = lstm.forward(&seq);
        let h2 = lstm.forward_inference(&seq);
        assert_eq!(h1.len(), 6);
        assert_eq!(h1, h2);
        // Different inputs give different embeddings.
        let h3 = lstm.forward_inference(&[vec![0.0; 4], vec![0.0; 4]]);
        assert_ne!(h1, h3);
    }

    #[test]
    fn infer_matches_forward_inference_bitwise() {
        let mut lstm = Lstm::new(4, 6, &mut rng());
        let seq = vec![vec![0.1, 0.2, -0.3, 0.4], vec![1.0, -1.0, 0.5, 0.0]];
        let expected = lstm.forward_inference(&seq);
        let borrowed: Vec<&[f64]> = seq.iter().map(Vec::as_slice).collect();
        let got = lstm.infer(&borrowed).to_vec();
        assert_eq!(expected, got, "scratch inference must be bit-identical");
        // Scratch is reused across calls without contaminating results.
        assert_eq!(expected, lstm.infer(&borrowed).to_vec());
        // Clones start with fresh scratch but identical weights.
        assert_eq!(expected, lstm.clone().infer(&borrowed).to_vec());
    }

    #[test]
    fn hidden_state_bounded_by_tanh() {
        let mut lstm = Lstm::new(3, 5, &mut rng());
        let h = lstm.forward(&[vec![10.0, -10.0, 10.0]]);
        assert!(h.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(3, 4, &mut rng());
        let seq = vec![vec![0.2, -0.4, 0.6], vec![-0.1, 0.3, 0.5]];
        // Loss = sum of final hidden state.
        let base: f64 = lstm.forward(&seq).iter().sum();
        let grad_x = lstm.backward(&[1.0; 4]);
        let eps = 1e-6;
        for t in 0..seq.len() {
            for i in 0..3 {
                let mut perturbed = seq.clone();
                perturbed[t][i] += eps;
                let fd = (lstm.forward_inference(&perturbed).iter().sum::<f64>() - base) / eps;
                assert!(
                    (fd - grad_x[t][i]).abs() < 1e-4,
                    "t={t} i={i}: fd {fd} vs analytic {}",
                    grad_x[t][i]
                );
            }
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let seq = vec![vec![0.5, -0.2], vec![0.1, 0.9]];
        let base: f64 = lstm.forward(&seq).iter().sum();
        lstm.backward(&[1.0; 3]);
        let eps = 1e-6;
        // Check an entry of the input-gate W, the forget-gate U and the
        // output-gate bias.
        let checks: [(usize, usize); 3] = [(0, 1), (5, 2), (11, 0)];
        for (param_idx, entry) in checks {
            let analytic = {
                let mut lstm_ref = lstm.clone();
                lstm_ref.parameters_mut()[param_idx].grad[entry]
            };
            let mut perturbed = lstm.clone();
            perturbed.parameters_mut()[param_idx].value[entry] += eps;
            let fd = (perturbed.forward_inference(&seq).iter().sum::<f64>() - base) / eps;
            assert!(
                (fd - analytic).abs() < 1e-4,
                "param {param_idx} entry {entry}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_sequence_panics() {
        Lstm::new(2, 2, &mut rng()).forward(&[]);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut lstm = Lstm::new(2, 2, &mut rng());
        lstm.forward(&[vec![1.0, 1.0]]);
        lstm.backward(&[1.0, 1.0]);
        lstm.zero_grad();
        assert!(lstm
            .parameters_mut()
            .iter()
            .all(|p| p.grad.iter().all(|g| *g == 0.0)));
    }
}
