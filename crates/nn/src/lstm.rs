//! A single-layer LSTM used for the producer-consumer embedding.
//!
//! The paper feeds the representation vectors of the producer and the
//! consumer sequentially into an LSTM with 512 units and uses the final
//! hidden state as the embedding (Sec. V-A-1). This module implements the
//! standard LSTM cell with full backpropagation through time over the short
//! sequences involved.
//!
//! All state is batched: a time step is a row-major [`Tensor2`] with one
//! sequence per row, so a batch of observations runs one blocked matmul per
//! gate per step instead of one matvec per observation. The per-vector
//! entry points are thin wrappers over batch-of-1 and remain bit-identical
//! to the historical single-sample loops; `backward_batch` accumulates
//! parameter gradients sample-major in reverse row order, exactly like a
//! per-sample replay of [`Lstm::backward`] against stacked caches.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::{sigmoid_in_place, tanh_in_place};
use crate::param::Param;
use crate::scratch::Scratch;
use crate::tensor::Tensor2;

/// Cached values of one (batched) LSTM time step, needed for
/// backpropagation. Every field is `batch x size` row-major.
#[derive(Debug, Clone, PartialEq)]
struct StepCache {
    x: Tensor2,
    h_prev: Tensor2,
    c_prev: Tensor2,
    i: Tensor2,
    f: Tensor2,
    g: Tensor2,
    o: Tensor2,
    c: Tensor2,
    tanh_c: Tensor2,
}

/// Preallocated working memory for [`Lstm::infer`] / [`Lstm::infer_batch`].
#[derive(Debug, Clone, Default, PartialEq)]
struct LstmScratch {
    h: Tensor2,
    c: Tensor2,
    gates: [Tensor2; 4],
    uh: Tensor2,
}

/// A single-layer LSTM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    input_size: usize,
    hidden_size: usize,
    // Gate order: input (i), forget (f), cell (g), output (o).
    w: [Param; 4],
    u: [Param; 4],
    b: [Param; 4],
    #[serde(skip)]
    cached_sequences: Vec<Vec<StepCache>>,
    #[serde(skip)]
    infer_scratch: Scratch<LstmScratch>,
    /// Batch-of-1 staging tensors for the per-vector [`Lstm::infer`]
    /// wrapper (one per time step).
    #[serde(skip)]
    infer_inputs: Scratch<Vec<Tensor2>>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights and a forget-gate
    /// bias of 1 (the usual initialization that helps gradient flow).
    pub fn new<R: Rng>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        let w = std::array::from_fn(|_| Param::xavier(hidden_size, input_size, rng));
        let u = std::array::from_fn(|_| Param::xavier(hidden_size, hidden_size, rng));
        let mut b: [Param; 4] = std::array::from_fn(|_| Param::zeros(hidden_size, 1));
        b[1].value.iter_mut().for_each(|v| *v = 1.0);
        Self {
            input_size,
            hidden_size,
            w,
            u,
            b,
            cached_sequences: Vec::new(),
            infer_scratch: Scratch::default(),
            infer_inputs: Scratch::default(),
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden-state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// One batched cell step: `x`, `h_prev`, `c_prev` are `batch x size`.
    /// Row `b` of every output is bit-identical to the single-sample cell
    /// on row `b` of the inputs.
    fn step_batch(
        &self,
        x: &Tensor2,
        h_prev: &Tensor2,
        c_prev: &Tensor2,
    ) -> (Tensor2, Tensor2, StepCache) {
        let rows = x.rows();
        let pre = |gate: usize| -> Tensor2 {
            // z_g = W_g x + (U_g h + b_g), with the same per-element
            // addition order as the historical single-sample cell.
            let mut z = self.w[gate].matmul_batch(x);
            let uh = self.u[gate].matmul_batch(h_prev);
            for r in 0..rows {
                for ((zi, uhi), bi) in z
                    .row_mut(r)
                    .iter_mut()
                    .zip(uh.row(r))
                    .zip(&self.b[gate].value)
                {
                    *zi += uhi + bi;
                }
            }
            z
        };
        let mut i = pre(0);
        let mut f = pre(1);
        let mut g = pre(2);
        let mut o = pre(3);
        sigmoid_in_place(i.data_mut());
        sigmoid_in_place(f.data_mut());
        tanh_in_place(g.data_mut());
        sigmoid_in_place(o.data_mut());
        let mut c = Tensor2::zeros(rows, self.hidden_size);
        for (slot, ((fv, cp), (iv, gv))) in c.data_mut().iter_mut().zip(
            f.data()
                .iter()
                .zip(c_prev.data())
                .zip(i.data().iter().zip(g.data())),
        ) {
            *slot = fv * cp + iv * gv;
        }
        let mut tanh_c = c.clone();
        tanh_c.data_mut().iter_mut().for_each(|v| *v = v.tanh());
        let mut h = Tensor2::zeros(rows, self.hidden_size);
        for (slot, (ov, tv)) in h
            .data_mut()
            .iter_mut()
            .zip(o.data().iter().zip(tanh_c.data()))
        {
            *slot = ov * tv;
        }
        let cache = StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        };
        (h, c, cache)
    }

    fn check_step(&self, step: &Tensor2, rows: usize) {
        assert_eq!(step.cols(), self.input_size, "LSTM input size mismatch");
        assert_eq!(step.rows(), rows, "LSTM batch size mismatch");
    }

    /// Runs the LSTM over a batched sequence (each element one time step,
    /// `batch x input` row-major), starting from zero state, and returns
    /// the final hidden states (`batch x hidden`). Caches everything needed
    /// for [`Lstm::backward_batch`]. Row `b` is bit-identical to
    /// [`Lstm::forward`] on row `b` of every step.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any step has the wrong shape.
    pub fn forward_batch(&mut self, sequence: &[Tensor2]) -> Tensor2 {
        assert!(!sequence.is_empty(), "LSTM sequence must not be empty");
        let rows = sequence[0].rows();
        let mut h = Tensor2::zeros(rows, self.hidden_size);
        let mut c = Tensor2::zeros(rows, self.hidden_size);
        let mut caches = Vec::with_capacity(sequence.len());
        for x in sequence {
            self.check_step(x, rows);
            let (nh, nc, cache) = self.step_batch(x, &h, &c);
            h = nh;
            c = nc;
            caches.push(cache);
        }
        self.cached_sequences.push(caches);
        h
    }

    /// Runs the LSTM over a sequence of input vectors, starting from zero
    /// state, and returns the final hidden state (a thin wrapper over
    /// batch-of-1). Caches everything needed for [`Lstm::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any input has the wrong size.
    pub fn forward(&mut self, sequence: &[Vec<f64>]) -> Vec<f64> {
        let steps: Vec<Tensor2> = sequence.iter().map(|x| Tensor2::from_row(x)).collect();
        self.forward_batch(&steps).into_flat()
    }

    /// Inference-only forward (no caching).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any input has the wrong size.
    pub fn forward_inference(&self, sequence: &[Vec<f64>]) -> Vec<f64> {
        assert!(!sequence.is_empty(), "LSTM sequence must not be empty");
        let mut h = Tensor2::zeros(1, self.hidden_size);
        let mut c = Tensor2::zeros(1, self.hidden_size);
        for x in sequence {
            let step = Tensor2::from_row(x);
            self.check_step(&step, 1);
            let (nh, nc, _) = self.step_batch(&step, &h, &c);
            h = nh;
            c = nc;
        }
        h.into_flat()
    }

    /// Core of the scratch-based inference paths: runs the cell over the
    /// given steps with all working memory in `s`; leaves the final hidden
    /// states in `s.h`.
    fn run_infer<'a, I>(&self, steps: I, rows: usize, s: &mut LstmScratch)
    where
        I: Iterator<Item = &'a Tensor2>,
    {
        let hs = self.hidden_size;
        s.h.resize(rows, hs);
        s.c.resize(rows, hs);
        s.uh.resize(rows, hs);
        for gate in &mut s.gates {
            gate.resize(rows, hs);
        }
        for x in steps {
            self.check_step(x, rows);
            // Pre-activations: z_g = W_g x + (U_g h + b_g), exactly as in
            // `step_batch` so results stay bit-identical.
            for gate in 0..4 {
                self.w[gate].matmul_batch_into(x, &mut s.gates[gate]);
                self.u[gate].matmul_batch_into(&s.h, &mut s.uh);
                for r in 0..rows {
                    for ((zi, uhi), bi) in s.gates[gate]
                        .row_mut(r)
                        .iter_mut()
                        .zip(s.uh.row(r))
                        .zip(&self.b[gate].value)
                    {
                        *zi += uhi + bi;
                    }
                }
            }
            sigmoid_in_place(s.gates[0].data_mut());
            sigmoid_in_place(s.gates[1].data_mut());
            tanh_in_place(s.gates[2].data_mut());
            sigmoid_in_place(s.gates[3].data_mut());
            for e in 0..rows * hs {
                let i = s.gates[0].data()[e];
                let f = s.gates[1].data()[e];
                let g = s.gates[2].data()[e];
                let o = s.gates[3].data()[e];
                let c = f * s.c.data()[e] + i * g;
                s.c.data_mut()[e] = c;
                s.h.data_mut()[e] = o * c.tanh();
            }
        }
    }

    /// Allocation-free batched inference over a sequence of borrowed time
    /// steps using internal scratch buffers. Returns the final hidden
    /// states (`batch x hidden`) as a tensor borrowing the scratch; row `b`
    /// is bit-identical to [`Lstm::forward_inference`] on row `b`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any step has the wrong shape.
    pub fn infer_batch(&mut self, sequence: &[&Tensor2]) -> &Tensor2 {
        assert!(!sequence.is_empty(), "LSTM sequence must not be empty");
        let rows = sequence[0].rows();
        let mut s = std::mem::take(&mut self.infer_scratch).0;
        self.run_infer(sequence.iter().copied(), rows, &mut s);
        self.infer_scratch = Scratch(s);
        &self.infer_scratch.0.h
    }

    /// Allocation-free inference over a sequence of borrowed inputs (a thin
    /// wrapper over batch-of-1). Returns the final hidden state as a slice
    /// borrowing the scratch; bit-identical to [`Lstm::forward_inference`].
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any input has the wrong size.
    pub fn infer(&mut self, sequence: &[&[f64]]) -> &[f64] {
        assert!(!sequence.is_empty(), "LSTM sequence must not be empty");
        let mut inputs = std::mem::take(&mut self.infer_inputs).0;
        inputs.resize(sequence.len(), Tensor2::default());
        for (staged, x) in inputs.iter_mut().zip(sequence) {
            staged.resize(1, x.len());
            staged.row_mut(0).copy_from_slice(x);
        }
        let mut s = std::mem::take(&mut self.infer_scratch).0;
        self.run_infer(inputs.iter(), 1, &mut s);
        self.infer_scratch = Scratch(s);
        self.infer_inputs = Scratch(inputs);
        self.infer_scratch.0.h.row(0)
    }

    /// Batched backpropagation through time for the most recent un-consumed
    /// forward call, given the gradients with respect to the final hidden
    /// states (`batch x hidden`). Accumulates parameter gradients
    /// **sample-major in reverse row order** (bit-identical to replaying
    /// [`Lstm::backward`] per sample against stacked caches) and returns
    /// the per-step input gradients (`batch x input` each).
    ///
    /// # Panics
    ///
    /// Panics if no cached forward call is available or the gradient shape
    /// does not match.
    pub fn backward_batch(&mut self, grad_h_final: &Tensor2) -> Vec<Tensor2> {
        let caches = self
            .cached_sequences
            .pop()
            .expect("backward called without a matching forward");
        let rows = caches[0].x.rows();
        assert_eq!(grad_h_final.rows(), rows, "gradient batch size mismatch");
        assert_eq!(
            grad_h_final.cols(),
            self.hidden_size,
            "gradient size mismatch"
        );
        let h = self.hidden_size;
        let mut grad_x: Vec<Tensor2> = caches
            .iter()
            .map(|_| Tensor2::zeros(rows, self.input_size))
            .collect();
        // Pre-activation gradients per step and gate, kept so the parameter
        // accumulation below can run in per-sample replay order.
        let mut dpres: Vec<[Tensor2; 4]> = Vec::with_capacity(caches.len());
        let mut dh = grad_h_final.clone();
        let mut dc = Tensor2::zeros(rows, h);
        let mut tmp = Tensor2::zeros(0, 0);

        for (t, cache) in caches.iter().enumerate().rev() {
            // h = o * tanh(c)
            let mut do_gate = Tensor2::zeros(rows, h);
            for (slot, (d, tc)) in do_gate
                .data_mut()
                .iter_mut()
                .zip(dh.data().iter().zip(cache.tanh_c.data()))
            {
                *slot = d * tc;
            }
            for e in 0..rows * h {
                dc.data_mut()[e] += dh.data()[e]
                    * cache.o.data()[e]
                    * (1.0 - cache.tanh_c.data()[e] * cache.tanh_c.data()[e]);
            }
            // c = f * c_prev + i * g
            let elementwise = |a: &Tensor2, b: &Tensor2| {
                let mut out = Tensor2::zeros(rows, h);
                for (slot, (x, y)) in out.data_mut().iter_mut().zip(a.data().iter().zip(b.data())) {
                    *slot = x * y;
                }
                out
            };
            let di = elementwise(&dc, &cache.g);
            let dg = elementwise(&dc, &cache.i);
            let df = elementwise(&dc, &cache.c_prev);
            let dc_prev = elementwise(&dc, &cache.f);

            // Pre-activation gradients.
            let sigmoid_pre = |d: &Tensor2, v: &Tensor2| {
                let mut out = Tensor2::zeros(rows, h);
                for (slot, (dv, vv)) in out.data_mut().iter_mut().zip(d.data().iter().zip(v.data()))
                {
                    *slot = dv * vv * (1.0 - vv);
                }
                out
            };
            let di_pre = sigmoid_pre(&di, &cache.i);
            let df_pre = sigmoid_pre(&df, &cache.f);
            let mut dg_pre = Tensor2::zeros(rows, h);
            for (slot, (dv, vv)) in dg_pre
                .data_mut()
                .iter_mut()
                .zip(dg.data().iter().zip(cache.g.data()))
            {
                *slot = dv * (1.0 - vv * vv);
            }
            let do_pre = sigmoid_pre(&do_gate, &cache.o);

            let gate_grads = [di_pre, df_pre, dg_pre, do_pre];
            let mut dh_prev = Tensor2::zeros(rows, h);
            for (gate, dpre) in gate_grads.iter().enumerate() {
                self.w[gate].matmul_batch_transposed_into(dpre, &mut tmp);
                for (acc, v) in grad_x[t].data_mut().iter_mut().zip(tmp.data()) {
                    *acc += v;
                }
                self.u[gate].matmul_batch_transposed_into(dpre, &mut tmp);
                for (acc, v) in dh_prev.data_mut().iter_mut().zip(tmp.data()) {
                    *acc += v;
                }
            }
            dpres.push(gate_grads);
            dh = dh_prev;
            dc = dc_prev;
        }
        // `dpres` was filled in reverse time order; index it back to t.
        dpres.reverse();

        // Parameter accumulation in per-sample replay order: sample-major
        // (reverse rows), then reverse time, then gates — the exact `+=`
        // sequence B stacked per-vector backward calls perform.
        for b in (0..rows).rev() {
            for (cache, step_dpres) in caches.iter().zip(&dpres).rev() {
                for (gate, gate_dpre) in step_dpres.iter().enumerate() {
                    let dpre = gate_dpre.row(b);
                    self.w[gate].add_outer_to_grad(dpre, cache.x.row(b));
                    self.u[gate].add_outer_to_grad(dpre, cache.h_prev.row(b));
                    for (gb, g) in self.b[gate].grad.iter_mut().zip(dpre) {
                        *gb += g;
                    }
                }
            }
        }
        grad_x
    }

    /// Backpropagation through time for the most recent un-consumed forward
    /// call, given the gradient with respect to the final hidden state (a
    /// thin wrapper over batch-of-1). Accumulates parameter gradients and
    /// returns the gradients with respect to the input sequence.
    ///
    /// # Panics
    ///
    /// Panics if no cached forward call is available.
    pub fn backward(&mut self, grad_h_final: &[f64]) -> Vec<Vec<f64>> {
        self.backward_batch(&Tensor2::from_row(grad_h_final))
            .into_iter()
            .map(Tensor2::into_flat)
            .collect()
    }

    /// Clears gradients and cached activations.
    pub fn zero_grad(&mut self) {
        for p in self.parameters_mut() {
            p.zero_grad();
        }
        self.cached_sequences.clear();
    }

    /// All parameters, for the optimizer.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::with_capacity(12);
        out.extend(self.w.iter_mut());
        out.extend(self.u.iter_mut());
        out.extend(self.b.iter_mut());
        out
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        4 * (self.hidden_size * self.input_size
            + self.hidden_size * self.hidden_size
            + self.hidden_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut lstm = Lstm::new(4, 6, &mut rng());
        assert_eq!(lstm.input_size(), 4);
        assert_eq!(lstm.hidden_size(), 6);
        assert_eq!(lstm.num_parameters(), 4 * (6 * 4 + 36 + 6));
        let seq = vec![vec![0.1, 0.2, -0.3, 0.4], vec![1.0, -1.0, 0.5, 0.0]];
        let h1 = lstm.forward(&seq);
        let h2 = lstm.forward_inference(&seq);
        assert_eq!(h1.len(), 6);
        assert_eq!(h1, h2);
        // Different inputs give different embeddings.
        let h3 = lstm.forward_inference(&[vec![0.0; 4], vec![0.0; 4]]);
        assert_ne!(h1, h3);
    }

    #[test]
    fn infer_matches_forward_inference_bitwise() {
        let mut lstm = Lstm::new(4, 6, &mut rng());
        let seq = vec![vec![0.1, 0.2, -0.3, 0.4], vec![1.0, -1.0, 0.5, 0.0]];
        let expected = lstm.forward_inference(&seq);
        let borrowed: Vec<&[f64]> = seq.iter().map(Vec::as_slice).collect();
        let got = lstm.infer(&borrowed).to_vec();
        assert_eq!(expected, got, "scratch inference must be bit-identical");
        // Scratch is reused across calls without contaminating results.
        assert_eq!(expected, lstm.infer(&borrowed).to_vec());
        // Clones start with fresh scratch but identical weights.
        assert_eq!(expected, lstm.clone().infer(&borrowed).to_vec());
    }

    #[test]
    fn batched_forward_and_infer_match_per_sample_rows() {
        let mut lstm = Lstm::new(3, 5, &mut rng());
        let sequences = [
            vec![vec![0.2, -0.4, 0.6], vec![-0.1, 0.3, 0.5]],
            vec![vec![1.0, 0.0, -1.0], vec![0.7, 0.7, 0.0]],
            vec![vec![-0.5, 0.5, 0.1], vec![0.0, -0.9, 0.4]],
        ];
        // Pack: one tensor per time step, one row per sequence.
        let steps: Vec<Tensor2> = (0..2)
            .map(|t| Tensor2::from_rows(3, sequences.iter().map(|s| s[t].as_slice())))
            .collect();
        let batched = lstm.forward_batch(&steps);
        for (b, seq) in sequences.iter().enumerate() {
            assert_eq!(batched.row(b), lstm.forward_inference(seq).as_slice());
        }
        let refs: Vec<&Tensor2> = steps.iter().collect();
        let inferred = lstm.infer_batch(&refs).clone();
        assert_eq!(inferred, batched);
        lstm.zero_grad();
    }

    #[test]
    fn backward_batch_matches_reverse_per_sample_replay() {
        let mut batched = Lstm::new(3, 4, &mut rng());
        let mut serial = batched.clone();
        let sequences = [
            vec![vec![0.2, -0.4, 0.6], vec![-0.1, 0.3, 0.5]],
            vec![vec![1.0, 0.0, -1.0], vec![0.7, 0.7, 0.0]],
            vec![vec![-0.5, 0.5, 0.1], vec![0.0, -0.9, 0.4]],
        ];
        let grads = [
            vec![1.0, -0.5, 0.2, 0.8],
            vec![-1.0, 0.1, 0.4, 0.4],
            vec![0.3, 0.9, -0.2, 0.0],
        ];
        let steps: Vec<Tensor2> = (0..2)
            .map(|t| Tensor2::from_rows(3, sequences.iter().map(|s| s[t].as_slice())))
            .collect();
        batched.forward_batch(&steps);
        let g = Tensor2::from_rows(4, grads.iter().map(Vec::as_slice));
        let gx_batched = batched.backward_batch(&g);

        for seq in &sequences {
            serial.forward(seq);
        }
        let mut gx_serial: Vec<Vec<Vec<f64>>> = Vec::new();
        for grad in grads.iter().rev() {
            gx_serial.push(serial.backward(grad));
        }
        gx_serial.reverse();
        for (b, gs) in gx_serial.iter().enumerate() {
            for (t, gt) in gs.iter().enumerate() {
                assert_eq!(gx_batched[t].row(b), gt.as_slice(), "b={b} t={t}");
            }
        }
        let pb = batched.parameters_mut();
        let ps = serial.parameters_mut();
        for (a, b) in pb.iter().zip(&ps) {
            assert_eq!(a.grad, b.grad);
        }
    }

    #[test]
    fn hidden_state_bounded_by_tanh() {
        let mut lstm = Lstm::new(3, 5, &mut rng());
        let h = lstm.forward(&[vec![10.0, -10.0, 10.0]]);
        assert!(h.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(3, 4, &mut rng());
        let seq = vec![vec![0.2, -0.4, 0.6], vec![-0.1, 0.3, 0.5]];
        // Loss = sum of final hidden state.
        let base: f64 = lstm.forward(&seq).iter().sum();
        let grad_x = lstm.backward(&[1.0; 4]);
        let eps = 1e-6;
        for t in 0..seq.len() {
            for i in 0..3 {
                let mut perturbed = seq.clone();
                perturbed[t][i] += eps;
                let fd = (lstm.forward_inference(&perturbed).iter().sum::<f64>() - base) / eps;
                assert!(
                    (fd - grad_x[t][i]).abs() < 1e-4,
                    "t={t} i={i}: fd {fd} vs analytic {}",
                    grad_x[t][i]
                );
            }
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let seq = vec![vec![0.5, -0.2], vec![0.1, 0.9]];
        let base: f64 = lstm.forward(&seq).iter().sum();
        lstm.backward(&[1.0; 3]);
        let eps = 1e-6;
        // Check an entry of the input-gate W, the forget-gate U and the
        // output-gate bias.
        let checks: [(usize, usize); 3] = [(0, 1), (5, 2), (11, 0)];
        for (param_idx, entry) in checks {
            let analytic = {
                let mut lstm_ref = lstm.clone();
                lstm_ref.parameters_mut()[param_idx].grad[entry]
            };
            let mut perturbed = lstm.clone();
            perturbed.parameters_mut()[param_idx].value[entry] += eps;
            let fd = (perturbed.forward_inference(&seq).iter().sum::<f64>() - base) / eps;
            assert!(
                (fd - analytic).abs() < 1e-4,
                "param {param_idx} entry {entry}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_sequence_panics() {
        Lstm::new(2, 2, &mut rng()).forward(&[]);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut lstm = Lstm::new(2, 2, &mut rng());
        lstm.forward(&[vec![1.0, 1.0]]);
        lstm.backward(&[1.0, 1.0]);
        lstm.zero_grad();
        assert!(lstm
            .parameters_mut()
            .iter()
            .all(|p| p.grad.iter().all(|g| *g == 0.0)));
    }
}
