//! Row-major matrices and the blocked, deterministically-ordered matmul
//! kernels behind every batched network path.
//!
//! The per-vector inference/training paths (`Param::matvec` and friends)
//! accumulate each output element as one sequential left-to-right sum over
//! the contraction dimension. The kernels here block the *independent*
//! dimensions (batch rows and output features) for instruction-level
//! parallelism and cache reuse, but keep exactly one accumulator per output
//! element that walks the contraction dimension in the same fixed order —
//! so a batched product is **bit-for-bit identical, row by row, to the
//! per-vector loops** for every batch size (property-tested). That is what
//! lets the whole stack (layers, heads, PPO, beam search) migrate to
//! batched inference without perturbing a single determinism test.
//!
//! Why batching wins even without SIMD reassociation: a lone dot product is
//! latency-bound on its single accumulator chain. A 4x4 register tile runs
//! sixteen independent chains side by side, which is where the measured
//! multi-x `exp_nn_throughput` speedup comes from.

use serde::{Deserialize, Serialize};

/// Register-tile height (rows of the left operand per tile).
const MR: usize = 4;
/// Register-tile width (output columns per tile).
const NR: usize = 4;

/// A dense row-major matrix of `f64` values.
///
/// `Tensor2` is the batch currency of the NN crate: a batch of `B` feature
/// vectors of length `F` is a `B x F` tensor whose row `i` is sample `i`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor2 {
    /// Creates a zero-filled `rows x cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Self { rows, cols, data }
    }

    /// A `1 x len` tensor holding one row (the batch-of-1 constructor the
    /// per-vector wrappers use).
    pub fn from_row(row: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Builds a tensor from an iterator of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `cols`.
    pub fn from_rows<'a, I>(cols: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut out = Self::zeros(0, cols);
        for row in rows {
            out.push_row(row);
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The row-major backing slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the row-major backing slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "pushed row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Reshapes to `rows x cols`, zero-filling (scratch reuse: contents are
    /// always fully overwritten by the caller).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies a row-major buffer into the tensor, reshaping to
    /// `rows x cols` while reusing the existing allocation. This is the
    /// arena-friendly counterpart of [`Tensor2::from_flat`]: a long-lived
    /// scratch tensor (e.g. an inference aggregator's per-tick step
    /// tensors) can be refilled every tick without a fresh `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn assign_flat(&mut self, rows: usize, cols: usize, data: &[f64]) {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.extend_from_slice(data);
    }

    /// Consumes the tensor and returns the row-major buffer (used by the
    /// batch-of-1 wrappers to hand back a plain `Vec`).
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// `self * rhs^T`: `(M x K) * (N x K)^T -> M x N`.
    ///
    /// Row `i` of the result is exactly `rhs.matvec(self.row(i))` bit for
    /// bit. This is the batched **forward** product (`rhs` holds one weight
    /// row per output feature).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Tensor2::matmul_nt`] into a caller-provided tensor (resized to
    /// `M x N`).
    pub fn matmul_nt_into(&self, rhs: &Tensor2, out: &mut Tensor2) {
        assert_eq!(self.cols, rhs.cols, "matmul_nt contraction mismatch");
        out.resize(self.rows, rhs.rows);
        matmul_nt(
            &self.data,
            &rhs.data,
            self.rows,
            rhs.rows,
            self.cols,
            &mut out.data,
        );
    }

    /// `self * rhs`: `(M x K) * (K x N) -> M x N`.
    ///
    /// Row `i` of the result is exactly `rhs.matvec_transposed(self.row(i))`
    /// bit for bit (the batched **input-gradient** product).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_nn(&self, rhs: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(self.rows, rhs.cols);
        self.matmul_nn_into(rhs, &mut out);
        out
    }

    /// [`Tensor2::matmul_nn`] into a caller-provided tensor (resized to
    /// `M x N`).
    pub fn matmul_nn_into(&self, rhs: &Tensor2, out: &mut Tensor2) {
        assert_eq!(self.cols, rhs.rows, "matmul_nn contraction mismatch");
        out.resize(self.rows, rhs.cols);
        matmul_nn(
            &self.data,
            &rhs.data,
            self.rows,
            rhs.cols,
            self.cols,
            &mut out.data,
        );
    }
}

/// `out = a * b^T` where `a` is `m x k`, `b` is `n x k`, `out` is `m x n`,
/// all row-major. Each output element is one sequential sum over `p = 0..k`
/// (bit-identical to [`crate::Param::matvec`] per row); the `m`/`n`
/// dimensions are register-tiled `MR x NR` for instruction-level
/// parallelism.
pub fn matmul_nt(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 1 {
        // Per-vector fast path: the classic matvec loop, no tiling overhead
        // (this is the shape every rollout-time inference call takes).
        for (j, slot) in out.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (av, bv) in a.iter().zip(brow) {
                acc += av * bv;
            }
            *slot = acc;
        }
        return;
    }
    let mut i = 0;
    while i < m {
        let mh = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let nh = NR.min(n - j);
            if mh == MR && nh == NR {
                // Full register tile: 16 independent accumulator chains.
                let mut acc = [[0.0f64; NR]; MR];
                for p in 0..k {
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * k + p];
                        for (c, slot) in accr.iter_mut().enumerate() {
                            *slot += av * b[(j + c) * k + p];
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(accr);
                }
            } else {
                // Edge tile: plain sequential dot per element (same order).
                for r in 0..mh {
                    let arow = &a[(i + r) * k..(i + r + 1) * k];
                    for c in 0..nh {
                        let brow = &b[(j + c) * k..(j + c + 1) * k];
                        let mut acc = 0.0;
                        for (av, bv) in arow.iter().zip(brow) {
                            acc += av * bv;
                        }
                        out[(i + r) * n + j + c] = acc;
                    }
                }
            }
            j += nh;
        }
        i += mh;
    }
}

/// `out = a * b` where `a` is `m x k`, `b` is `k x n`, `out` is `m x n`,
/// all row-major. Accumulation runs over `p = 0..k` in ascending order with
/// one running accumulator per output element — bit-identical to
/// [`crate::Param::matvec_transposed`] per row. The kernel streams whole
/// rows of `b` (contiguous) while keeping an `MR`-row band of `out` hot.
pub fn matmul_nn(a: &[f64], b: &[f64], m: usize, n: usize, k: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.iter_mut().for_each(|o| *o = 0.0);
    let mut i = 0;
    while i < m {
        let mh = MR.min(m - i);
        for p in 0..k {
            let brow = &b[p * n..(p + 1) * n];
            for r in 0..mh {
                let av = a[(i + r) * k + p];
                let orow = &mut out[(i + r) * n..(i + r + 1) * n];
                for (slot, bv) in orow.iter_mut().zip(brow) {
                    *slot += av * bv;
                }
            }
        }
        i += mh;
    }
}

/// `acc += a^T * b` contracted over the **batch** dimension in *descending*
/// order: `a` is `bsz x m` (e.g. upstream gradients), `b` is `bsz x n`
/// (e.g. cached inputs), `acc` is `m x n` (e.g. a weight gradient).
///
/// Each target element is updated as one running sum seeded from its
/// current value with batch rows added from `bsz - 1` down to `0` — exactly
/// the sequence of `+=` a reverse-order per-sample replay of
/// [`crate::Param::add_outer_to_grad`] performs, which is what keeps the
/// batched PPO update bit-identical to the stacked-replay path.
pub fn add_matmul_tn_rev(a: &[f64], b: &[f64], bsz: usize, m: usize, n: usize, acc: &mut [f64]) {
    debug_assert_eq!(a.len(), bsz * m);
    debug_assert_eq!(b.len(), bsz * n);
    debug_assert_eq!(acc.len(), m * n);
    let mut i = 0;
    while i < m {
        let mh = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let nh = NR.min(n - j);
            if mh == MR && nh == NR {
                let mut tile = [[0.0f64; NR]; MR];
                for (r, tr) in tile.iter_mut().enumerate() {
                    for (c, slot) in tr.iter_mut().enumerate() {
                        *slot = acc[(i + r) * n + j + c];
                    }
                }
                for p in (0..bsz).rev() {
                    for (r, tr) in tile.iter_mut().enumerate() {
                        let av = a[p * m + i + r];
                        for (c, slot) in tr.iter_mut().enumerate() {
                            *slot += av * b[p * n + j + c];
                        }
                    }
                }
                for (r, tr) in tile.iter().enumerate() {
                    acc[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(tr);
                }
            } else {
                for r in 0..mh {
                    for c in 0..nh {
                        let mut slot = acc[(i + r) * n + j + c];
                        for p in (0..bsz).rev() {
                            slot += a[p * m + i + r] * b[p * n + j + c];
                        }
                        acc[(i + r) * n + j + c] = slot;
                    }
                }
            }
            j += nh;
        }
        i += mh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Tensor2 {
        Tensor2::from_flat(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect(),
        )
    }

    fn random_param(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Param {
        let mut p = Param::zeros(rows, cols);
        p.value = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        p
    }

    #[test]
    fn shape_accessors_and_rows() {
        let mut t = Tensor2::zeros(0, 3);
        assert!(t.is_empty());
        t.push_row(&[1.0, 2.0, 3.0]);
        t.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!((t.rows(), t.cols(), t.len()), (2, 3, 6));
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        t.row_mut(0)[0] = 9.0;
        assert_eq!(t.data()[0], 9.0);
        let u = Tensor2::from_rows(3, [t.row(0), t.row(1)]);
        assert_eq!(u, t);
        assert_eq!(Tensor2::from_row(&[1.0, 2.0]).into_flat(), vec![1.0, 2.0]);
    }

    #[test]
    fn resize_reshapes_and_zeroes() {
        let mut t = Tensor2::from_row(&[1.0, 2.0]);
        t.resize(2, 3);
        assert_eq!((t.rows(), t.cols()), (2, 3));
        assert!(t.data().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn matmul_nt_matches_per_row_matvec_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Shapes straddling the register-tile boundaries.
        for (m, n, k) in [(1, 7, 5), (4, 4, 9), (5, 6, 3), (16, 9, 17), (3, 12, 1)] {
            let a = random_tensor(m, k, &mut rng);
            let w = random_param(n, k, &mut rng);
            let wt = Tensor2::from_flat(n, k, w.value.clone());
            let out = a.matmul_nt(&wt);
            for i in 0..m {
                assert_eq!(out.row(i), w.matvec(a.row(i)).as_slice(), "row {i}");
            }
        }
    }

    #[test]
    fn matmul_nn_matches_per_row_matvec_transposed_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for (m, n, k) in [(1, 5, 4), (4, 4, 4), (6, 10, 7), (13, 3, 8)] {
            let a = random_tensor(m, k, &mut rng);
            let w = random_param(k, n, &mut rng);
            let wt = Tensor2::from_flat(k, n, w.value.clone());
            let out = a.matmul_nn(&wt);
            for i in 0..m {
                assert_eq!(
                    out.row(i),
                    w.matvec_transposed(a.row(i)).as_slice(),
                    "row {i}"
                );
            }
        }
    }

    #[test]
    fn add_matmul_tn_rev_matches_reverse_outer_product_replay() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for (bsz, m, n) in [(1, 3, 4), (4, 4, 4), (7, 6, 9), (16, 5, 5)] {
            let dy = random_tensor(bsz, m, &mut rng);
            let x = random_tensor(bsz, n, &mut rng);
            // Reference: per-sample add_outer_to_grad in reverse batch order,
            // starting from a non-zero accumulator.
            let mut reference = random_param(m, n, &mut rng);
            reference.grad = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut batched = reference.grad.clone();
            for p in (0..bsz).rev() {
                reference.add_outer_to_grad(dy.row(p), x.row(p));
            }
            add_matmul_tn_rev(dy.data(), x.data(), bsz, m, n, &mut batched);
            assert_eq!(batched, reference.grad, "bsz={bsz} m={m} n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "contraction mismatch")]
    fn matmul_checks_dimensions() {
        Tensor2::zeros(2, 3).matmul_nt(&Tensor2::zeros(2, 4));
    }
}
