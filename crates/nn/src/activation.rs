//! Element-wise activations and (masked) softmax utilities.

/// ReLU forward: `max(0, x)` element-wise.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| v.max(0.0)).collect()
}

/// ReLU applied in place (bit-identical to [`relu`], without allocating).
pub fn relu_in_place(x: &mut [f64]) {
    for v in x {
        *v = v.max(0.0);
    }
}

/// ReLU backward: gradient passes only where the forward output was
/// positive.
pub fn relu_backward(output: &[f64], grad_output: &[f64]) -> Vec<f64> {
    output
        .iter()
        .zip(grad_output)
        .map(|(o, g)| if *o > 0.0 { *g } else { 0.0 })
        .collect()
}

/// Sigmoid forward.
pub fn sigmoid(x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect()
}

/// Sigmoid applied in place (bit-identical to [`sigmoid`], without
/// allocating).
pub fn sigmoid_in_place(x: &mut [f64]) {
    for v in x {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

/// Sigmoid backward given the forward *output*.
pub fn sigmoid_backward(output: &[f64], grad_output: &[f64]) -> Vec<f64> {
    output
        .iter()
        .zip(grad_output)
        .map(|(o, g)| g * o * (1.0 - o))
        .collect()
}

/// Tanh forward.
pub fn tanh(x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| v.tanh()).collect()
}

/// Tanh applied in place (bit-identical to [`tanh`], without allocating).
pub fn tanh_in_place(x: &mut [f64]) {
    for v in x {
        *v = v.tanh();
    }
}

/// Tanh backward given the forward *output*.
pub fn tanh_backward(output: &[f64], grad_output: &[f64]) -> Vec<f64> {
    output
        .iter()
        .zip(grad_output)
        .map(|(o, g)| g * (1.0 - o * o))
        .collect()
}

/// Numerically stable softmax.
///
/// Returns a uniform distribution for an empty input.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Softmax restricted to the positions where `mask` is `true`; masked-out
/// positions get probability exactly 0.
///
/// # Panics
///
/// Panics if `mask.len() != logits.len()` or if no position is allowed.
pub fn masked_softmax(logits: &[f64], mask: &[bool]) -> Vec<f64> {
    assert_eq!(logits.len(), mask.len(), "mask length mismatch");
    assert!(
        mask.iter().any(|m| *m),
        "masked_softmax requires at least one allowed position"
    );
    let max = logits
        .iter()
        .zip(mask)
        .filter(|(_, m)| **m)
        .map(|(l, _)| *l)
        .fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits
        .iter()
        .zip(mask)
        .map(|(l, m)| if *m { (l - max).exp() } else { 0.0 })
        .collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Gradient of a scalar loss with respect to the logits, given the softmax
/// probabilities and the gradient with respect to the probabilities:
/// `dL/dlogit_i = p_i * (dL/dp_i - sum_j p_j dL/dp_j)`.
pub fn softmax_backward(probs: &[f64], grad_probs: &[f64]) -> Vec<f64> {
    let dot: f64 = probs.iter().zip(grad_probs).map(|(p, g)| p * g).sum();
    probs
        .iter()
        .zip(grad_probs)
        .map(|(p, g)| p * (g - dot))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn relu_forward_backward() {
        let x = [-1.0, 0.0, 2.0];
        let y = relu(&x);
        assert_eq!(y, vec![0.0, 0.0, 2.0]);
        let gx = relu_backward(&y, &[1.0, 1.0, 1.0]);
        assert_eq!(gx, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_and_tanh_shapes() {
        let x = [0.0, 1.0, -1.0];
        let s = sigmoid(&x);
        assert_close(s[0], 0.5);
        assert!(s[1] > 0.7 && s[2] < 0.3);
        let t = tanh(&x);
        assert_close(t[0], 0.0);
        assert!(t[1] > 0.7 && t[2] < -0.7);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let x = [0.3, -0.7, 1.5];
        let eps = 1e-6;
        let y = sigmoid(&x);
        let grad = sigmoid_backward(&y, &[1.0, 1.0, 1.0]);
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            xp[i] += eps;
            let fd = (sigmoid(&xp)[i] - y[i]) / eps;
            assert!((fd - grad[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        assert_close(p.iter().sum::<f64>(), 1.0);
        assert_close(p[0], 1.0 / 3.0);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn masked_softmax_zeroes_masked_entries() {
        let p = masked_softmax(&[1.0, 2.0, 3.0], &[true, false, true]);
        assert_eq!(p[1], 0.0);
        assert_close(p.iter().sum::<f64>(), 1.0);
        assert!(p[2] > p[0]);
    }

    #[test]
    #[should_panic(expected = "at least one allowed")]
    fn masked_softmax_requires_an_allowed_position() {
        masked_softmax(&[1.0, 2.0], &[false, false]);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        // Loss = -log p[target]; compare analytic gradient with finite
        // differences through the softmax.
        let logits = [0.5, -1.0, 2.0, 0.0];
        let target = 2;
        let eps = 1e-6;
        let probs = softmax(&logits);
        // dL/dp_i = -1/p_target at i == target else 0.
        let mut grad_probs = vec![0.0; logits.len()];
        grad_probs[target] = -1.0 / probs[target];
        let grad_logits = softmax_backward(&probs, &grad_probs);
        for i in 0..logits.len() {
            let mut lp = logits.to_vec();
            lp[i] += eps;
            let loss_p = -softmax(&lp)[target].ln();
            let loss = -probs[target].ln();
            let fd = (loss_p - loss) / eps;
            assert!(
                (fd - grad_logits[i]).abs() < 1e-4,
                "index {i}: fd {fd} vs analytic {}",
                grad_logits[i]
            );
        }
    }
}
