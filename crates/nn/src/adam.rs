//! The Adam optimizer and global-norm gradient clipping.

use serde::{Deserialize, Serialize};

use crate::param::Param;

/// Adam optimizer state.
///
/// The optimizer is created once for a fixed set of parameters and stepped
/// with the *same parameters in the same order* every time (the per-tensor
/// first/second-moment state is keyed by position).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub epsilon: f64,
    step: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(learning_rate: f64) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one Adam update to the parameters, consuming their gradients
    /// (gradients are cleared afterwards).
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters changes between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "parameter set changed between optimizer steps"
        );
        self.step += 1;
        let t = self.step as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (idx, p) in params.iter_mut().enumerate() {
            assert_eq!(self.m[idx].len(), p.len(), "parameter shape changed");
            for i in 0..p.len() {
                let g = p.grad[i];
                self.m[idx][i] = self.beta1 * self.m[idx][i] + (1.0 - self.beta1) * g;
                self.v[idx][i] = self.beta2 * self.v[idx][i] + (1.0 - self.beta2) * g * g;
                let m_hat = self.m[idx][i] / bias1;
                let v_hat = self.v[idx][i] / bias2;
                p.value[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            p.zero_grad();
        }
    }
}

/// Clips the global gradient norm of a parameter set to `max_norm`,
/// returning the norm before clipping.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f64) -> f64 {
    let norm: f64 = params
        .iter()
        .map(|p| p.grad_norm_squared())
        .sum::<f64>()
        .sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.scale_grad(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize f(x) = (x - 3)^2 with Adam.
        let mut x = Param::zeros(1, 1);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let grad = 2.0 * (x.value[0] - 3.0);
            x.grad[0] = grad;
            adam.step(&mut [&mut x]);
        }
        assert!((x.value[0] - 3.0).abs() < 1e-2, "x = {}", x.value[0]);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn adam_handles_multiple_parameters() {
        let mut a = Param::zeros(2, 1);
        let mut b = Param::zeros(1, 1);
        let mut adam = Adam::new(0.05);
        for _ in 0..800 {
            // f = (a0 - 1)^2 + (a1 + 2)^2 + (b - 0.5)^2
            a.grad[0] = 2.0 * (a.value[0] - 1.0);
            a.grad[1] = 2.0 * (a.value[1] + 2.0);
            b.grad[0] = 2.0 * (b.value[0] - 0.5);
            adam.step(&mut [&mut a, &mut b]);
        }
        assert!((a.value[0] - 1.0).abs() < 0.05);
        assert!((a.value[1] + 2.0).abs() < 0.05);
        assert!((b.value[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn step_clears_gradients() {
        let mut x = Param::zeros(1, 1);
        x.grad[0] = 1.0;
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut x]);
        assert_eq!(x.grad[0], 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_large_gradients() {
        let mut a = Param::zeros(1, 2);
        a.grad = vec![3.0, 4.0];
        let norm = clip_grad_norm(&mut [&mut a], 1.0);
        assert!((norm - 5.0).abs() < 1e-12);
        let new_norm = (a.grad[0] * a.grad[0] + a.grad[1] * a.grad[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut a = Param::zeros(1, 2);
        a.grad = vec![0.1, 0.2];
        clip_grad_norm(&mut [&mut a], 10.0);
        assert_eq!(a.grad, vec![0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "parameter set changed")]
    fn changing_parameter_count_panics() {
        let mut a = Param::zeros(1, 1);
        let mut b = Param::zeros(1, 1);
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut a]);
        adam.step(&mut [&mut a, &mut b]);
    }
}
