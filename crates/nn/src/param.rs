//! Trainable parameter tensors.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tensor::{add_matmul_tn_rev, matmul_nn, matmul_nt, Tensor2};

/// A trainable parameter: a dense matrix (or vector when `cols == 1`) with
/// an accumulated gradient.
///
/// Values are stored row-major. Layers accumulate into [`Param::grad`]
/// during the backward pass; the optimizer consumes and clears it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Number of rows (output features for a weight matrix).
    pub rows: usize,
    /// Number of columns (input features for a weight matrix).
    pub cols: usize,
    /// Row-major values.
    pub value: Vec<f64>,
    /// Row-major accumulated gradient.
    pub grad: Vec<f64>,
}

impl Param {
    /// Creates a parameter filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            value: vec![0.0; rows * cols],
            grad: vec![0.0; rows * cols],
        }
    }

    /// Creates a parameter with Xavier/Glorot-uniform initialization.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let value = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self {
            rows,
            cols,
            value,
            grad: vec![0.0; rows * cols],
        }
    }

    /// Number of scalar values.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True if the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.value[row * self.cols + col]
    }

    /// Adds `g` to the gradient at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add_grad(&mut self, row: usize, col: usize, g: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.grad[row * self.cols + col] += g;
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Matrix-vector product `value * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (slot, row) in out.iter_mut().zip(self.value.chunks_exact(self.cols)) {
            *slot = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
        }
        out
    }

    /// Matrix-vector product `value * x` written into `out` (the
    /// allocation-free twin of [`Param::matvec`], used on inference hot
    /// paths; produces bit-identical results).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output size mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.value[r * self.cols..(r + 1) * self.cols];
            *slot = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
        }
    }

    /// Transposed matrix-vector product `value^T * y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn matvec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (yr, row) in y.iter().zip(self.value.chunks_exact(self.cols)) {
            for (slot, w) in out.iter_mut().zip(row) {
                *slot += w * yr;
            }
        }
        out
    }

    /// Accumulates the outer product `y * x^T` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows` or `x.len() != cols`.
    pub fn add_outer_to_grad(&mut self, y: &[f64], x: &[f64]) {
        assert_eq!(y.len(), self.rows, "outer product row mismatch");
        assert_eq!(x.len(), self.cols, "outer product col mismatch");
        for (r, yr) in y.iter().enumerate() {
            let row = &mut self.grad[r * self.cols..(r + 1) * self.cols];
            for (c, xc) in x.iter().enumerate() {
                row[c] += yr * xc;
            }
        }
    }

    /// Batched matrix product `x * value^T` (`x` is one sample per row):
    /// row `i` of the result is bit-identical to
    /// [`Param::matvec`]`(x.row(i))` for every batch size. Writes into
    /// `out`, resizing it to `x.rows() x self.rows`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.cols`.
    pub fn matmul_batch_into(&self, x: &Tensor2, out: &mut Tensor2) {
        assert_eq!(x.cols(), self.cols, "matmul_batch dimension mismatch");
        out.resize(x.rows(), self.rows);
        matmul_nt(
            x.data(),
            &self.value,
            x.rows(),
            self.rows,
            self.cols,
            out.data_mut(),
        );
    }

    /// Allocating twin of [`Param::matmul_batch_into`].
    pub fn matmul_batch(&self, x: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(0, 0);
        self.matmul_batch_into(x, &mut out);
        out
    }

    /// Batched transposed product `y * value` (`y` is one upstream gradient
    /// per row): row `i` is bit-identical to
    /// [`Param::matvec_transposed`]`(y.row(i))`. Writes into `out`,
    /// resizing it to `y.rows() x self.cols`.
    ///
    /// # Panics
    ///
    /// Panics if `y.cols() != self.rows`.
    pub fn matmul_batch_transposed_into(&self, y: &Tensor2, out: &mut Tensor2) {
        assert_eq!(
            y.cols(),
            self.rows,
            "matmul_batch_transposed dimension mismatch"
        );
        out.resize(y.rows(), self.cols);
        matmul_nn(
            y.data(),
            &self.value,
            y.rows(),
            self.cols,
            self.rows,
            out.data_mut(),
        );
    }

    /// Allocating twin of [`Param::matmul_batch_transposed_into`].
    pub fn matmul_batch_transposed(&self, y: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(0, 0);
        self.matmul_batch_transposed_into(y, &mut out);
        out
    }

    /// Accumulates the outer products `y.row(b) * x.row(b)^T` into the
    /// gradient for `b` from the **last** batch row down to the first —
    /// bit-identical to calling [`Param::add_outer_to_grad`] once per row
    /// in reverse order, which is the order a per-sample backward replay
    /// visits a minibatch (layer caches are stacks).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or the column counts do not match
    /// the parameter shape.
    pub fn add_outer_batch_to_grad(&mut self, y: &Tensor2, x: &Tensor2) {
        assert_eq!(y.rows(), x.rows(), "outer product batch mismatch");
        assert_eq!(y.cols(), self.rows, "outer product row mismatch");
        assert_eq!(x.cols(), self.cols, "outer product col mismatch");
        add_matmul_tn_rev(
            y.data(),
            x.data(),
            y.rows(),
            self.rows,
            self.cols,
            &mut self.grad,
        );
    }

    /// L2 norm of the gradient (used for gradient clipping).
    pub fn grad_norm_squared(&self) -> f64 {
        self.grad.iter().map(|g| g * g).sum()
    }

    /// Scales the gradient in place.
    pub fn scale_grad(&mut self, factor: f64) {
        self.grad.iter_mut().for_each(|g| *g *= factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_and_shape() {
        let p = Param::zeros(3, 4);
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
        assert_eq!(p.at(2, 3), 0.0);
    }

    #[test]
    fn xavier_init_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = Param::xavier(64, 32, &mut rng);
        let limit = (6.0 / 96.0f64).sqrt();
        assert!(p.value.iter().all(|v| v.abs() <= limit));
        // Not all zeros.
        assert!(p.value.iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn matvec_and_transpose() {
        let mut p = Param::zeros(2, 3);
        p.value = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(p.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(p.matvec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_grad_accumulation() {
        let mut p = Param::zeros(2, 2);
        p.add_outer_to_grad(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(p.grad, vec![3.0, 4.0, 6.0, 8.0]);
        p.add_outer_to_grad(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(p.grad, vec![4.0, 5.0, 6.0, 8.0]);
        p.zero_grad();
        assert!(p.grad.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut p = Param::zeros(1, 2);
        p.grad = vec![3.0, 4.0];
        assert_eq!(p.grad_norm_squared(), 25.0);
        p.scale_grad(0.5);
        assert_eq!(p.grad, vec![1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        Param::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
