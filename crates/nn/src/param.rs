//! Trainable parameter tensors.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable parameter: a dense matrix (or vector when `cols == 1`) with
/// an accumulated gradient.
///
/// Values are stored row-major. Layers accumulate into [`Param::grad`]
/// during the backward pass; the optimizer consumes and clears it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Number of rows (output features for a weight matrix).
    pub rows: usize,
    /// Number of columns (input features for a weight matrix).
    pub cols: usize,
    /// Row-major values.
    pub value: Vec<f64>,
    /// Row-major accumulated gradient.
    pub grad: Vec<f64>,
}

impl Param {
    /// Creates a parameter filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            value: vec![0.0; rows * cols],
            grad: vec![0.0; rows * cols],
        }
    }

    /// Creates a parameter with Xavier/Glorot-uniform initialization.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let value = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self {
            rows,
            cols,
            value,
            grad: vec![0.0; rows * cols],
        }
    }

    /// Number of scalar values.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True if the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.value[row * self.cols + col]
    }

    /// Adds `g` to the gradient at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add_grad(&mut self, row: usize, col: usize, g: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.grad[row * self.cols + col] += g;
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Matrix-vector product `value * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (slot, row) in out.iter_mut().zip(self.value.chunks_exact(self.cols)) {
            *slot = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
        }
        out
    }

    /// Matrix-vector product `value * x` written into `out` (the
    /// allocation-free twin of [`Param::matvec`], used on inference hot
    /// paths; produces bit-identical results).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output size mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.value[r * self.cols..(r + 1) * self.cols];
            *slot = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
        }
    }

    /// Transposed matrix-vector product `value^T * y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn matvec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (yr, row) in y.iter().zip(self.value.chunks_exact(self.cols)) {
            for (slot, w) in out.iter_mut().zip(row) {
                *slot += w * yr;
            }
        }
        out
    }

    /// Accumulates the outer product `y * x^T` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows` or `x.len() != cols`.
    pub fn add_outer_to_grad(&mut self, y: &[f64], x: &[f64]) {
        assert_eq!(y.len(), self.rows, "outer product row mismatch");
        assert_eq!(x.len(), self.cols, "outer product col mismatch");
        for (r, yr) in y.iter().enumerate() {
            let row = &mut self.grad[r * self.cols..(r + 1) * self.cols];
            for (c, xc) in x.iter().enumerate() {
                row[c] += yr * xc;
            }
        }
    }

    /// L2 norm of the gradient (used for gradient clipping).
    pub fn grad_norm_squared(&self) -> f64 {
        self.grad.iter().map(|g| g * g).sum()
    }

    /// Scales the gradient in place.
    pub fn scale_grad(&mut self, factor: f64) {
        self.grad.iter_mut().for_each(|g| *g *= factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_and_shape() {
        let p = Param::zeros(3, 4);
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
        assert_eq!(p.at(2, 3), 0.0);
    }

    #[test]
    fn xavier_init_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = Param::xavier(64, 32, &mut rng);
        let limit = (6.0 / 96.0f64).sqrt();
        assert!(p.value.iter().all(|v| v.abs() <= limit));
        // Not all zeros.
        assert!(p.value.iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn matvec_and_transpose() {
        let mut p = Param::zeros(2, 3);
        p.value = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(p.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(p.matvec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_grad_accumulation() {
        let mut p = Param::zeros(2, 2);
        p.add_outer_to_grad(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(p.grad, vec![3.0, 4.0, 6.0, 8.0]);
        p.add_outer_to_grad(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(p.grad, vec![4.0, 5.0, 6.0, 8.0]);
        p.zero_grad();
        assert!(p.grad.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut p = Param::zeros(1, 2);
        p.grad = vec![3.0, 4.0];
        assert_eq!(p.grad_norm_squared(), 25.0);
        p.scale_grad(0.5);
        assert_eq!(p.grad, vec![1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        Param::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
