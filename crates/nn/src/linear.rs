//! Fully connected (dense) layers and the ReLU MLP used as the policy
//! backbone.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::{relu, relu_backward, relu_in_place};
use crate::param::Param;
use crate::scratch::{resize_buffer, Scratch};

/// A fully connected layer `y = W x + b`.
///
/// The layer caches the inputs of every forward call since the last
/// [`Linear::zero_grad`] so that backward passes can be replayed in reverse
/// order (the usual pattern when processing a minibatch one sample at a
/// time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    bias: Param,
    #[serde(skip)]
    cached_inputs: Vec<Vec<f64>>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights.
    pub fn new<R: Rng>(input: usize, output: usize, rng: &mut R) -> Self {
        Self {
            weight: Param::xavier(output, input, rng),
            bias: Param::zeros(output, 1),
            cached_inputs: Vec::new(),
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.weight.cols
    }

    /// Output feature count.
    pub fn output_size(&self) -> usize {
        self.weight.rows
    }

    /// Forward pass, caching the input for a later backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input size.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut y = self.weight.matvec(x);
        for (yi, b) in y.iter_mut().zip(&self.bias.value) {
            *yi += b;
        }
        self.cached_inputs.push(x.to_vec());
        y
    }

    /// Forward pass without caching (inference only).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input size.
    pub fn forward_inference(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.weight.matvec(x);
        for (yi, b) in y.iter_mut().zip(&self.bias.value) {
            *yi += b;
        }
        y
    }

    /// Allocation-free inference: writes `W x + b` into `out` (resizing it
    /// to the output size). Bit-identical to [`Linear::forward_inference`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input size.
    pub fn infer_into(&self, x: &[f64], out: &mut Vec<f64>) {
        resize_buffer(out, self.weight.rows);
        self.weight.matvec_into(x, out);
        for (yi, b) in out.iter_mut().zip(&self.bias.value) {
            *yi += b;
        }
    }

    /// Backward pass for the most recent un-consumed forward call.
    /// Accumulates parameter gradients and returns the gradient with respect
    /// to the input.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call to consume or the gradient
    /// length does not match the output size.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        assert_eq!(
            grad_output.len(),
            self.weight.rows,
            "gradient size mismatch"
        );
        let x = self
            .cached_inputs
            .pop()
            .expect("backward called without a matching forward");
        self.weight.add_outer_to_grad(grad_output, &x);
        for (gb, g) in self.bias.grad.iter_mut().zip(grad_output) {
            *gb += g;
        }
        self.weight.matvec_transposed(grad_output)
    }

    /// Clears gradients and cached activations.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
        self.cached_inputs.clear();
    }

    /// The layer's parameters (weight, bias), for the optimizer.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// A multi-layer perceptron with ReLU activations after every layer except
/// the last (the paper's backbone uses three 512-unit ReLU layers; heads add
/// a final linear layer without activation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    relu_output: bool,
    #[serde(skip)]
    cached_activations: Vec<Vec<Vec<f64>>>,
    /// Ping-pong buffers reused by [`Mlp::infer`].
    #[serde(skip)]
    infer_buffers: Scratch<[Vec<f64>; 2]>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[64, 512, 512]`
    /// builds two layers 64->512 and 512->512. With `relu_output == true`
    /// every layer is followed by ReLU; otherwise the final layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng>(sizes: &[usize], relu_output: bool, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least one layer");
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self {
            layers,
            relu_output,
            cached_activations: Vec::new(),
            infer_buffers: Scratch::default(),
        }
    }

    /// Output feature count.
    pub fn output_size(&self) -> usize {
        self.layers
            .last()
            .expect("at least one layer")
            .output_size()
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.layers
            .first()
            .expect("at least one layer")
            .input_size()
    }

    /// Forward pass with caching for backward. Activations are stored by
    /// move (the backward pass borrows them); only the final output is
    /// cloned once for the caller.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(n);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let input: &[f64] = activations.last().map_or(x, Vec::as_slice);
            let mut h = layer.forward(input);
            if i + 1 < n || self.relu_output {
                relu_in_place(&mut h);
            }
            activations.push(h);
        }
        let out = activations.last().cloned().unwrap_or_else(|| x.to_vec());
        self.cached_activations.push(activations);
        out
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward_inference(&h);
            h = if i + 1 < n || self.relu_output {
                relu(&pre)
            } else {
                pre
            };
        }
        h
    }

    /// Allocation-free inference using internal ping-pong buffers. Returns
    /// a slice borrowing the network's scratch; bit-identical to
    /// [`Mlp::forward_inference`].
    pub fn infer(&mut self, x: &[f64]) -> &[f64] {
        let n = self.layers.len();
        let [buf_a, buf_b] = &mut self.infer_buffers.0;
        let mut cur: &mut Vec<f64> = buf_a;
        let mut prev: &mut Vec<f64> = buf_b;
        for (i, layer) in self.layers.iter().enumerate() {
            let input: &[f64] = if i == 0 { x } else { prev };
            layer.infer_into(input, cur);
            if i + 1 < n || self.relu_output {
                relu_in_place(cur);
            }
            std::mem::swap(&mut cur, &mut prev);
        }
        if n.is_multiple_of(2) {
            &self.infer_buffers.0[1]
        } else {
            &self.infer_buffers.0[0]
        }
    }

    /// Backward pass for the most recent un-consumed forward call.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        let activations = self
            .cached_activations
            .pop()
            .expect("backward called without a matching forward");
        let n = self.layers.len();
        let mut grad = grad_output.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i + 1 < n || self.relu_output {
                grad = relu_backward(&activations[i], &grad);
            }
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Clears gradients and cached activations of all layers.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
        self.cached_activations.clear();
    }

    /// All parameters, for the optimizer.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(Linear::parameters_mut)
            .collect()
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(Linear::num_parameters).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn linear_shapes() {
        let mut l = Linear::new(4, 3, &mut rng());
        assert_eq!(l.input_size(), 4);
        assert_eq!(l.output_size(), 3);
        assert_eq!(l.num_parameters(), 15);
        let y = l.forward(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.len(), 3);
        assert_eq!(y, l.forward_inference(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn linear_gradient_matches_finite_difference() {
        let mut l = Linear::new(3, 2, &mut rng());
        let x = vec![0.5, -1.0, 2.0];
        let eps = 1e-6;

        // Loss = sum of outputs.
        let y = l.forward(&x);
        let _gx = l.backward(&[1.0, 1.0]);
        let loss = |layer: &Linear, x: &[f64]| layer.forward_inference(x).iter().sum::<f64>();
        let base = y.iter().sum::<f64>();

        // Check a few weight entries.
        for (r, c) in [(0, 0), (1, 2), (0, 1)] {
            let mut perturbed = l.clone();
            {
                let mut params = perturbed.parameters_mut();
                let idx = r * 3 + c;
                params[0].value[idx] += eps;
            }
            let fd = (loss(&perturbed, &x) - base) / eps;
            let analytic = l.parameters_mut()[0].grad[r * 3 + c];
            assert!(
                (fd - analytic).abs() < 1e-4,
                "weight ({r},{c}): fd {fd} vs {analytic}"
            );
        }
    }

    #[test]
    fn linear_input_gradient_matches_finite_difference() {
        let mut l = Linear::new(3, 2, &mut rng());
        let x = vec![0.5, -1.0, 2.0];
        let eps = 1e-6;
        let base: f64 = l.forward(&x).iter().sum();
        let gx = l.backward(&[1.0, 1.0]);
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let fd = (l.forward_inference(&xp).iter().sum::<f64>() - base) / eps;
            assert!((fd - gx[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn mlp_forward_backward_and_finite_difference() {
        let mut mlp = Mlp::new(&[4, 8, 3], false, &mut rng());
        assert_eq!(mlp.input_size(), 4);
        assert_eq!(mlp.output_size(), 3);
        let x = vec![0.1, -0.2, 0.3, 0.7];
        let y = mlp.forward(&x);
        assert_eq!(y.len(), 3);
        let gx = mlp.backward(&[1.0, 0.0, -1.0]);
        assert_eq!(gx.len(), 4);

        // Finite-difference check of the input gradient.
        let eps = 1e-6;
        let loss = |m: &Mlp, x: &[f64]| {
            let y = m.forward_inference(x);
            y[0] - y[2]
        };
        let base = loss(&mlp, &x);
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let fd = (loss(&mlp, &xp) - base) / eps;
            assert!((fd - gx[i]).abs() < 1e-4, "input {i}: {fd} vs {}", gx[i]);
        }
    }

    #[test]
    fn backward_without_forward_panics() {
        let mut l = Linear::new(2, 2, &mut rng());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.backward(&[1.0, 1.0]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn minibatch_backward_in_reverse_order() {
        // Two forward calls, two backward calls: gradients accumulate.
        let mut l = Linear::new(2, 1, &mut rng());
        l.forward(&[1.0, 0.0]);
        l.forward(&[0.0, 1.0]);
        l.backward(&[1.0]);
        l.backward(&[1.0]);
        let params = l.parameters_mut();
        // dW = [1,0] + [0,1] = [1,1]; db = 2.
        assert_eq!(params[0].grad, vec![1.0, 1.0]);
        assert_eq!(params[1].grad, vec![2.0]);
    }

    #[test]
    fn infer_matches_forward_inference_bitwise() {
        let mut mlp = Mlp::new(&[6, 9, 4], false, &mut rng());
        let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3 - 0.7).collect();
        let expected = mlp.forward_inference(&x);
        let got = mlp.infer(&x).to_vec();
        assert_eq!(expected, got, "scratch inference must be bit-identical");
        // Repeated calls reuse the buffers and stay identical.
        assert_eq!(expected, mlp.infer(&x).to_vec());
        // A relu-output MLP with an even layer count exercises the other
        // ping-pong exit.
        let mut mlp2 = Mlp::new(&[4, 4, 4], true, &mut rng());
        let y = vec![0.2, -0.4, 0.8, 0.0];
        assert_eq!(mlp2.forward_inference(&y), mlp2.infer(&y).to_vec());
    }

    #[test]
    fn linear_infer_into_matches_forward_inference() {
        let l = Linear::new(3, 5, &mut rng());
        let x = [0.4, -0.2, 1.5];
        let mut out = Vec::new();
        l.infer_into(&x, &mut out);
        assert_eq!(out, l.forward_inference(&x));
    }

    #[test]
    fn cloned_mlp_infers_identically_with_fresh_scratch() {
        let mut mlp = Mlp::new(&[3, 5, 2], false, &mut rng());
        let x = [1.0, 2.0, 3.0];
        let a = mlp.infer(&x).to_vec();
        let mut cloned = mlp.clone();
        assert_eq!(a, cloned.infer(&x).to_vec());
    }

    #[test]
    fn zero_grad_clears_state() {
        let mut mlp = Mlp::new(&[2, 4, 2], true, &mut rng());
        mlp.forward(&[1.0, 1.0]);
        mlp.backward(&[1.0, 1.0]);
        mlp.zero_grad();
        assert!(mlp
            .parameters_mut()
            .iter()
            .all(|p| p.grad.iter().all(|g| *g == 0.0)));
    }
}
