//! Fully connected (dense) layers and the ReLU MLP used as the policy
//! backbone.
//!
//! Both layer types process row-major batches ([`Tensor2`], one sample per
//! row) through `forward_batch` / `infer_batch` / `backward_batch`; the
//! per-vector entry points are thin wrappers over batch-of-1 and stay
//! bit-identical to what they computed when they were hand-rolled matvec
//! loops (the kernels fix the accumulation order — see
//! [`crate::tensor`]).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::relu_in_place;
use crate::param::Param;
use crate::scratch::{resize_buffer, Scratch};
use crate::tensor::{matmul_nt, Tensor2};

/// A fully connected layer `y = W x + b`.
///
/// The layer caches the input batch of every forward call since the last
/// [`Linear::zero_grad`] so that backward passes can be replayed in reverse
/// order (the caches are stacks; a per-vector forward pushes a batch of 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    bias: Param,
    #[serde(skip)]
    cached_inputs: Vec<Tensor2>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights.
    pub fn new<R: Rng>(input: usize, output: usize, rng: &mut R) -> Self {
        Self {
            weight: Param::xavier(output, input, rng),
            bias: Param::zeros(output, 1),
            cached_inputs: Vec::new(),
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.weight.cols
    }

    /// Output feature count.
    pub fn output_size(&self) -> usize {
        self.weight.rows
    }

    /// The shared affine map `W x + b` for one sample, written into `out`
    /// (resized to the output size). Every per-vector forward/inference
    /// entry point funnels through here.
    fn affine_row_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.weight.cols, "matvec dimension mismatch");
        resize_buffer(out, self.weight.rows);
        matmul_nt(
            x,
            &self.weight.value,
            1,
            self.weight.rows,
            self.weight.cols,
            out,
        );
        for (yi, b) in out.iter_mut().zip(&self.bias.value) {
            *yi += b;
        }
    }

    /// The shared affine map for a batch: `out = x W^T + b` row-wise, with
    /// `out` resized to `batch x output`.
    fn affine_batch_into(&self, x: &Tensor2, out: &mut Tensor2) {
        self.weight.matmul_batch_into(x, out);
        for r in 0..out.rows() {
            for (yi, b) in out.row_mut(r).iter_mut().zip(&self.bias.value) {
                *yi += b;
            }
        }
    }

    /// Batched forward pass (one sample per row), caching the input batch
    /// for a later [`Linear::backward_batch`]. Row `i` of the result is
    /// bit-identical to [`Linear::forward`]`(x.row(i))`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the input size.
    pub fn forward_batch(&mut self, x: &Tensor2) -> Tensor2 {
        let mut y = Tensor2::zeros(0, 0);
        self.affine_batch_into(x, &mut y);
        self.cached_inputs.push(x.clone());
        y
    }

    /// Batched inference (no caching) into a caller-provided tensor;
    /// bit-identical to [`Linear::forward_batch`] row by row.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the input size.
    pub fn infer_batch_into(&self, x: &Tensor2, out: &mut Tensor2) {
        self.affine_batch_into(x, out);
    }

    /// Forward pass, caching the input for a later backward pass (a thin
    /// wrapper over batch-of-1).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input size.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.affine_row_into(x, &mut y);
        self.cached_inputs.push(Tensor2::from_row(x));
        y
    }

    /// Forward pass without caching (inference only).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input size.
    pub fn forward_inference(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.affine_row_into(x, &mut y);
        y
    }

    /// Allocation-free inference: writes `W x + b` into `out` (resizing it
    /// to the output size). Bit-identical to [`Linear::forward_inference`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input size.
    pub fn infer_into(&self, x: &[f64], out: &mut Vec<f64>) {
        self.affine_row_into(x, out);
    }

    /// Batched backward pass for the most recent un-consumed forward call.
    /// Accumulates parameter gradients in **reverse row order** (exactly
    /// the sequence a per-sample replay performs against stacked caches)
    /// and returns the per-row gradients with respect to the inputs.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call to consume or the gradient
    /// batch shape does not match the cached input batch / output size.
    pub fn backward_batch(&mut self, grad_output: &Tensor2) -> Tensor2 {
        assert_eq!(
            grad_output.cols(),
            self.weight.rows,
            "gradient size mismatch"
        );
        let x = self
            .cached_inputs
            .pop()
            .expect("backward called without a matching forward");
        assert_eq!(grad_output.rows(), x.rows(), "gradient batch size mismatch");
        self.weight.add_outer_batch_to_grad(grad_output, &x);
        for b in (0..grad_output.rows()).rev() {
            for (gb, g) in self.bias.grad.iter_mut().zip(grad_output.row(b)) {
                *gb += g;
            }
        }
        self.weight.matmul_batch_transposed(grad_output)
    }

    /// Backward pass for the most recent un-consumed forward call (a thin
    /// wrapper over batch-of-1). Accumulates parameter gradients and
    /// returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call to consume or the gradient
    /// length does not match the output size.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        self.backward_batch(&Tensor2::from_row(grad_output))
            .into_flat()
    }

    /// Clears gradients and cached activations.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
        self.cached_inputs.clear();
    }

    /// The layer's parameters (weight, bias), for the optimizer.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// Ping-pong working memory for [`Mlp::infer`] / [`Mlp::infer_batch`].
#[derive(Debug, Clone, Default)]
struct MlpBuffers {
    /// Batch-of-1 staging tensor for the per-vector [`Mlp::infer`] wrapper.
    input: Tensor2,
    /// The two alternating layer-output buffers.
    pp: [Tensor2; 2],
}

/// A multi-layer perceptron with ReLU activations after every layer except
/// the last (the paper's backbone uses three 512-unit ReLU layers; heads add
/// a final linear layer without activation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    relu_output: bool,
    #[serde(skip)]
    cached_activations: Vec<Vec<Tensor2>>,
    /// Ping-pong buffers reused by [`Mlp::infer`] / [`Mlp::infer_batch`].
    #[serde(skip)]
    infer_buffers: Scratch<MlpBuffers>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[64, 512, 512]`
    /// builds two layers 64->512 and 512->512. With `relu_output == true`
    /// every layer is followed by ReLU; otherwise the final layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng>(sizes: &[usize], relu_output: bool, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least one layer");
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self {
            layers,
            relu_output,
            cached_activations: Vec::new(),
            infer_buffers: Scratch::default(),
        }
    }

    /// Output feature count.
    pub fn output_size(&self) -> usize {
        self.layers
            .last()
            .expect("at least one layer")
            .output_size()
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.layers
            .first()
            .expect("at least one layer")
            .input_size()
    }

    /// Batched forward pass with caching for
    /// [`Mlp::backward_batch`]: one matmul per layer for the whole batch.
    /// Row `i` is bit-identical to [`Mlp::forward`]`(x.row(i))`.
    pub fn forward_batch(&mut self, x: &Tensor2) -> Tensor2 {
        let n = self.layers.len();
        let mut activations: Vec<Tensor2> = Vec::with_capacity(n);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let input: &Tensor2 = activations.last().unwrap_or(x);
            let mut h = layer.forward_batch(input);
            if i + 1 < n || self.relu_output {
                relu_in_place(h.data_mut());
            }
            activations.push(h);
        }
        let out = activations.last().expect("at least one layer").clone();
        self.cached_activations.push(activations);
        out
    }

    /// Forward pass with caching for backward (a thin wrapper over
    /// batch-of-1).
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        self.forward_batch(&Tensor2::from_row(x)).into_flat()
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, x: &[f64]) -> Vec<f64> {
        let n = self.layers.len();
        let mut h = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut pre = layer.forward_inference(&h);
            if i + 1 < n || self.relu_output {
                relu_in_place(&mut pre);
            }
            h = pre;
        }
        h
    }

    /// Runs the inference layer stack over `x` using the given ping-pong
    /// buffers; returns the index of the buffer holding the final output.
    fn run_infer(&self, x: &Tensor2, pp: &mut [Tensor2; 2]) -> usize {
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let (cur, prev) = {
                let (a, b) = pp.split_at_mut(1);
                if i % 2 == 0 {
                    (&mut a[0], &b[0])
                } else {
                    (&mut b[0], &a[0])
                }
            };
            let input: &Tensor2 = if i == 0 { x } else { prev };
            layer.infer_batch_into(input, cur);
            if i + 1 < n || self.relu_output {
                relu_in_place(cur.data_mut());
            }
        }
        (n + 1) % 2
    }

    /// Allocation-free batched inference using internal ping-pong buffers.
    /// Returns a tensor borrowing the network's scratch; row `i` is
    /// bit-identical to [`Mlp::infer`]`(x.row(i))` and to
    /// [`Mlp::forward_inference`].
    pub fn infer_batch(&mut self, x: &Tensor2) -> &Tensor2 {
        let mut bufs = std::mem::take(&mut self.infer_buffers).0;
        let idx = self.run_infer(x, &mut bufs.pp);
        self.infer_buffers = Scratch(bufs);
        &self.infer_buffers.0.pp[idx]
    }

    /// Allocation-free inference (a thin wrapper over batch-of-1). Returns
    /// a slice borrowing the network's scratch; bit-identical to
    /// [`Mlp::forward_inference`].
    pub fn infer(&mut self, x: &[f64]) -> &[f64] {
        let mut bufs = std::mem::take(&mut self.infer_buffers).0;
        bufs.input.resize(1, x.len());
        bufs.input.row_mut(0).copy_from_slice(x);
        let idx = self.run_infer(&bufs.input, &mut bufs.pp);
        self.infer_buffers = Scratch(bufs);
        self.infer_buffers.0.pp[idx].row(0)
    }

    /// Batched backward pass for the most recent un-consumed forward call.
    /// Parameter gradients accumulate in reverse row order (the per-sample
    /// replay sequence); returns the per-row input gradients.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call.
    pub fn backward_batch(&mut self, grad_output: &Tensor2) -> Tensor2 {
        let activations = self
            .cached_activations
            .pop()
            .expect("backward called without a matching forward");
        let n = self.layers.len();
        let mut grad = grad_output.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i + 1 < n || self.relu_output {
                // Gate in place (bit-identical to `relu_backward` per row,
                // without allocating): gradient passes only where the
                // forward output was positive.
                let act = &activations[i];
                for (g, a) in grad.data_mut().iter_mut().zip(act.data()) {
                    *g = if *a > 0.0 { *g } else { 0.0 };
                }
            }
            grad = layer.backward_batch(&grad);
        }
        grad
    }

    /// Backward pass for the most recent un-consumed forward call (a thin
    /// wrapper over batch-of-1).
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        self.backward_batch(&Tensor2::from_row(grad_output))
            .into_flat()
    }

    /// Clears gradients and cached activations of all layers.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
        self.cached_activations.clear();
    }

    /// All parameters, for the optimizer.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(Linear::parameters_mut)
            .collect()
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(Linear::num_parameters).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn linear_shapes() {
        let mut l = Linear::new(4, 3, &mut rng());
        assert_eq!(l.input_size(), 4);
        assert_eq!(l.output_size(), 3);
        assert_eq!(l.num_parameters(), 15);
        let y = l.forward(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.len(), 3);
        assert_eq!(y, l.forward_inference(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn linear_gradient_matches_finite_difference() {
        let mut l = Linear::new(3, 2, &mut rng());
        let x = vec![0.5, -1.0, 2.0];
        let eps = 1e-6;

        // Loss = sum of outputs.
        let y = l.forward(&x);
        let _gx = l.backward(&[1.0, 1.0]);
        let loss = |layer: &Linear, x: &[f64]| layer.forward_inference(x).iter().sum::<f64>();
        let base = y.iter().sum::<f64>();

        // Check a few weight entries.
        for (r, c) in [(0, 0), (1, 2), (0, 1)] {
            let mut perturbed = l.clone();
            {
                let mut params = perturbed.parameters_mut();
                let idx = r * 3 + c;
                params[0].value[idx] += eps;
            }
            let fd = (loss(&perturbed, &x) - base) / eps;
            let analytic = l.parameters_mut()[0].grad[r * 3 + c];
            assert!(
                (fd - analytic).abs() < 1e-4,
                "weight ({r},{c}): fd {fd} vs {analytic}"
            );
        }
    }

    #[test]
    fn linear_input_gradient_matches_finite_difference() {
        let mut l = Linear::new(3, 2, &mut rng());
        let x = vec![0.5, -1.0, 2.0];
        let eps = 1e-6;
        let base: f64 = l.forward(&x).iter().sum();
        let gx = l.backward(&[1.0, 1.0]);
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let fd = (l.forward_inference(&xp).iter().sum::<f64>() - base) / eps;
            assert!((fd - gx[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn mlp_forward_backward_and_finite_difference() {
        let mut mlp = Mlp::new(&[4, 8, 3], false, &mut rng());
        assert_eq!(mlp.input_size(), 4);
        assert_eq!(mlp.output_size(), 3);
        let x = vec![0.1, -0.2, 0.3, 0.7];
        let y = mlp.forward(&x);
        assert_eq!(y.len(), 3);
        let gx = mlp.backward(&[1.0, 0.0, -1.0]);
        assert_eq!(gx.len(), 4);

        // Finite-difference check of the input gradient.
        let eps = 1e-6;
        let loss = |m: &Mlp, x: &[f64]| {
            let y = m.forward_inference(x);
            y[0] - y[2]
        };
        let base = loss(&mlp, &x);
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let fd = (loss(&mlp, &xp) - base) / eps;
            assert!((fd - gx[i]).abs() < 1e-4, "input {i}: {fd} vs {}", gx[i]);
        }
    }

    #[test]
    fn backward_without_forward_panics() {
        let mut l = Linear::new(2, 2, &mut rng());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.backward(&[1.0, 1.0]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn minibatch_backward_in_reverse_order() {
        // Two forward calls, two backward calls: gradients accumulate.
        let mut l = Linear::new(2, 1, &mut rng());
        l.forward(&[1.0, 0.0]);
        l.forward(&[0.0, 1.0]);
        l.backward(&[1.0]);
        l.backward(&[1.0]);
        let params = l.parameters_mut();
        // dW = [1,0] + [0,1] = [1,1]; db = 2.
        assert_eq!(params[0].grad, vec![1.0, 1.0]);
        assert_eq!(params[1].grad, vec![2.0]);
    }

    #[test]
    fn infer_matches_forward_inference_bitwise() {
        let mut mlp = Mlp::new(&[6, 9, 4], false, &mut rng());
        let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.3 - 0.7).collect();
        let expected = mlp.forward_inference(&x);
        let got = mlp.infer(&x).to_vec();
        assert_eq!(expected, got, "scratch inference must be bit-identical");
        // Repeated calls reuse the buffers and stay identical.
        assert_eq!(expected, mlp.infer(&x).to_vec());
        // A relu-output MLP with an even layer count exercises the other
        // ping-pong exit.
        let mut mlp2 = Mlp::new(&[4, 4, 4], true, &mut rng());
        let y = vec![0.2, -0.4, 0.8, 0.0];
        assert_eq!(mlp2.forward_inference(&y), mlp2.infer(&y).to_vec());
    }

    #[test]
    fn linear_infer_into_matches_forward_inference() {
        let l = Linear::new(3, 5, &mut rng());
        let x = [0.4, -0.2, 1.5];
        let mut out = Vec::new();
        l.infer_into(&x, &mut out);
        assert_eq!(out, l.forward_inference(&x));
    }

    #[test]
    fn cloned_mlp_infers_identically_with_fresh_scratch() {
        let mut mlp = Mlp::new(&[3, 5, 2], false, &mut rng());
        let x = [1.0, 2.0, 3.0];
        let a = mlp.infer(&x).to_vec();
        let mut cloned = mlp.clone();
        assert_eq!(a, cloned.infer(&x).to_vec());
    }

    #[test]
    fn forward_batch_rows_match_per_vector_forward() {
        let rows = [
            vec![0.1, -0.2, 0.3, 0.7],
            vec![1.0, 0.0, -1.0, 0.5],
            vec![-0.4, 0.9, 0.2, -0.6],
        ];
        let batch = Tensor2::from_rows(4, rows.iter().map(Vec::as_slice));

        let mut batched = Mlp::new(&[4, 6, 3], false, &mut rng());
        let mut serial = batched.clone();
        let out = batched.forward_batch(&batch);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out.row(i), serial.forward(row).as_slice(), "row {i}");
        }
        // The batched inference path agrees too.
        let inferred = batched.infer_batch(&batch).clone();
        assert_eq!(inferred, out);
        batched.zero_grad();
        serial.zero_grad();
    }

    #[test]
    fn backward_batch_matches_reverse_per_sample_replay() {
        let rows = [
            vec![0.1, -0.2, 0.3],
            vec![1.0, 0.4, -1.0],
            vec![-0.4, 0.9, 0.2],
            vec![0.7, -0.7, 0.1],
            vec![0.0, 0.5, -0.3],
        ];
        let grads = [
            vec![1.0, -0.5],
            vec![0.2, 0.8],
            vec![-1.0, 0.1],
            vec![0.4, 0.4],
            vec![-0.2, 0.9],
        ];
        let x = Tensor2::from_rows(3, rows.iter().map(Vec::as_slice));
        let g = Tensor2::from_rows(2, grads.iter().map(Vec::as_slice));

        let mut batched = Mlp::new(&[3, 7, 2], true, &mut rng());
        let mut serial = batched.clone();

        batched.forward_batch(&x);
        let gx_batched = batched.backward_batch(&g);

        for row in &rows {
            serial.forward(row);
        }
        let mut gx_serial: Vec<Vec<f64>> = Vec::new();
        for grad in grads.iter().rev() {
            gx_serial.push(serial.backward(grad));
        }
        gx_serial.reverse();
        for (i, gs) in gx_serial.iter().enumerate() {
            assert_eq!(gx_batched.row(i), gs.as_slice(), "input grad row {i}");
        }
        // Parameter gradients are bit-identical to the reverse replay.
        let pb = batched.parameters_mut();
        let ps = serial.parameters_mut();
        for (a, b) in pb.iter().zip(&ps) {
            assert_eq!(a.grad, b.grad);
        }
    }

    #[test]
    fn zero_grad_clears_state() {
        let mut mlp = Mlp::new(&[2, 4, 2], true, &mut rng());
        mlp.forward(&[1.0, 1.0]);
        mlp.backward(&[1.0, 1.0]);
        mlp.zero_grad();
        assert!(mlp
            .parameters_mut()
            .iter()
            .all(|p| p.grad.iter().all(|g| *g == 0.0)));
    }
}
