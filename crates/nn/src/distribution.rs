//! Masked categorical distributions over action logits.
//!
//! The multi-discrete policy of the paper samples one sub-action per head
//! from a categorical distribution; invalid sub-actions are removed with an
//! action mask (Sec. IV-A-2). This module provides sampling, log-probability,
//! entropy and the gradients of those quantities with respect to the logits,
//! which is everything PPO needs.

use rand::Rng;

use crate::activation::masked_softmax;

/// A categorical distribution over `n` choices, with an optional mask of
/// allowed choices.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedCategorical {
    probs: Vec<f64>,
    mask: Vec<bool>,
}

impl MaskedCategorical {
    /// Builds the distribution from raw logits and a mask of allowed
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or every entry is masked out.
    pub fn new(logits: &[f64], mask: &[bool]) -> Self {
        let probs = masked_softmax(logits, mask);
        Self {
            probs,
            mask: mask.to_vec(),
        }
    }

    /// Builds the distribution from raw logits with every entry allowed.
    pub fn from_logits(logits: &[f64]) -> Self {
        Self::new(logits, &vec![true; logits.len()])
    }

    /// The probabilities (masked entries have probability 0).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True if the distribution has no categories.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Samples a category index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        // Floating-point slack: return the last allowed entry.
        self.probs
            .iter()
            .enumerate()
            .rev()
            .find(|(_, p)| **p > 0.0)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The most probable category (greedy action).
    pub fn argmax(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Natural log-probability of a category.
    ///
    /// Returns a very negative value (`-1e9`) for masked-out categories so
    /// that importance ratios involving them vanish instead of producing
    /// NaNs.
    pub fn log_prob(&self, index: usize) -> f64 {
        let p = self.probs.get(index).copied().unwrap_or(0.0);
        if p <= 0.0 {
            -1.0e9
        } else {
            p.ln()
        }
    }

    /// Entropy of the distribution (masked entries contribute zero).
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|p| **p > 0.0)
            .map(|p| p * p.ln())
            .sum::<f64>()
    }

    /// Gradient of `log_prob(index)` with respect to the *logits*:
    /// `d log p_a / d logit_i = 1[i == a] - p_i` (zero on masked entries).
    pub fn log_prob_grad(&self, index: usize) -> Vec<f64> {
        self.probs
            .iter()
            .zip(&self.mask)
            .enumerate()
            .map(|(i, (p, m))| {
                if !m {
                    0.0
                } else if i == index {
                    1.0 - p
                } else {
                    -p
                }
            })
            .collect()
    }

    /// Gradient of the entropy with respect to the logits:
    /// `dH/dlogit_i = -p_i * (log p_i + H)` on allowed entries.
    pub fn entropy_grad(&self) -> Vec<f64> {
        let h = self.entropy();
        self.probs
            .iter()
            .zip(&self.mask)
            .map(|(p, m)| {
                if !m || *p <= 0.0 {
                    0.0
                } else {
                    -p * (p.ln() + h)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::softmax;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn probabilities_sum_to_one_and_respect_mask() {
        let d = MaskedCategorical::new(&[1.0, 2.0, 3.0, 4.0], &[true, false, true, true]);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d.probs()[1], 0.0);
        assert_eq!(d.argmax(), 3);
    }

    #[test]
    fn sampling_respects_mask_and_distribution() {
        let d = MaskedCategorical::new(&[0.0, 5.0, 0.0], &[true, false, true]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "masked action must never be sampled");
        // The two allowed actions have equal logits, so roughly 50/50.
        assert!(counts[0] > 350 && counts[2] > 350);
    }

    #[test]
    fn log_prob_matches_softmax() {
        let logits = [0.5, -1.0, 2.0];
        let d = MaskedCategorical::from_logits(&logits);
        let probs = softmax(&logits);
        for (i, p) in probs.iter().enumerate() {
            assert!((d.log_prob(i) - p.ln()).abs() < 1e-12);
        }
        // Masked category has an extremely low log-prob but no NaN.
        let dm = MaskedCategorical::new(&logits, &[true, false, true]);
        assert!(dm.log_prob(1) < -1.0e8);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let uniform = MaskedCategorical::from_logits(&[1.0; 4]);
        let peaked = MaskedCategorical::from_logits(&[10.0, 0.0, 0.0, 0.0]);
        assert!(uniform.entropy() > peaked.entropy());
        assert!((uniform.entropy() - (4.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn log_prob_grad_matches_finite_difference() {
        let logits = [0.2, -0.3, 0.8, 0.0];
        let mask = [true, true, false, true];
        let target = 0;
        let d = MaskedCategorical::new(&logits, &mask);
        let grad = d.log_prob_grad(target);
        let eps = 1e-6;
        for i in 0..logits.len() {
            let mut lp = logits.to_vec();
            lp[i] += eps;
            let dp = MaskedCategorical::new(&lp, &mask);
            let fd = (dp.log_prob(target) - d.log_prob(target)) / eps;
            if mask[i] {
                assert!((fd - grad[i]).abs() < 1e-4, "i={i}: {fd} vs {}", grad[i]);
            } else {
                assert_eq!(grad[i], 0.0);
            }
        }
    }

    #[test]
    fn entropy_grad_matches_finite_difference() {
        let logits = [0.1, 0.9, -0.5];
        let mask = [true, true, true];
        let d = MaskedCategorical::new(&logits, &mask);
        let grad = d.entropy_grad();
        let eps = 1e-6;
        for i in 0..logits.len() {
            let mut lp = logits.to_vec();
            lp[i] += eps;
            let fd = (MaskedCategorical::new(&lp, &mask).entropy() - d.entropy()) / eps;
            assert!((fd - grad[i]).abs() < 1e-4, "i={i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn argmax_of_masked_distribution() {
        let d = MaskedCategorical::new(&[5.0, 10.0, 1.0], &[true, false, true]);
        assert_eq!(d.argmax(), 0);
    }
}
