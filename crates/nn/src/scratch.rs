//! Reusable buffer storage for inference hot paths.
//!
//! Rollout collection calls the policy and value networks millions of
//! times; allocating fresh `Vec`s for every layer output dominated the
//! profile. [`Scratch`] wraps preallocated buffers so they can live inside
//! network structs without affecting the semantics the structs otherwise
//! derive: scratch contents never participate in equality, and cloning a
//! network gives the clone fresh (empty) scratch rather than copying
//! transient state.

use serde::{Deserialize, Serialize};

/// Transparent wrapper for preallocated working memory.
///
/// * `Clone` resets to `T::default()` — buffers are lazily regrown, so a
///   cloned network is identical in behavior without copying scratch.
/// * `PartialEq` always returns `true` — scratch never affects comparisons.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Scratch<T>(pub T);

impl<T: Default> Clone for Scratch<T> {
    fn clone(&self) -> Self {
        Self(T::default())
    }
}

impl<T> PartialEq for Scratch<T> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Grows `buf` to exactly `len` elements, zero-filled (contents are always
/// fully overwritten by the caller; zeroing keeps resize semantics simple).
pub fn resize_buffer(buf: &mut Vec<f64>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_resets_contents() {
        let s: Scratch<Vec<f64>> = Scratch(vec![1.0, 2.0]);
        assert!(s.clone().0.is_empty());
    }

    #[test]
    fn equality_ignores_contents() {
        let a: Scratch<Vec<f64>> = Scratch(vec![1.0]);
        let b: Scratch<Vec<f64>> = Scratch(vec![2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn resize_gives_exact_length() {
        let mut v = vec![7.0; 3];
        resize_buffer(&mut v, 5);
        assert_eq!(v, vec![0.0; 5]);
        resize_buffer(&mut v, 2);
        assert_eq!(v.len(), 2);
    }
}
