//! # mlir-rl-costmodel
//!
//! Analytical CPU performance model that substitutes for real execution of
//! transformed loop nests (the paper measures on a dual-socket Xeon E5-2680
//! v4; this reproduction estimates times with a roofline + cache-footprint
//! model so that the RL agent faces the same optimization landscape shape:
//! tiling pays when working sets exceed cache, interchange pays when it
//! exposes unit-stride vectorization, parallelization scales with cores but
//! pays dispatch overheads, and fusion removes intermediate-tensor traffic).
//!
//! ## Example
//!
//! ```
//! use mlir_rl_costmodel::{speedup, CostModel, MachineModel};
//! use mlir_rl_ir::{ModuleBuilder, OpId};
//! use mlir_rl_transforms::{ScheduledModule, Transformation};
//!
//! let mut b = ModuleBuilder::new("m");
//! let a = b.argument("A", vec![256, 1024]);
//! let w = b.argument("B", vec![1024, 512]);
//! b.matmul(a, w);
//! let module = b.finish();
//!
//! let cm = CostModel::new(MachineModel::default());
//! let baseline = cm.estimate_baseline(&module).total_s;
//!
//! let mut sm = ScheduledModule::new(module);
//! sm.apply(OpId(0), Transformation::TiledParallelization { tile_sizes: vec![8, 8, 0] })?;
//! let optimized = cm.estimate_scheduled(&sm).total_s;
//! assert!(speedup(baseline, optimized) > 1.0);
//! # Ok::<(), mlir_rl_transforms::TransformError>(())
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod estimator;
pub mod footprint;
pub mod machine;
pub mod noise;

pub use budget::EvalBudget;
pub use cache::{
    module_fingerprint, schedule_fingerprint, schedule_key, CacheShardStats, EvalCache,
    ScheduleKey, SharedEvalCache, SnapshotError, DEFAULT_EVAL_CACHE_CAPACITY, SHARED_CACHE_SHARDS,
};
pub use estimator::{speedup, CostModel, ModuleEstimate, TimeEstimate};
pub use footprint::{operand_accesses, subnest_footprint, traffic_beyond_cache, OperandAccess};
pub use machine::{CacheLevel, CodegenQuality, MachineModel};
pub use noise::{median, MeasurementNoise};
