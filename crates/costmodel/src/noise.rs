//! Measurement-noise model.
//!
//! The paper executes every code variant five times and reports the median
//! execution time. Our substrate is analytical, so to exercise the same
//! measurement protocol (and to make the RL training face realistic,
//! slightly noisy rewards) this module perturbs estimated times with
//! multiplicative log-normal-ish noise and reproduces the
//! median-of-N-runs procedure.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A reproducible measurement-noise source.
#[derive(Debug, Clone)]
pub struct MeasurementNoise {
    rng: ChaCha8Rng,
    /// Relative standard deviation of one measurement (the paper observes
    /// about ±5% run-to-run variation).
    pub relative_sigma: f64,
}

impl MeasurementNoise {
    /// Creates a noise source with the given seed and a default ±3% per-run
    /// jitter.
    pub fn new(seed: u64) -> Self {
        Self::with_sigma(seed, 0.03)
    }

    /// Creates a noise source with an explicit relative standard deviation.
    pub fn with_sigma(seed: u64, relative_sigma: f64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            relative_sigma,
        }
    }

    /// A noise source that never perturbs measurements (for deterministic
    /// tests and benchmarks).
    pub fn disabled() -> Self {
        Self::with_sigma(0, 0.0)
    }

    /// One noisy "execution" of a code variant with true time `time_s`.
    pub fn measure_once(&mut self, time_s: f64) -> f64 {
        if self.relative_sigma == 0.0 {
            return time_s;
        }
        // Sum of uniforms approximates a Gaussian; keep it strictly positive.
        let u: f64 = (0..4).map(|_| self.rng.gen_range(-1.0..1.0)).sum::<f64>() / 4.0;
        let factor = (1.0 + self.relative_sigma * u).max(0.5);
        time_s * factor
    }

    /// Runs the measurement `runs` times and returns the median, matching
    /// the paper's protocol (5 runs, median).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn measure_median(&mut self, time_s: f64, runs: usize) -> f64 {
        assert!(runs > 0, "at least one run is required");
        let mut samples: Vec<f64> = (0..runs).map(|_| self.measure_once(time_s)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        samples[samples.len() / 2]
    }
}

/// Median of a slice of times (helper shared by the benchmark harness).
///
/// Returns `None` for an empty slice.
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    Some(sorted[sorted.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_noise_is_exact() {
        let mut n = MeasurementNoise::disabled();
        assert_eq!(n.measure_once(1.5), 1.5);
        assert_eq!(n.measure_median(1.5, 5), 1.5);
    }

    #[test]
    fn noise_is_reproducible_for_same_seed() {
        let mut a = MeasurementNoise::new(42);
        let mut b = MeasurementNoise::new(42);
        for _ in 0..10 {
            assert_eq!(a.measure_once(1.0), b.measure_once(1.0));
        }
    }

    #[test]
    fn noise_stays_within_reasonable_bounds() {
        let mut n = MeasurementNoise::with_sigma(7, 0.05);
        for _ in 0..1000 {
            let t = n.measure_once(1.0);
            assert!(t > 0.8 && t < 1.2, "noisy time {t} out of bounds");
        }
    }

    #[test]
    fn median_of_runs_is_close_to_truth() {
        let mut n = MeasurementNoise::with_sigma(3, 0.05);
        let med = n.measure_median(2.0, 5);
        assert!((med - 2.0).abs() / 2.0 < 0.05);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        MeasurementNoise::new(0).measure_median(1.0, 0);
    }
}
