//! Roofline-style execution-time estimation for scheduled operations.
//!
//! The estimator combines three terms:
//!
//! * **Compute time** — weighted scalar operations divided by the throughput
//!   of the cores used, scaled by vectorization efficiency (which depends on
//!   whether the innermost loop accesses memory with unit stride) and the
//!   code-generation quality.
//! * **Memory time** — traffic beyond each cache level (from the footprint
//!   model) divided by that level's bandwidth; the slowest level wins.
//! * **Overhead** — loop-iteration, tile-loop and parallel fork/join
//!   overheads.
//!
//! Total time is `max(compute, memory) + overhead`, the usual overlapped
//! roofline. This gives transformations exactly the incentives the paper
//! describes: parallelization divides compute across cores but pays a
//! dispatch cost, tiling cuts cache traffic, interchange enables unit-stride
//! vectorization, fusion removes intermediate-tensor traffic, and
//! vectorization multiplies compute throughput of dense innermost loops.

use serde::{Deserialize, Serialize};

use mlir_rl_ir::{LinalgOp, Module, OpId};
use mlir_rl_transforms::{LoopNest, ScheduledModule};

use crate::footprint::{operand_accesses, traffic_beyond_cache, OperandAccess};
use crate::machine::{CodegenQuality, MachineModel};

/// The estimated execution time of one operation, broken into components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeEstimate {
    /// Arithmetic time, seconds.
    pub compute_s: f64,
    /// Memory-traffic time (bottleneck cache level), seconds.
    pub memory_s: f64,
    /// Loop and parallel-runtime overheads, seconds.
    pub overhead_s: f64,
    /// Total time: `max(compute, memory) + overhead`.
    pub total_s: f64,
}

impl TimeEstimate {
    /// A zero estimate (used for fused-away operations).
    pub fn zero() -> Self {
        Self {
            compute_s: 0.0,
            memory_s: 0.0,
            overhead_s: 0.0,
            total_s: 0.0,
        }
    }
}

/// Estimate for a whole module: per-operation estimates plus the total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleEstimate {
    /// Per live operation estimates, in program order.
    pub per_op: Vec<(OpId, TimeEstimate)>,
    /// Sum of the per-operation totals, seconds.
    pub total_s: f64,
}

/// The analytical cost model: a machine plus a code-generation quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    machine: MachineModel,
    quality: CodegenQuality,
}

impl CostModel {
    /// Cost model for compiler-generated (MLIR-style) code on a machine.
    pub fn new(machine: MachineModel) -> Self {
        Self {
            machine,
            quality: CodegenQuality::Generic,
        }
    }

    /// Cost model with an explicit code-generation quality.
    pub fn with_quality(machine: MachineModel, quality: CodegenQuality) -> Self {
        Self { machine, quality }
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The code-generation quality the model assumes.
    pub fn quality(&self) -> CodegenQuality {
        self.quality
    }

    /// Estimates the execution time of one scheduled operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation's indexing maps are malformed (they are
    /// validated at construction time).
    pub fn estimate_op(&self, op: &LinalgOp, nest: &LoopNest) -> TimeEstimate {
        let accesses = operand_accesses(op).expect("validated op has well-formed maps");
        self.estimate_with_accesses(op, nest, &accesses)
    }

    fn estimate_with_accesses(
        &self,
        op: &LinalgOp,
        nest: &LoopNest,
        accesses: &[OperandAccess],
    ) -> TimeEstimate {
        let m = &self.machine;
        let total_iterations = nest.total_iterations() as f64;
        let cores_used = (nest.parallel_degree().min(u64::from(m.cores)) as u32).max(1);

        // --- Compute ------------------------------------------------------
        let flops = total_iterations * op.arith.weighted_cost() + nest.fused_flops();
        let vec_factor = self.vectorization_factor(nest, accesses);
        let per_core = m.peak_flops_per_core(false) * vec_factor * m.efficiency(self.quality);
        // Load imbalance: tiles are distributed over cores in whole rounds.
        let utilization = if nest.parallel_degree() > 1 {
            let tasks = nest.parallel_degree() as f64;
            let rounds = (tasks / f64::from(cores_used)).ceil();
            (tasks / (rounds * f64::from(cores_used))).clamp(0.05, 1.0)
        } else {
            1.0
        };
        let compute_s = flops / (per_core * f64::from(cores_used) * utilization);

        // --- Memory ---------------------------------------------------------
        // Traffic beyond each cache level, served at that level's
        // "next level" bandwidth. Shared L3 capacity is split among active
        // cores.
        let l1_traffic = self.total_traffic(accesses, nest, m.l1.capacity_bytes);
        let l2_traffic = self.total_traffic(accesses, nest, m.l2.capacity_bytes);
        let l3_capacity = m.l3.capacity_bytes / u64::from(cores_used).max(1);
        let mut dram_traffic = self.total_traffic(accesses, nest, l3_capacity) as f64;

        // Fusion: the intermediate tensor no longer round-trips through main
        // memory, but the fused producer's own inputs must still be read.
        let fused_saved = nest.fused_intermediate_bytes() as f64;
        let fused_added: f64 = nest
            .fused_producers
            .iter()
            .map(|p| p.input_bytes as f64)
            .sum();
        dram_traffic = (dram_traffic - fused_saved + fused_added).max(0.0);

        let l2_bw = m.l2.bandwidth_bytes_per_s * f64::from(cores_used);
        let l3_bw = m.l3.bandwidth_bytes_per_s * f64::from(cores_used.min(8));
        let dram_bw = m.dram_bandwidth_for(cores_used);
        let memory_s = (l1_traffic as f64 / l2_bw)
            .max(l2_traffic as f64 / l3_bw)
            .max(dram_traffic / dram_bw);

        // --- Overheads -----------------------------------------------------
        let vec_reduction = if nest.vectorized {
            f64::from(m.vector_lanes_f32)
        } else {
            1.0
        };
        let loop_overhead =
            total_iterations / vec_reduction * m.loop_iteration_overhead_s / f64::from(cores_used);
        let tile_overhead = nest.num_tiles() as f64 * 20.0e-9 / f64::from(cores_used);
        let parallel_overhead = if nest.parallel_degree() > 1 {
            m.fork_join_overhead_s
                + nest.parallel_degree() as f64 * m.per_task_overhead_s / f64::from(cores_used)
        } else {
            0.0
        };
        let overhead_s = loop_overhead + tile_overhead + parallel_overhead;

        let total_s = compute_s.max(memory_s) + overhead_s;
        TimeEstimate {
            compute_s,
            memory_s,
            overhead_s,
            total_s,
        }
    }

    fn total_traffic(&self, accesses: &[OperandAccess], nest: &LoopNest, capacity: u64) -> u64 {
        traffic_beyond_cache(accesses, nest, capacity).iter().sum()
    }

    /// Effective speedup factor of the vector unit for this nest: 1.0 when
    /// not vectorized, up to the number of lanes when every operand is
    /// accessed with unit stride (or broadcast) along the innermost loop.
    fn vectorization_factor(&self, nest: &LoopNest, accesses: &[OperandAccess]) -> f64 {
        if !nest.vectorized {
            return 1.0;
        }
        let Some(inner) = nest.innermost_iterator() else {
            return 1.0;
        };
        let lanes = f64::from(self.machine.vector_lanes_f32);
        let friendly = accesses
            .iter()
            .filter(|a| a.unit_stride_in(inner) || !a.uses_iterator(inner))
            .count() as f64;
        let fraction = if accesses.is_empty() {
            0.0
        } else {
            friendly / accesses.len() as f64
        };
        // Short innermost loops cannot fill the vector lanes.
        let fill = (nest.innermost_extent() as f64 / lanes).clamp(1.0 / lanes, 1.0);
        1.0 + (lanes - 1.0) * fraction * fill
    }

    /// Estimates the execution time of every live operation of a scheduled
    /// module and the module total.
    pub fn estimate_scheduled(&self, scheduled: &ScheduledModule) -> ModuleEstimate {
        let mut per_op = Vec::new();
        let mut total = 0.0;
        for nest in scheduled.lower_all() {
            let op = scheduled
                .module()
                .op(nest.op)
                .expect("live op belongs to module");
            let est = self.estimate_op(op, &nest);
            total += est.total_s;
            per_op.push((nest.op, est));
        }
        ModuleEstimate {
            per_op,
            total_s: total,
        }
    }

    /// Estimates the *baseline* execution time of a module: no loop-level
    /// transformations applied (the paper's "MLIR without loop-level
    /// optimizations, with -O3" baseline).
    pub fn estimate_baseline(&self, module: &Module) -> ModuleEstimate {
        self.estimate_scheduled(&ScheduledModule::new(module.clone()))
    }
}

/// Speedup of an optimized time over a baseline time (both in seconds).
///
/// Values greater than 1 mean the optimized code is faster.
pub fn speedup(baseline_s: f64, optimized_s: f64) -> f64 {
    if optimized_s <= 0.0 {
        return 1.0;
    }
    baseline_s / optimized_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_ir::ModuleBuilder;
    use mlir_rl_transforms::Transformation;

    fn matmul_module(m: u64, n: u64, k: u64) -> Module {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        b.matmul(a, w);
        b.finish()
    }

    fn model() -> CostModel {
        CostModel::new(MachineModel::default())
    }

    #[test]
    fn baseline_estimate_is_positive_and_finite() {
        let est = model().estimate_baseline(&matmul_module(256, 512, 1024));
        assert!(est.total_s > 0.0);
        assert!(est.total_s.is_finite());
        assert_eq!(est.per_op.len(), 1);
    }

    #[test]
    fn parallelization_reduces_time() {
        let module = matmul_module(256, 512, 1024);
        let cm = model();
        let baseline = cm.estimate_baseline(&module).total_s;

        let mut sm = ScheduledModule::new(module);
        sm.apply(
            OpId(0),
            Transformation::TiledParallelization {
                tile_sizes: vec![32, 32, 0],
            },
        )
        .unwrap();
        let parallel = cm.estimate_scheduled(&sm).total_s;
        assert!(
            parallel < baseline / 4.0,
            "parallelization over 28 cores should give a large speedup: {baseline} -> {parallel}"
        );
    }

    #[test]
    fn vectorization_reduces_time_for_unit_stride() {
        let module = matmul_module(256, 256, 256);
        let cm = model();
        let mut tiled = ScheduledModule::new(module.clone());
        tiled
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![32, 32, 32],
                },
            )
            .unwrap();
        let before = cm.estimate_scheduled(&tiled).total_s;
        tiled.apply(OpId(0), Transformation::Vectorization).unwrap();
        let after = cm.estimate_scheduled(&tiled).total_s;
        assert!(
            after < before,
            "vectorization should help a compute-bound tiled matmul: {before} -> {after}"
        );
    }

    #[test]
    fn tiling_helps_when_working_set_exceeds_cache() {
        // A large matmul whose B matrix (4096x4096 f32 = 64 MB) exceeds LLC.
        let module = matmul_module(2048, 4096, 4096);
        let cm = model();
        let baseline = cm.estimate_baseline(&module).total_s;
        let mut sm = ScheduledModule::new(module);
        sm.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![64, 64, 64],
            },
        )
        .unwrap();
        let tiled = cm.estimate_scheduled(&sm).total_s;
        assert!(
            tiled < baseline,
            "cache tiling should pay off for out-of-cache matmul: {baseline} -> {tiled}"
        );
    }

    #[test]
    fn interchange_to_unit_stride_inner_loop_helps_vectorization() {
        // Elementwise-style comparison: matmul with j innermost (unit stride
        // for B and C) should vectorize better than with k innermost.
        let module = matmul_module(128, 128, 128);
        let cm = model();

        // k innermost (default order), vectorized.
        let mut k_inner = ScheduledModule::new(module.clone());
        k_inner
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![0, 0, 64],
                },
            )
            .unwrap();
        k_inner
            .apply(OpId(0), Transformation::Vectorization)
            .unwrap();
        let t_k = cm.estimate_scheduled(&k_inner).total_s;

        // j innermost via interchange (i, k, j), vectorized.
        let mut j_inner = ScheduledModule::new(module);
        j_inner
            .apply(
                OpId(0),
                Transformation::Interchange {
                    permutation: vec![0, 2, 1],
                },
            )
            .unwrap();
        j_inner
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![0, 0, 64],
                },
            )
            .unwrap();
        j_inner
            .apply(OpId(0), Transformation::Vectorization)
            .unwrap();
        let t_j = cm.estimate_scheduled(&j_inner).total_s;

        assert!(
            t_j < t_k,
            "unit-stride innermost loop should vectorize better: j-inner {t_j} vs k-inner {t_k}"
        );
    }

    #[test]
    fn fusion_reduces_elementwise_chain_time() {
        // matmul -> relu: fusing the matmul into the relu avoids the
        // intermediate tensor round-trip.
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![1024, 1024]);
        let w = b.argument("B", vec![1024, 1024]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        let module = b.finish();
        let cm = model();

        // Unfused but with the same tiling on both ops.
        let mut unfused = ScheduledModule::new(module.clone());
        unfused
            .apply(
                OpId(1),
                Transformation::Tiling {
                    tile_sizes: vec![64, 64],
                },
            )
            .unwrap();
        let t_unfused = cm.estimate_scheduled(&unfused).total_s;

        let mut fused = ScheduledModule::new(module);
        fused
            .apply(
                OpId(1),
                Transformation::TiledFusion {
                    tile_sizes: vec![64, 64],
                    producer: OpId(0),
                },
            )
            .unwrap();
        let t_fused = cm.estimate_scheduled(&fused).total_s;
        assert!(
            t_fused < t_unfused,
            "fusion should remove intermediate traffic: {t_unfused} -> {t_fused}"
        );
    }

    #[test]
    fn expert_kernels_are_faster_than_generic_codegen() {
        let module = matmul_module(512, 512, 512);
        let machine = MachineModel::default();
        let generic = CostModel::with_quality(machine.clone(), CodegenQuality::Generic);
        let expert = CostModel::with_quality(machine, CodegenQuality::ExpertKernel);
        // Both evaluate a well-optimized schedule.
        let mut sm = ScheduledModule::new(module);
        sm.apply(
            OpId(0),
            Transformation::TiledParallelization {
                tile_sizes: vec![64, 64, 0],
            },
        )
        .unwrap();
        sm.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![0, 0, 64],
            },
        )
        .unwrap();
        sm.apply(OpId(0), Transformation::Vectorization).unwrap();
        let tg = generic.estimate_scheduled(&sm).total_s;
        let te = expert.estimate_scheduled(&sm).total_s;
        assert!(te < tg);
    }

    #[test]
    fn tiny_parallel_tiles_pay_dispatch_overhead() {
        // A small elementwise op: parallelizing with tile size 1 creates a
        // huge number of tiny tasks whose dispatch overhead outweighs the
        // win.
        let mut b = ModuleBuilder::new("small");
        let x = b.argument("x", vec![64, 64]);
        let y = b.argument("y", vec![64, 64]);
        b.add(x, y);
        let module = b.finish();
        let cm = model();
        let baseline = cm.estimate_baseline(&module).total_s;
        let mut sm = ScheduledModule::new(module);
        sm.apply(
            OpId(0),
            Transformation::TiledParallelization {
                tile_sizes: vec![1, 1],
            },
        )
        .unwrap();
        let over_parallelized = cm.estimate_scheduled(&sm).total_s;
        assert!(
            over_parallelized > baseline / 28.0,
            "4096 one-element tasks must not scale perfectly"
        );
    }

    #[test]
    fn speedup_helper() {
        assert!((speedup(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((speedup(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(speedup(1.0, 0.0), 1.0);
    }

    #[test]
    fn fused_away_producer_not_counted_twice() {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![256, 256]);
        let w = b.argument("B", vec![256, 256]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        let module = b.finish();
        let cm = model();
        let mut fused = ScheduledModule::new(module);
        fused
            .apply(
                OpId(1),
                Transformation::TiledFusion {
                    tile_sizes: vec![32, 32],
                    producer: OpId(0),
                },
            )
            .unwrap();
        let est = cm.estimate_scheduled(&fused);
        assert_eq!(est.per_op.len(), 1, "only the fused consumer executes");
        assert_eq!(est.per_op[0].0, OpId(1));
    }
}
