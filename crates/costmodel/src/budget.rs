//! A thread-shared evaluation-budget ledger.
//!
//! Search procedures spend cost-model evaluations the way training spends
//! gradient steps: they are the unit of work every searcher is compared in.
//! The [`EvalBudget`] is one shared atomic ledger that several spenders
//! (portfolio members, batch workers, whole searches) charge against, so a
//! roster of searchers racing on one [`crate::SharedEvalCache`] can be held
//! to a *common* budget instead of each bringing its own.
//!
//! The ledger is deliberately minimal: a monotone spend counter and an
//! optional cap. It never blocks or fails a lookup — enforcement is the
//! spender's job (the portfolio searcher checks [`EvalBudget::is_exhausted`]
//! at deterministic points, between member runs, so outcomes stay
//! reproducible even though the ledger itself is racy at the lookup level).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared ledger of evaluation spend with an optional cap.
///
/// Cloning shares the ledger: every clone charges the same counter, which is
/// what makes it a *common* budget across threads and searchers.
#[derive(Debug, Clone)]
pub struct EvalBudget {
    spent: Arc<AtomicU64>,
    /// `u64::MAX` means unlimited.
    cap: u64,
}

impl EvalBudget {
    /// A ledger capped at `cap` units of spend.
    pub fn limited(cap: u64) -> Self {
        Self {
            spent: Arc::new(AtomicU64::new(0)),
            cap,
        }
    }

    /// A ledger that only accounts (never exhausts).
    pub fn unlimited() -> Self {
        Self::limited(u64::MAX)
    }

    /// Charges `amount` units and returns the total spend after the charge.
    /// Charging never fails — the ledger may go over its cap; spenders
    /// decide what to do about exhaustion at their own safe points.
    pub fn charge(&self, amount: u64) -> u64 {
        self.spent
            .fetch_add(amount, Ordering::Relaxed)
            .saturating_add(amount)
    }

    /// The admission hook: atomically charges `amount` **only if** the
    /// ledger has not yet reached its cap, returning the total spend after
    /// the charge, or `Err` with the current spend when the ledger was
    /// already exhausted. Unlike [`EvalBudget::charge`], two racing
    /// admitters cannot both slip past an exhausted cap — at most the
    /// admissions that observed spend below the cap go through (the last
    /// admitted spender may still overshoot, matching `charge` semantics).
    /// `try_admit(0)` is a pure gate: it charges nothing and reports
    /// whether a new spender would currently be admitted.
    pub fn try_admit(&self, amount: u64) -> Result<u64, u64> {
        match self
            .spent
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |spent| {
                (spent < self.cap || self.cap == u64::MAX).then(|| spent.saturating_add(amount))
            }) {
            Ok(before) => Ok(before.saturating_add(amount)),
            Err(spent) => Err(spent),
        }
    }

    /// Returns `amount` units to the ledger, saturating at zero spend. The
    /// reconciliation half of reservation-style admission: an admitter
    /// charges a cost *estimate* up front with [`EvalBudget::try_admit`]
    /// and, once the real spend is known, refunds the over-estimate (or
    /// [`EvalBudget::charge`]s the shortfall). Refunding more than was ever
    /// charged is a no-op beyond zero — the ledger never underflows into a
    /// huge unsigned spend.
    pub fn refund(&self, amount: u64) -> u64 {
        self.spent
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |spent| {
                Some(spent.saturating_sub(amount))
            })
            .expect("refund update never fails")
            .saturating_sub(amount)
    }

    /// Total units charged so far, across every clone of the ledger.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The cap, or `None` when unlimited.
    pub fn cap(&self) -> Option<u64> {
        (self.cap != u64::MAX).then_some(self.cap)
    }

    /// Units left before the cap (`None` when unlimited, 0 when overspent).
    pub fn remaining(&self) -> Option<u64> {
        self.cap().map(|cap| cap.saturating_sub(self.spent()))
    }

    /// True once the spend has reached (or passed) the cap.
    pub fn is_exhausted(&self) -> bool {
        self.spent() >= self.cap
    }

    /// True if `other` is a clone of the same ledger.
    pub fn same_ledger(&self, other: &EvalBudget) -> bool {
        Arc::ptr_eq(&self.spent, &other.spent)
    }
}

impl Default for EvalBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_accumulates_across_clones() {
        let ledger = EvalBudget::limited(10);
        let clone = ledger.clone();
        assert_eq!(ledger.charge(4), 4);
        assert_eq!(clone.charge(3), 7);
        assert_eq!(ledger.spent(), 7);
        assert_eq!(ledger.remaining(), Some(3));
        assert!(!ledger.is_exhausted());
        clone.charge(5);
        assert!(ledger.is_exhausted());
        assert_eq!(ledger.remaining(), Some(0));
        assert!(ledger.same_ledger(&clone));
        assert!(!ledger.same_ledger(&EvalBudget::limited(10)));
    }

    #[test]
    fn try_admit_gates_at_the_cap() {
        let ledger = EvalBudget::limited(10);
        assert_eq!(ledger.try_admit(6), Ok(6));
        // Spend is below the cap, so the next admitter may still overshoot
        // (charge semantics) ...
        assert_eq!(ledger.try_admit(8), Ok(14));
        // ... but once at/over the cap nobody else is admitted, even for 0.
        assert_eq!(ledger.try_admit(1), Err(14));
        assert_eq!(ledger.try_admit(0), Err(14));
        assert_eq!(ledger.spent(), 14);
        // The unlimited ledger admits forever.
        let open = EvalBudget::unlimited();
        assert_eq!(open.try_admit(u64::MAX / 2), Ok(u64::MAX / 2));
        assert!(open.try_admit(0).is_ok());
    }

    #[test]
    fn refund_reconciles_reservations_and_saturates_at_zero() {
        let ledger = EvalBudget::limited(10);
        // Reserve an estimate, then reconcile down to the real spend.
        assert_eq!(ledger.try_admit(8), Ok(8));
        assert_eq!(ledger.refund(3), 5);
        assert_eq!(ledger.spent(), 5);
        assert_eq!(ledger.remaining(), Some(5));
        // A refund reopens admission that the reservation had closed.
        ledger.charge(5);
        assert!(ledger.try_admit(1).is_err());
        ledger.refund(1);
        assert!(ledger.try_admit(1).is_ok());
        // Saturating underflow: refunding more than was charged pins the
        // ledger at zero instead of wrapping to u64::MAX.
        let ledger = EvalBudget::limited(10);
        ledger.charge(4);
        assert_eq!(ledger.refund(100), 0);
        assert_eq!(ledger.spent(), 0);
        assert_eq!(ledger.refund(1), 0);
        assert!(!ledger.is_exhausted());
        assert!(ledger.try_admit(2).is_ok());
    }

    #[test]
    fn unlimited_ledger_never_exhausts() {
        let ledger = EvalBudget::unlimited();
        ledger.charge(u64::MAX / 2);
        assert!(!ledger.is_exhausted());
        assert_eq!(ledger.cap(), None);
        assert_eq!(ledger.remaining(), None);
    }

    #[test]
    fn concurrent_charges_are_all_counted() {
        let ledger = EvalBudget::limited(1_000_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ledger = ledger.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        ledger.charge(1);
                    }
                });
            }
        });
        assert_eq!(ledger.spent(), 4000);
    }
}
