//! Machine descriptions for the analytical CPU performance model.

use serde::{Deserialize, Serialize};

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Usable capacity in bytes (per core for private caches, total for
    /// shared ones).
    pub capacity_bytes: u64,
    /// Sustained bandwidth in bytes per second available to one core when
    /// data resides in this level.
    pub bandwidth_bytes_per_s: f64,
    /// Whether the cache is shared by all cores (the capacity is then split
    /// among the cores that are active).
    pub shared: bool,
}

/// A CPU description sufficient for the roofline-style cost model.
///
/// The default models the machine used in the paper's evaluation: a
/// dual-socket Intel Xeon E5-2680 v4 node (2 x 14 Broadwell cores @ 2.4 GHz,
/// AVX2, 64 GB RAM).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable name of the machine.
    pub name: String,
    /// Number of physical cores available to the OpenMP runtime.
    pub cores: u32,
    /// Core clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Number of f32 lanes of the vector unit (8 for AVX2).
    pub vector_lanes_f32: u32,
    /// Scalar floating-point operations retired per cycle per core
    /// (accounting for the two FMA ports but scalar issue limits).
    pub scalar_flops_per_cycle: f64,
    /// Fraction of peak throughput reachable by compiler-generated generic
    /// loop nests (no register tiling, no software pipelining).
    pub generic_codegen_efficiency: f64,
    /// Fraction of peak throughput reachable by hand-tuned vendor kernels
    /// (oneDNN-style register tiling and prefetching).
    pub expert_kernel_efficiency: f64,
    /// L1 data cache (per core).
    pub l1: CacheLevel,
    /// L2 cache (per core).
    pub l2: CacheLevel,
    /// Last-level cache (shared).
    pub l3: CacheLevel,
    /// Main-memory bandwidth in bytes per second (shared by all cores).
    pub dram_bandwidth_bytes_per_s: f64,
    /// Fixed cost of launching a parallel region (fork/join), in seconds.
    pub fork_join_overhead_s: f64,
    /// Cost of dispatching one parallel task (one tile of an `scf.forall`),
    /// in seconds.
    pub per_task_overhead_s: f64,
    /// Branch/index overhead of one iteration of a scalar innermost loop, in
    /// seconds.
    pub loop_iteration_overhead_s: f64,
}

impl MachineModel {
    /// The paper's evaluation machine: dual-socket Xeon E5-2680 v4.
    pub fn xeon_e5_2680_v4() -> Self {
        Self {
            name: "2x Intel Xeon E5-2680 v4 (Broadwell, 28 cores, AVX2)".to_string(),
            cores: 28,
            frequency_ghz: 2.4,
            vector_lanes_f32: 8,
            scalar_flops_per_cycle: 2.0,
            generic_codegen_efficiency: 0.30,
            expert_kernel_efficiency: 0.85,
            l1: CacheLevel {
                capacity_bytes: 32 * 1024,
                bandwidth_bytes_per_s: 150.0e9,
                shared: false,
            },
            l2: CacheLevel {
                capacity_bytes: 256 * 1024,
                bandwidth_bytes_per_s: 75.0e9,
                shared: false,
            },
            l3: CacheLevel {
                capacity_bytes: 35 * 1024 * 1024,
                bandwidth_bytes_per_s: 40.0e9,
                shared: true,
            },
            dram_bandwidth_bytes_per_s: 60.0e9,
            fork_join_overhead_s: 8.0e-6,
            per_task_overhead_s: 0.4e-6,
            loop_iteration_overhead_s: 0.9e-9,
        }
    }

    /// A small laptop-class machine, useful for tests that need a tighter
    /// cache hierarchy.
    pub fn laptop_quad_core() -> Self {
        Self {
            name: "4-core laptop (AVX2)".to_string(),
            cores: 4,
            frequency_ghz: 3.0,
            vector_lanes_f32: 8,
            scalar_flops_per_cycle: 2.0,
            generic_codegen_efficiency: 0.35,
            expert_kernel_efficiency: 0.85,
            l1: CacheLevel {
                capacity_bytes: 32 * 1024,
                bandwidth_bytes_per_s: 200.0e9,
                shared: false,
            },
            l2: CacheLevel {
                capacity_bytes: 512 * 1024,
                bandwidth_bytes_per_s: 100.0e9,
                shared: false,
            },
            l3: CacheLevel {
                capacity_bytes: 8 * 1024 * 1024,
                bandwidth_bytes_per_s: 60.0e9,
                shared: true,
            },
            dram_bandwidth_bytes_per_s: 30.0e9,
            fork_join_overhead_s: 5.0e-6,
            per_task_overhead_s: 0.3e-6,
            loop_iteration_overhead_s: 0.7e-9,
        }
    }

    /// Peak floating-point throughput of one core in FLOP/s, given whether
    /// the code is vectorized.
    pub fn peak_flops_per_core(&self, vectorized: bool) -> f64 {
        let lanes = if vectorized {
            f64::from(self.vector_lanes_f32)
        } else {
            1.0
        };
        self.frequency_ghz * 1.0e9 * self.scalar_flops_per_cycle * lanes
    }

    /// Aggregate DRAM bandwidth available to `cores_used` cores: a single
    /// core cannot saturate the memory controllers, and many cores share the
    /// same total bandwidth.
    pub fn dram_bandwidth_for(&self, cores_used: u32) -> f64 {
        let single_core_share = self.dram_bandwidth_bytes_per_s * 0.25;
        let scaled = single_core_share * f64::from(cores_used.max(1));
        scaled.min(self.dram_bandwidth_bytes_per_s)
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::xeon_e5_2680_v4()
    }
}

/// Which code-generation quality a schedule is evaluated under.
///
/// The RL agent, the Halide-style baselines, and the untransformed baseline
/// are evaluated with [`CodegenQuality::Generic`] (MLIR's generic loop-nest
/// code generation). The PyTorch / PyTorch-compiler analogues are evaluated
/// with [`CodegenQuality::ExpertKernel`], modelling the architecture-
/// specialized oneDNN kernels that the paper identifies as the reason those
/// frameworks win on Matmul and Conv2D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodegenQuality {
    /// Compiler-generated generic loop nests.
    Generic,
    /// Hand-tuned vendor kernels (register tiling, prefetching).
    ExpertKernel,
}

impl MachineModel {
    /// Efficiency factor for the given code-generation quality.
    pub fn efficiency(&self, quality: CodegenQuality) -> f64 {
        match quality {
            CodegenQuality::Generic => self.generic_codegen_efficiency,
            CodegenQuality::ExpertKernel => self.expert_kernel_efficiency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_machine() {
        let m = MachineModel::default();
        assert_eq!(m.cores, 28);
        assert_eq!(m.vector_lanes_f32, 8);
        assert!(m.name.contains("E5-2680"));
    }

    #[test]
    fn peak_flops_scale_with_vectorization() {
        let m = MachineModel::default();
        let scalar = m.peak_flops_per_core(false);
        let vector = m.peak_flops_per_core(true);
        assert!((vector / scalar - 8.0).abs() < 1e-9);
        assert!(scalar > 1.0e9);
    }

    #[test]
    fn dram_bandwidth_saturates() {
        let m = MachineModel::default();
        let one = m.dram_bandwidth_for(1);
        let four = m.dram_bandwidth_for(4);
        let all = m.dram_bandwidth_for(m.cores);
        assert!(one < four);
        assert!(four <= all);
        assert!((all - m.dram_bandwidth_bytes_per_s).abs() < 1.0);
        // More cores than exist cannot exceed the total.
        assert_eq!(m.dram_bandwidth_for(1000), m.dram_bandwidth_bytes_per_s);
    }

    #[test]
    fn efficiency_ordering() {
        let m = MachineModel::default();
        assert!(m.efficiency(CodegenQuality::ExpertKernel) > m.efficiency(CodegenQuality::Generic));
    }

    #[test]
    fn laptop_preset_is_smaller() {
        let laptop = MachineModel::laptop_quad_core();
        let xeon = MachineModel::xeon_e5_2680_v4();
        assert!(laptop.cores < xeon.cores);
        assert!(laptop.l3.capacity_bytes < xeon.l3.capacity_bytes);
    }
}
