//! Schedule-keyed memoization of cost-model evaluations.
//!
//! Training evaluates the cost model millions of times, and early in
//! training (and throughout the immediate-reward mode of Fig. 7) the same
//! `(module, schedule)` pairs recur constantly: every episode starts from
//! the untransformed baseline, popular schedules are re-sampled across
//! trajectories, and PPO revisits the same modules round-robin. The
//! [`EvalCache`] memoizes [`ModuleEstimate`]s under a canonical hash of the
//! module and its per-operation schedules so repeated schedules never re-run
//! the roofline estimator.
//!
//! The table is two-level: a frozen [`Arc`]-shared snapshot plus a small
//! local overlay for new entries. Cloning a cache (the rollout engine
//! clones one per worker per batch) copies the overlay but only bumps a
//! reference count for the snapshot, and [`EvalCache::absorb`]ing a worker
//! cache back only walks the worker's overlay — both costs stay
//! proportional to *new* entries, not to the warm cache size.
//! [`EvalCache::consolidate`] folds the overlay into the snapshot.
//!
//! Keys are 128 bits (module fingerprint + schedule fingerprint), computed
//! with [`std::collections::hash_map::DefaultHasher`], which is
//! deterministic for a fixed Rust release. A collision would silently serve
//! a wrong estimate; at 2^128 key space this is not a practical concern, and
//! the `cached_estimates_match_uncached` property test exercises the
//! construction.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use mlir_rl_ir::Module;
use mlir_rl_transforms::ScheduledModule;

use crate::estimator::{CostModel, ModuleEstimate};

/// Default maximum number of memoized estimates per cache.
pub const DEFAULT_EVAL_CACHE_CAPACITY: usize = 1 << 16;

/// Canonical identity of a `(module, schedule)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// Fingerprint of the module structure (name, ops, loop bounds).
    pub module: u64,
    /// Fingerprint of the per-operation schedules.
    pub schedule: u64,
}

/// Fingerprints a module's identity: its name plus everything about each
/// operation the estimator reads — kind, iteration domain, iterator types,
/// indexing maps and arithmetic profile — so two structurally different
/// modules never share a key even if their names collide.
pub fn module_fingerprint(module: &Module) -> u64 {
    let mut h = DefaultHasher::new();
    module.name().hash(&mut h);
    for op in module.ops() {
        op.id.hash(&mut h);
        op.kind.hash(&mut h);
        op.loop_bounds.hash(&mut h);
        op.iterator_types.hash(&mut h);
        op.indexing_maps.hash(&mut h);
        op.arith.hash(&mut h);
    }
    h.finish()
}

/// Fingerprints the schedule state of a module: the ordered transformation
/// list of every operation (which fully determines tiling, interchange
/// order, parallelization, fusion and vectorization state).
pub fn schedule_fingerprint(scheduled: &ScheduledModule) -> u64 {
    let mut h = DefaultHasher::new();
    for state in scheduled.states() {
        state.schedule.hash(&mut h);
        state.fused_into.hash(&mut h);
    }
    h.finish()
}

/// The canonical cache key of a scheduled module.
pub fn schedule_key(scheduled: &ScheduledModule) -> ScheduleKey {
    ScheduleKey {
        module: module_fingerprint(scheduled.module()),
        schedule: schedule_fingerprint(scheduled),
    }
}

/// A memoization table for [`ModuleEstimate`]s with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct EvalCache {
    /// Frozen snapshot shared (by `Arc`) between clones.
    shared: Arc<HashMap<ScheduleKey, ModuleEstimate>>,
    /// New entries since the last [`EvalCache::consolidate`].
    local: HashMap<ScheduleKey, ModuleEstimate>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new(DEFAULT_EVAL_CACHE_CAPACITY)
    }
}

impl EvalCache {
    /// Creates a cache holding at most `capacity` estimates. When the cache
    /// fills up it is emptied wholesale (generation reset) rather than
    /// evicting entry by entry; the capacity is large enough that this is
    /// rare in training.
    pub fn new(capacity: usize) -> Self {
        Self {
            shared: Arc::new(HashMap::new()),
            local: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the estimate for `scheduled`, running `model` only on a
    /// cache miss.
    pub fn estimate(&mut self, model: &CostModel, scheduled: &ScheduledModule) -> &ModuleEstimate {
        self.estimate_keyed(schedule_key(scheduled), model, scheduled)
            .0
    }

    /// Like [`EvalCache::estimate`], but with a precomputed key (the
    /// environment caches the module fingerprint once per episode), and
    /// also reporting whether the lookup was a hit (`true`) or ran the
    /// estimator (`false`).
    pub fn estimate_keyed(
        &mut self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (&ModuleEstimate, bool) {
        if self.shared.contains_key(&key) {
            self.hits += 1;
            return (self.shared.get(&key).expect("checked above"), true);
        }
        if self.local.len() + self.shared.len() >= self.capacity && !self.local.contains_key(&key) {
            self.local.clear();
            self.shared = Arc::new(HashMap::new());
        }
        match self.local.entry(key) {
            Entry::Occupied(entry) => {
                self.hits += 1;
                (entry.into_mut(), true)
            }
            Entry::Vacant(entry) => {
                self.misses += 1;
                (entry.insert(model.estimate_scheduled(scheduled)), false)
            }
        }
    }

    /// Folds the local overlay into the shared snapshot. Called by the
    /// rollout engine before cloning worker caches, so clones share one
    /// snapshot and carry an empty overlay.
    pub fn consolidate(&mut self) {
        if self.local.is_empty() {
            return;
        }
        let shared = Arc::make_mut(&mut self.shared);
        for (key, estimate) in self.local.drain() {
            shared.entry(key).or_insert(estimate);
        }
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that ran the estimator.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of memoized estimates.
    pub fn len(&self) -> usize {
        self.shared.len() + self.local.len()
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty() && self.local.is_empty()
    }

    /// Drops all memoized estimates (counters are kept).
    pub fn clear(&mut self) {
        self.local.clear();
        self.shared = Arc::new(HashMap::new());
    }

    /// Merges another cache's entries into this one (worker caches are
    /// folded back into the trainer's master cache after a parallel rollout
    /// batch). When the other cache shares this cache's snapshot only its
    /// overlay is walked; a foreign snapshot is merged too. Counters are
    /// not merged: hit/miss accounting stays with the cache that observed
    /// the lookups.
    pub fn absorb(&mut self, other: EvalCache) {
        if !Arc::ptr_eq(&self.shared, &other.shared) {
            for (key, estimate) in other.shared.iter() {
                if self.len() >= self.capacity {
                    break;
                }
                if !self.shared.contains_key(key) {
                    self.local.entry(*key).or_insert_with(|| estimate.clone());
                }
            }
        }
        for (key, estimate) in other.local {
            if self.len() >= self.capacity {
                break;
            }
            if !self.shared.contains_key(&key) {
                self.local.entry(key).or_insert(estimate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use mlir_rl_ir::{ModuleBuilder, OpId};
    use mlir_rl_transforms::Transformation;

    fn matmul(m: u64, n: u64, k: u64) -> Module {
        let mut b = ModuleBuilder::new("cache_test");
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        b.matmul(a, w);
        b.finish()
    }

    #[test]
    fn cached_result_matches_direct_evaluation() {
        let cm = CostModel::new(MachineModel::default());
        let mut cache = EvalCache::default();
        let mut sm = ScheduledModule::new(matmul(64, 64, 64));
        sm.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![8, 8, 0],
            },
        )
        .unwrap();
        let direct = cm.estimate_scheduled(&sm);
        let cached = cache.estimate(&cm, &sm).clone();
        assert_eq!(direct, cached);
        assert_eq!(cache.misses(), 1);
        // Second lookup is a hit and returns the identical estimate; the
        // hit survives consolidation into the shared snapshot.
        let again = cache.estimate(&cm, &sm).clone();
        assert_eq!(direct, again);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        cache.consolidate();
        assert_eq!(direct, cache.estimate(&cm, &sm).clone());
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn different_schedules_get_different_keys() {
        let base = ScheduledModule::new(matmul(64, 64, 64));
        let mut tiled = base.clone();
        tiled
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![8, 8, 0],
                },
            )
            .unwrap();
        assert_ne!(schedule_key(&base), schedule_key(&tiled));
        // Same module fingerprint, different schedule fingerprint.
        assert_eq!(schedule_key(&base).module, schedule_key(&tiled).module);
    }

    #[test]
    fn different_modules_get_different_keys() {
        let a = ScheduledModule::new(matmul(64, 64, 64));
        let b = ScheduledModule::new(matmul(128, 64, 64));
        assert_ne!(schedule_key(&a).module, schedule_key(&b).module);
    }

    #[test]
    fn same_name_different_body_gets_different_keys() {
        // Two modules with identical names, shapes and iterator types but
        // different op kinds/arithmetic must not share a fingerprint.
        let mut b1 = ModuleBuilder::new("twin");
        let x1 = b1.argument("x", vec![64, 64]);
        let y1 = b1.argument("y", vec![64, 64]);
        b1.add(x1, y1);
        let mut b2 = ModuleBuilder::new("twin");
        let x2 = b2.argument("x", vec![64, 64]);
        let _y2 = b2.argument("y", vec![64, 64]);
        b2.sigmoid(x2);
        assert_ne!(
            module_fingerprint(&b1.finish()),
            module_fingerprint(&b2.finish())
        );
    }

    #[test]
    fn capacity_overflow_resets_the_table() {
        let cm = CostModel::new(MachineModel::default());
        let mut cache = EvalCache::new(2);
        for size in [32u64, 48, 64] {
            let sm = ScheduledModule::new(matmul(size, size, size));
            cache.estimate(&cm, &sm);
        }
        assert!(cache.len() <= 2, "capacity must bound the table");
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn absorb_merges_entries_without_touching_counters() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let mut b = EvalCache::default();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        b.estimate(&cm, &sm);
        a.absorb(b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.misses(), 0);
        // The absorbed entry now serves hits.
        a.estimate(&cm, &sm);
        assert_eq!(a.hits(), 1);
    }

    #[test]
    fn absorb_merges_a_foreign_snapshot_too() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let mut b = EvalCache::default();
        let sm = ScheduledModule::new(matmul(48, 48, 48));
        b.estimate(&cm, &sm);
        b.consolidate();
        a.absorb(b);
        assert_eq!(a.len(), 1);
        a.estimate(&cm, &sm);
        assert_eq!(a.hits(), 1);
    }

    #[test]
    fn clones_share_the_snapshot_cheaply() {
        let cm = CostModel::new(MachineModel::default());
        let mut master = EvalCache::default();
        for size in [32u64, 48, 64] {
            let sm = ScheduledModule::new(matmul(size, size, size));
            master.estimate(&cm, &sm);
        }
        master.consolidate();
        let mut worker = master.clone();
        // Worker hits come from the shared snapshot; new entries land in
        // the worker's (initially empty) overlay only.
        let sm = ScheduledModule::new(matmul(32, 32, 32));
        worker.estimate(&cm, &sm);
        assert_eq!(worker.hits(), master.hits() + 1);
        let fresh = ScheduledModule::new(matmul(96, 96, 96));
        worker.estimate(&cm, &fresh);
        assert_eq!(worker.len(), 4);
        assert_eq!(master.len(), 3);
        // Folding the worker back transfers only the new entry.
        master.absorb(worker);
        assert_eq!(master.len(), 4);
    }
}
